// Tests for src/telemetry: instruments, span tracing, exporters, and the
// virtual-time bridge (trace/telemetry_bridge.hpp).
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/exporters.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/span_tracer.hpp"
#include "telemetry/timeseries.hpp"
#include "trace/stage_trace.hpp"
#include "trace/telemetry_bridge.hpp"

namespace kvscale {
namespace {

/// Non-empty lines of a JSONL blob, for line-by-line validation.
std::vector<std::string_view> SplitLines(std::string_view text) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    if (end > start) lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON syntax checker, so the exporter tests
// assert real well-formedness rather than substring presence.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

size_t CountOccurrences(const std::string& haystack, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// ---------------------------------------------------------------------------
// Instruments.

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      // Resolve-once-then-increment, the hot-path pattern.
      Counter& counter = registry.GetCounter("test.shared");
      for (int i = 0; i < kIncrements; ++i) counter.Increment();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(registry.GetCounter("test.shared").Value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_DOUBLE_EQ(g.Value(), -1.25);
}

TEST(HistogramTest, BucketBoundariesRoundTrip) {
  using H = LatencyHistogram;
  // Below 2^kSubBucketBits ns the buckets are exact nanoseconds.
  for (size_t i = 0; i < H::kSubBuckets; ++i) {
    EXPECT_DOUBLE_EQ(H::BucketLowerBoundMicros(i), i * 1e-3) << i;
  }
  // Every bucket's lower bound indexes back into that bucket, and the
  // bounds are strictly increasing.
  for (size_t i = 1; i < H::kBucketCount; ++i) {
    EXPECT_EQ(H::BucketIndex(H::BucketLowerBoundMicros(i)), i) << i;
    EXPECT_GT(H::BucketLowerBoundMicros(i), H::BucketLowerBoundMicros(i - 1))
        << i;
  }
  // Relative bucket width: above the exact range, width / lower bound is
  // at most 1/kSubBuckets (the quantile error bound in the header).
  for (size_t i = H::kSubBuckets; i + 1 < H::kBucketCount; ++i) {
    const double lo = H::BucketLowerBoundMicros(i);
    const double hi = H::BucketLowerBoundMicros(i + 1);
    EXPECT_LE((hi - lo) / lo, 1.0 / H::kSubBuckets + 1e-9) << i;
  }
}

TEST(HistogramTest, StatsAndPercentiles) {
  LatencyHistogram h;
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);  // empty
  for (int v = 1; v <= 100; ++v) h.Record(static_cast<double>(v));
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 100.0);
  EXPECT_NEAR(h.Mean(), 50.5, 0.01);
  // Log-bucketing bounds the relative error at 6.25%.
  EXPECT_NEAR(h.Percentile(0.50), 50.0, 50.0 * 0.07);
  EXPECT_NEAR(h.Percentile(0.95), 95.0, 95.0 * 0.07);
  EXPECT_NEAR(h.Percentile(0.99), 99.0, 99.0 * 0.07);
  // Quantiles clamp to the observed extremes.
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 100.0);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
}

TEST(HistogramTest, MergeFoldsNodesTogether) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int v = 1; v <= 50; ++v) a.Record(static_cast<double>(v));
  for (int v = 51; v <= 100; ++v) b.Record(static_cast<double>(v));
  a.Merge(b);
  EXPECT_EQ(a.Count(), 100u);
  EXPECT_DOUBLE_EQ(a.Min(), 1.0);
  EXPECT_DOUBLE_EQ(a.Max(), 100.0);
  EXPECT_NEAR(a.Percentile(0.50), 50.0, 50.0 * 0.07);
  EXPECT_NEAR(a.Sum(), 5050.0, 5050.0 * 0.001);
}

TEST(RegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("test.x");
  a.Increment();
  EXPECT_EQ(&a, &registry.GetCounter("test.x"));
  EXPECT_EQ(registry.GetCounter("test.x").Value(), 1u);
  EXPECT_NE(&a, &registry.GetCounter("test.y"));
}

TEST(RegistryTest, SnapshotAndSummaryReport) {
  MetricsRegistry registry;
  registry.GetCounter("test.reads").Increment(7);
  registry.GetGauge("test.fill").Set(0.5);
  registry.GetHistogram("test.lat_us").Record(123.0);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].second, 7u);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 1u);
  const std::string report = registry.SummaryReport();
  EXPECT_NE(report.find("reads"), std::string::npos);
  EXPECT_NE(report.find("lat_us"), std::string::npos);
  EXPECT_NE(report.find("p99"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Span tracing.

TEST(SpanTracerTest, ScopesRecordNestingAndAttributes) {
  SpanTracer tracer;
  {
    SpanTracer::Scope outer = tracer.StartSpan("outer", 3);
    SpanTracer::Scope inner = tracer.StartSpan("inner", 3);
    inner.Attr("key", "value");
  }
  const std::vector<Span> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Inner ends (and records) first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 1u);
  ASSERT_EQ(spans[0].attributes.size(), 1u);
  EXPECT_EQ(spans[0].attributes[0].first, "key");
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_EQ(spans[1].track, 3u);
  EXPECT_GE(spans[1].duration_us, spans[0].duration_us);
}

TEST(SpanTracerTest, DisabledTracerIsInert) {
  SpanTracer tracer;
  tracer.set_enabled(false);
  SpanTracer::Scope scope = tracer.StartSpan("dropped");
  EXPECT_FALSE(scope.active());
  scope.Attr("a", "b");  // must be a safe no-op
  scope.End();
  EXPECT_EQ(tracer.size(), 0u);
}

// ---------------------------------------------------------------------------
// Exporters.

TEST(ExportersTest, ChromeTraceIsWellFormedJson) {
  SpanTracer tracer;
  tracer.SetTrackName(0, "node-0");
  tracer.SetTrackName(1, "awkward \"name\"\nwith newline");
  {
    SpanTracer::Scope s = tracer.StartSpan("read", 0);
    s.Attr("partition", "cube:0,1");          // comma
    s.Attr("note", "say \"hi\"\n\ttabbed");   // quote, newline, tab
  }
  { SpanTracer::Scope s = tracer.StartSpan("fold", 1); }

  const std::string json = TracerToChromeTrace(tracer);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"X\""), 2u);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"M\""), 2u);  // 2 named tracks
  EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(ExportersTest, MetricsJsonlHasOneValidObjectPerLine) {
  MetricsRegistry registry;
  registry.GetCounter("store.read.count").Increment(3);
  registry.GetGauge("cache.fill").Set(0.75);
  LatencyHistogram& h = registry.GetHistogram("store.read.latency_us");
  for (int v = 1; v <= 10; ++v) h.Record(static_cast<double>(v));

  const std::string jsonl = MetricsToJsonl(registry.Snapshot());
  size_t lines = 0;
  size_t start = 0;
  while (start < jsonl.size()) {
    size_t end = jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "missing trailing newline";
    const std::string line = jsonl.substr(start, end - start);
    EXPECT_TRUE(JsonChecker(line).Valid()) << line;
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, 3u);
  EXPECT_NE(jsonl.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"gauge\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"p99_us\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Virtual-time bridge.

RequestTrace MakeTrace(uint64_t query, uint32_t sub, uint32_t node,
                       Micros start) {
  RequestTrace t;
  t.query_id = query;
  t.sub_id = sub;
  t.node = node;
  t.keysize = 100.0;
  t.issued = start;
  t.received = start + 10;
  t.db_start = start + 15;
  t.db_end = start + 40;
  t.completed = start + 50;
  return t;
}

TEST(TelemetryBridgeTest, AppendStageSpansMirrorsVirtualTime) {
  StageTracer stage_tracer;
  stage_tracer.Record(MakeTrace(1, 0, 0, 0.0));
  stage_tracer.Record(MakeTrace(1, 1, 2, 5.0));

  SpanTracer tracer;
  AppendStageSpans(stage_tracer, tracer, /*track_base=*/10, "run");
  const std::vector<Span> spans = tracer.snapshot();
  // Per trace: one "request" parent + four stage children.
  ASSERT_EQ(spans.size(), 2u * (1 + kStageCount));

  const Span& request = spans[0];
  EXPECT_EQ(request.name, "request");
  EXPECT_EQ(request.track, 10u);
  EXPECT_DOUBLE_EQ(request.start_us, 0.0);
  EXPECT_DOUBLE_EQ(request.duration_us, 50.0);

  const Span& in_db = spans[3];
  EXPECT_EQ(in_db.name, "in-db");
  EXPECT_EQ(in_db.depth, 1u);
  EXPECT_DOUBLE_EQ(in_db.start_us, 15.0);
  EXPECT_DOUBLE_EQ(in_db.duration_us, 25.0);

  // Second trace lands on track 10 + node 2, and tracks are named.
  EXPECT_EQ(spans[5].track, 12u);
  const auto names = tracer.track_names();
  EXPECT_EQ(names.at(10), "run/node-0");
  EXPECT_EQ(names.at(12), "run/node-2");
}

TEST(TelemetryBridgeTest, RecordStageHistogramsUsesPrefix) {
  StageTracer stage_tracer;
  for (int i = 0; i < 5; ++i) {
    stage_tracer.Record(MakeTrace(1, i, 0, i * 100.0));
  }
  MetricsRegistry registry;
  RecordStageHistograms(stage_tracer, registry, "test.stage.");
  LatencyHistogram& in_db = registry.GetHistogram("test.stage.in_db_us");
  EXPECT_EQ(in_db.Count(), 5u);
  EXPECT_NEAR(in_db.Percentile(0.5), 25.0, 25.0 * 0.07);
}

// ---------------------------------------------------------------------------
// Span retention cap.

TEST(SpanTracerTest, MaxSpansDropsNewestAndCountsThem) {
  SpanTracer tracer;
  MetricsRegistry registry;
  tracer.set_max_spans(3);
  tracer.set_dropped_counter(&registry.GetCounter("telemetry.spans.dropped"));
  for (int i = 0; i < 5; ++i) {
    SpanTracer::Scope s = tracer.StartSpan("s" + std::to_string(i));
  }
  // Newest-lose: the head of the trace survives intact.
  const std::vector<Span> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "s0");
  EXPECT_EQ(spans[2].name, "s2");
  EXPECT_EQ(tracer.dropped(), 2u);
  EXPECT_EQ(registry.GetCounter("telemetry.spans.dropped").Value(), 2u);
  // Clearing frees capacity again; the drop tally is cumulative.
  tracer.set_dropped_counter(nullptr);
  tracer.Clear();
  { SpanTracer::Scope s = tracer.StartSpan("after"); }
  EXPECT_EQ(tracer.size(), 1u);
}

// ---------------------------------------------------------------------------
// Flight recorder.

QueryRecord MakeRecord(uint64_t id, double wall_us) {
  QueryRecord r;
  r.query_id = id;
  r.table = "t";
  r.transport = "message";
  r.subqueries = 4;
  r.completed = 4;
  r.wall_us = wall_us;
  return r;
}

TEST(FlightRecorderTest, RingIsBoundedAndEvictsOldest) {
  FlightRecorder::Options options;
  options.capacity = 3;
  FlightRecorder recorder(options);
  for (uint64_t id = 1; id <= 5; ++id) {
    recorder.Record(MakeRecord(id, 100.0));
  }
  EXPECT_EQ(recorder.size(), 3u);
  EXPECT_EQ(recorder.recorded(), 5u);
  EXPECT_EQ(recorder.evicted(), 2u);
  const std::vector<QueryRecord> records = recorder.snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records.front().query_id, 3u);  // 1 and 2 were evicted
  EXPECT_EQ(records.back().query_id, 5u);
}

TEST(FlightRecorderTest, SlowRuleCatchesLatencyAndDegradation) {
  FlightRecorder::Options options;
  options.slow_query_us = 1000.0;
  FlightRecorder recorder(options);

  recorder.Record(MakeRecord(1, 100.0));   // fast, healthy
  recorder.Record(MakeRecord(2, 5000.0));  // over the threshold
  QueryRecord degraded = MakeRecord(3, 100.0);
  degraded.completed = 3;
  degraded.failed = 1;
  degraded.partial = true;
  recorder.Record(degraded);  // fast but degraded: still slow-logged
  QueryRecord shed = MakeRecord(4, 0.0);
  shed.shed_by_admission = true;
  recorder.Record(shed);

  EXPECT_EQ(recorder.recorded(), 4u);
  EXPECT_EQ(recorder.slow_queries(), 3u);
  const std::vector<QueryRecord> records = recorder.snapshot();
  EXPECT_FALSE(records[0].slow);
  EXPECT_TRUE(records[1].slow);
  EXPECT_TRUE(records[2].slow);
  EXPECT_TRUE(records[3].slow);
}

TEST(FlightRecorderTest, ZeroThresholdDisablesTheSlowLog) {
  FlightRecorder recorder;  // slow_query_us defaults to 0 = off
  QueryRecord degraded = MakeRecord(1, 1e9);
  degraded.failed = 1;
  recorder.Record(degraded);
  EXPECT_EQ(recorder.slow_queries(), 0u);
  EXPECT_TRUE(recorder.SlowQueriesJsonl().empty());
}

TEST(FlightRecorderTest, JsonlIsWellFormedPerLine) {
  FlightRecorder::Options options;
  options.slow_query_us = 1.0;
  FlightRecorder recorder(options);
  QueryRecord record = MakeRecord(7, 250.5);
  SubQueryTimelineEntry entry;
  entry.sub_id = 2;
  entry.node = 1;
  entry.attempts = 2;
  entry.completed = true;
  entry.issued_us = 10.0;
  entry.received_us = 12.0;
  entry.db_start_us = 15.0;
  entry.db_end_us = 20.0;
  entry.completed_us = 25.0;
  record.timeline.push_back(entry);
  recorder.Record(record);

  const std::string jsonl = recorder.ToJsonl();
  ASSERT_FALSE(jsonl.empty());
  for (const std::string_view line : SplitLines(jsonl)) {
    EXPECT_TRUE(JsonChecker(line).Valid()) << line;
  }
  EXPECT_NE(jsonl.find("\"sub_id\":2"), std::string::npos);
  EXPECT_NE(jsonl.find("\"slow\":true"), std::string::npos);
  EXPECT_EQ(recorder.SlowQueriesJsonl(), jsonl);
}

// ---------------------------------------------------------------------------
// Metrics time series.

TEST(MetricsTimeSeriesTest, TickHonoursTheInterval) {
  MetricsRegistry registry;
  MetricsTimeSeries::Options options;
  options.interval_us = 100.0;
  MetricsTimeSeries series(&registry, options);

  series.Tick(0.0);    // first tick always samples
  series.Tick(50.0);   // within the interval: skipped
  series.Tick(100.0);  // samples
  series.Tick(120.0);  // skipped
  series.Tick(250.0);  // samples
  EXPECT_EQ(series.size(), 3u);
}

TEST(MetricsTimeSeriesTest, DeltasAreAgainstThePreviousSample) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("test.ts.ops");
  MetricsTimeSeries::Options options;
  options.interval_us = 0.0;
  MetricsTimeSeries series(&registry, options);

  counter.Increment(10);
  series.Sample(100.0);
  counter.Increment(5);
  series.Sample(200.0);

  const std::string jsonl = series.ToJsonl();
  for (const std::string_view line : SplitLines(jsonl)) {
    EXPECT_TRUE(JsonChecker(line).Valid()) << line;
  }
  // First sample deltas from zero; the second from the first.
  EXPECT_NE(jsonl.find("\"value\":10,\"delta\":10"), std::string::npos);
  EXPECT_NE(jsonl.find("\"value\":15,\"delta\":5"), std::string::npos);
}

TEST(MetricsTimeSeriesTest, RetentionCapDropsAndCounts) {
  MetricsRegistry registry;
  MetricsTimeSeries::Options options;
  options.interval_us = 0.0;
  options.max_samples = 2;
  MetricsTimeSeries series(&registry, options);
  for (int i = 0; i < 5; ++i) series.Sample(static_cast<double>(i));
  EXPECT_EQ(series.size(), 2u);
  EXPECT_EQ(series.dropped_samples(), 3u);
  series.Clear();
  EXPECT_EQ(series.size(), 0u);
  EXPECT_EQ(series.dropped_samples(), 0u);
}

}  // namespace
}  // namespace kvscale
