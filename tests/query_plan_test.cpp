// Tests for the generic query-plan engine: range scan, top-k, and
// D8tree box queries on the shared retry/hedge/admission gather loop,
// plus the legacy count-by-type wrappers' bit-identical parity.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>

#include "cluster/in_process_cluster.hpp"
#include "fault/fault_injector.hpp"
#include "store/row.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics_registry.hpp"
#include "workload/alya.hpp"
#include "workload/box_query.hpp"
#include "workload/d8tree.hpp"

namespace kvscale {
namespace {

/// Loads `keys` partitions of elements/keys columns each: clustering
/// j = 0..n-1, type j % 8 — the same shape the CLI's gather loads.
WorkloadSpec LoadUniform(InProcessCluster& cluster, uint64_t elements,
                         uint64_t keys, TypeCounts* truth = nullptr) {
  const WorkloadSpec workload = UniformWorkload(elements, keys, "t");
  uint64_t part_seed = 0;
  for (const PartitionRef& part : workload.partitions) {
    for (uint32_t j = 0; j < part.elements; ++j) {
      Column column;
      column.clustering = j;
      column.type_id = j % 8;
      column.payload = MakePayload(part_seed, j, 16);
      EXPECT_TRUE(cluster.Put("t", part.key, std::move(column)).ok());
      if (truth != nullptr) ++(*truth)[j % 8];
    }
    ++part_seed;
  }
  cluster.FlushAll();
  return workload;
}

/// Ground truth for a scan over the uniform workload: clustering j in
/// [lo, hi] appears once per partition, globally ascending, capped.
std::vector<QueryRow> ExpectedScan(const WorkloadSpec& workload, uint64_t lo,
                                   uint64_t hi, uint32_t limit) {
  std::vector<QueryRow> rows;
  const uint32_t per_part = workload.partitions.front().elements;
  for (uint64_t j = lo; j <= hi && j < per_part; ++j) {
    for (size_t p = 0; p < workload.partitions.size(); ++p) {
      rows.push_back(QueryRow{j, static_cast<uint32_t>(j % 8)});
    }
  }
  if (limit > 0 && rows.size() > limit) rows.resize(limit);
  return rows;
}

/// Ground truth for a global top-k: the k largest clustering keys,
/// descending, across every partition's identical 0..n-1 column set.
std::vector<QueryRow> ExpectedTopK(const WorkloadSpec& workload, uint32_t k) {
  std::vector<QueryRow> rows;
  const uint32_t per_part = workload.partitions.front().elements;
  for (uint64_t j = per_part; j-- > 0 && rows.size() < k;) {
    for (size_t p = 0; p < workload.partitions.size() && rows.size() < k;
         ++p) {
      rows.push_back(QueryRow{j, static_cast<uint32_t>(j % 8)});
    }
  }
  return rows;
}

void ExpectSameResult(const GatherResult& a, const GatherResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.totals, b.totals) << label;
  EXPECT_EQ(a.boundary_totals, b.boundary_totals) << label;
  EXPECT_EQ(a.rows, b.rows) << label;
  EXPECT_EQ(a.partitions_missing, b.partitions_missing) << label;
  EXPECT_EQ(a.subqueries, b.subqueries) << label;
  EXPECT_EQ(a.completed, b.completed) << label;
  EXPECT_EQ(a.failed, b.failed) << label;
  EXPECT_EQ(a.partial, b.partial) << label;
  EXPECT_EQ(a.lost_partitions, b.lost_partitions) << label;
  EXPECT_EQ(a.partitions_touched, b.partitions_touched) << label;
  EXPECT_EQ(a.partitions_pruned, b.partitions_pruned) << label;
}

// ---------------------------------------------------------------------------
// Plan construction

TEST(QueryPlanTest, KindNamesRoundTripAndRejectUnknown) {
  for (size_t k = 0; k < kQueryKindCount; ++k) {
    const QueryKind kind = static_cast<QueryKind>(k);
    auto parsed = ParseQueryKind(QueryKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_FALSE(ParseQueryKind("median").ok());
}

TEST(QueryPlanTest, FullTablePlansCoverEveryPartitionUnpruned) {
  const WorkloadSpec workload = UniformWorkload(100, 10, "t");
  for (const QueryPlan& plan :
       {MakeCountPlan(workload), MakeScanPlan(workload, ScanSpec{0, 99, 0}),
        MakeTopKPlan(workload, TopKSpec{3})}) {
    EXPECT_EQ(plan.partitions.size(), workload.partitions.size());
    EXPECT_EQ(plan.candidate_partitions, workload.partitions.size());
    EXPECT_EQ(plan.partitions_pruned, 0u);
    for (const PlanPartition& part : plan.partitions) {
      EXPECT_TRUE(part.fully_inside);
    }
  }
}

// ---------------------------------------------------------------------------
// Count: the legacy API is a thin wrapper over the shared engine

TEST(QueryPlanTest, CountWrapperIsBitIdenticalToTheGenericEngine) {
  InProcessCluster cluster(4, PlacementKind::kDhtRandom, StoreOptions{}, 7);
  TypeCounts truth;
  const WorkloadSpec workload = LoadUniform(cluster, 120, 24, &truth);

  const GatherResult wrapper = cluster.CountByTypeAll(workload);
  const GatherResult engine = cluster.Gather(MakeCountPlan(workload));
  EXPECT_EQ(wrapper.totals, truth);
  ExpectSameResult(wrapper, engine, "wrapper vs engine");
  EXPECT_EQ(wrapper.requests_per_node, engine.requests_per_node);
}

TEST(QueryPlanTest, CountWrapperParityHoldsUnderChaos) {
  // Two identically seeded clusters with identically seeded injectors
  // make the same deterministic fault decisions: the legacy wrapper and
  // the generic engine must degrade bit-identically under them.
  FaultConfig fault_config;
  fault_config.seed = 99;
  fault_config.read_error_rate = 0.05;
  GatherOptions options;
  options.max_attempts = 4;

  auto run = [&](bool use_wrapper) {
    InProcessCluster cluster(5, PlacementKind::kDhtRandom, StoreOptions{}, 7,
                             2);
    const WorkloadSpec workload = LoadUniform(cluster, 150, 30);
    FaultInjector injector(fault_config);
    cluster.AttachFaultInjector(&injector);
    cluster.KillNode(3);
    return use_wrapper ? cluster.CountByTypeAll(workload, options)
                       : cluster.Gather(MakeCountPlan(workload), options);
  };
  const GatherResult wrapper = run(true);
  const GatherResult engine = run(false);
  EXPECT_GT(wrapper.retries, 0u);  // the chaos actually bit
  EXPECT_EQ(wrapper.retries, engine.retries);
  EXPECT_EQ(wrapper.hedged, engine.hedged);
  EXPECT_EQ(wrapper.errors_per_node, engine.errors_per_node);
  ExpectSameResult(wrapper, engine, "chaos wrapper vs engine");
  // The shared accounting invariant: every sub-query is either
  // completed or failed, never dropped.
  EXPECT_EQ(wrapper.completed + wrapper.failed, wrapper.subqueries);
}

// ---------------------------------------------------------------------------
// Range scan

TEST(QueryPlanTest, ScanMatchesGroundTruthWithLimitsAndOrdering) {
  InProcessCluster cluster(4, PlacementKind::kDhtRandom, StoreOptions{}, 7);
  const WorkloadSpec workload = LoadUniform(cluster, 200, 10);  // 20/partition

  const GatherResult all =
      cluster.Gather(MakeScanPlan(workload, ScanSpec{5, 14, 0}));
  EXPECT_EQ(all.rows, ExpectedScan(workload, 5, 14, 0));
  EXPECT_EQ(all.rows.size(), 100u);  // 10 keys x 10 partitions
  EXPECT_TRUE(std::is_sorted(all.rows.begin(), all.rows.end(),
                             [](const QueryRow& a, const QueryRow& b) {
                               return a.clustering < b.clustering;
                             }));

  const GatherResult limited =
      cluster.Gather(MakeScanPlan(workload, ScanSpec{5, 14, 23}));
  EXPECT_EQ(limited.rows, ExpectedScan(workload, 5, 14, 23));
  EXPECT_EQ(limited.rows.size(), 23u);

  const GatherResult empty =
      cluster.Gather(MakeScanPlan(workload, ScanSpec{500, 900, 0}));
  EXPECT_TRUE(empty.rows.empty());
  EXPECT_EQ(empty.partitions_missing, 0u);  // partitions exist, range empty
}

TEST(QueryPlanTest, ScanDegradesLikeCountWhenDataIsLost) {
  InProcessCluster cluster(4, PlacementKind::kDhtRandom, StoreOptions{}, 7);
  const WorkloadSpec workload = LoadUniform(cluster, 80, 16);
  cluster.KillNode(1);  // replication 1: its partitions are unreachable

  const GatherResult result =
      cluster.Gather(MakeScanPlan(workload, ScanSpec{0, 100, 0}));
  EXPECT_TRUE(result.partial);
  EXPECT_GT(result.failed, 0u);
  EXPECT_EQ(result.lost_partitions.size(), result.failed);
  EXPECT_EQ(result.completed + result.failed, result.subqueries);
  // The surviving partitions' rows still come back, still sorted.
  EXPECT_EQ(result.rows.size(), result.completed * 5u);
}

// ---------------------------------------------------------------------------
// Top-k

TEST(QueryPlanTest, TopKMergesPerPartitionCandidatesDescending) {
  InProcessCluster cluster(4, PlacementKind::kDhtRandom, StoreOptions{}, 7);
  const WorkloadSpec workload = LoadUniform(cluster, 200, 10);  // 20/partition

  for (const uint32_t k : {1u, 7u, 25u}) {
    const GatherResult result =
        cluster.Gather(MakeTopKPlan(workload, TopKSpec{k}));
    EXPECT_EQ(result.rows, ExpectedTopK(workload, k)) << "k=" << k;
    EXPECT_EQ(result.rows.size(), k) << "k=" << k;
  }
  // k larger than the table: every row comes back, none invented.
  const GatherResult all =
      cluster.Gather(MakeTopKPlan(workload, TopKSpec{10000}));
  EXPECT_EQ(all.rows.size(), 200u);
}

// ---------------------------------------------------------------------------
// Transport x codec parity for the new query types

TEST(QueryPlanTest, ScanAndTopKAreTransportAndCodecInvariantUnderChaos) {
  FaultConfig fault_config;
  fault_config.seed = 321;
  fault_config.read_error_rate = 0.04;

  struct TransportCase {
    std::string label;
    GatherTransport transport;
    WireCodecKind codec;
    bool batch;
  };
  const TransportCase cases[] = {
      {"direct", GatherTransport::kDirect, WireCodecKind::kCompact, false},
      {"message-compact", GatherTransport::kMessage, WireCodecKind::kCompact,
       false},
      {"message-tagged", GatherTransport::kMessage, WireCodecKind::kTagged,
       false},
      {"message-batched", GatherTransport::kMessage, WireCodecKind::kCompact,
       true},
  };
  for (const bool topk : {false, true}) {
    GatherResult baseline;
    for (const TransportCase& tc : cases) {
      InProcessCluster cluster(5, PlacementKind::kDhtRandom, StoreOptions{},
                               7, 2);
      const WorkloadSpec workload = LoadUniform(cluster, 150, 30);
      FaultInjector injector(fault_config);
      cluster.AttachFaultInjector(&injector);
      cluster.KillNode(2);

      GatherOptions options;
      options.max_attempts = 4;
      options.transport = tc.transport;
      options.codec = tc.codec;
      options.batch = tc.batch;
      const QueryPlan plan =
          topk ? MakeTopKPlan(workload, TopKSpec{9})
               : MakeScanPlan(workload, ScanSpec{1, 3, 40});
      const GatherResult result = cluster.Gather(plan, options);
      EXPECT_FALSE(result.partial) << tc.label;  // replica 2 covered it
      if (tc.label == "direct") {
        baseline = result;
        EXPECT_FALSE(baseline.rows.empty());
      } else {
        ExpectSameResult(baseline, result,
                         (topk ? "topk " : "scan ") + tc.label);
      }
    }
  }
}

TEST(QueryPlanTest, ParityHoldsAcrossARingEpochBump) {
  for (const bool message : {false, true}) {
    InProcessCluster cluster(4, PlacementKind::kDhtRandom, StoreOptions{}, 7,
                             2);
    const WorkloadSpec workload = LoadUniform(cluster, 120, 24);
    const GatherResult before =
        cluster.Gather(MakeScanPlan(workload, ScanSpec{0, 2, 0}));

    // A join mid-life: ownership moves, the ring epoch bumps, and the
    // same plan must read the same rows through the new routing.
    auto joined = cluster.AddNode();
    ASSERT_TRUE(joined.ok());
    ASSERT_GE(cluster.ring_epoch(), 1u);

    GatherOptions options;
    options.transport =
        message ? GatherTransport::kMessage : GatherTransport::kDirect;
    const GatherResult after =
        cluster.Gather(MakeScanPlan(workload, ScanSpec{0, 2, 0}), options);
    EXPECT_EQ(before.rows, after.rows) << (message ? "message" : "direct");
    EXPECT_FALSE(after.partial);
  }
}

// ---------------------------------------------------------------------------
// D8tree box queries: partition pruning

class BoxQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AlyaParams params;
    params.particles = 6000;
    params.seed = 17;
    particles_ = GenerateAlyaParticles(params);
    tree_.emplace(particles_, 4);
    cluster_.emplace(4, PlacementKind::kDhtRandom, StoreOptions{},
                     uint64_t{7}, 2u);
    for (const D8Tree::CubeRef& cube : tree_->AllCubes()) {
      const std::string key = CubeKey(cube.level, cube.morton);
      for (const uint64_t id : tree_->CubeParticles(cube.level, cube.morton)) {
        Column column;
        column.clustering = id;
        column.type_id = particles_[id].type;
        column.payload = MakePayload(cube.morton, id, kParticlePayloadBytes);
        ASSERT_TRUE(cluster_->Put("cubes", key, std::move(column)).ok());
      }
    }
    cluster_->FlushAll();
  }

  std::vector<Particle> particles_;
  std::optional<D8Tree> tree_;
  std::optional<InProcessCluster> cluster_;
};

TEST_F(BoxQueryTest, BoxPlanPrunesAndCountsMatchTheTree) {
  const D8Tree::Box box{0.2f, 0.2f, 0.2f, 0.65f, 0.65f, 0.65f};
  const QueryPlan plan = MakeBoxPlan(*tree_, "cubes", box, 64);

  // Pruning is the point: the plan must route to strictly fewer
  // partitions than the table holds, and account for every candidate.
  ASSERT_FALSE(plan.partitions.empty());
  EXPECT_LT(plan.partitions.size(), tree_->AllCubes().size());
  EXPECT_EQ(plan.partitions.size() + plan.partitions_pruned,
            plan.candidate_partitions);
  EXPECT_EQ(plan.candidate_partitions, tree_->AllCubes().size());

  const GatherResult result = cluster_->Gather(plan);
  EXPECT_FALSE(result.partial);
  EXPECT_EQ(result.partitions_missing, 0u);
  EXPECT_EQ(result.partitions_touched, plan.partitions.size());
  EXPECT_EQ(result.partitions_pruned, plan.partitions_pruned);
  EXPECT_LT(result.partitions_touched,
            static_cast<uint64_t>(tree_->AllCubes().size()));

  // Interior totals are exact; boundary totals bound the filtering work:
  // interior <= true answer <= interior + boundary.
  uint64_t interior = 0, boundary = 0;
  for (const auto& [type, count] : result.totals) interior += count;
  for (const auto& [type, count] : result.boundary_totals) boundary += count;
  const uint64_t truth = tree_->BoxQueryBruteForce(box).size();
  EXPECT_LE(interior, truth);
  EXPECT_LE(truth, interior + boundary);
  EXPECT_GT(interior, 0u);

  // Per-type interior counts match counting the interior cubes by hand.
  TypeCounts interior_truth;
  for (const D8Tree::PlanEntry& entry : tree_->BoxQueryPlan(box, 64)) {
    if (!entry.fully_inside) continue;
    for (const uint64_t id :
         tree_->CubeParticles(entry.cube.level, entry.cube.morton)) {
      ++interior_truth[particles_[id].type];
    }
  }
  EXPECT_EQ(result.totals, interior_truth);
}

TEST_F(BoxQueryTest, BoxIsTransportInvariantAndSurvivesChaos) {
  const D8Tree::Box box{0.1f, 0.3f, 0.1f, 0.7f, 0.8f, 0.6f};
  const QueryPlan plan = MakeBoxPlan(*tree_, "cubes", box, 64);

  const GatherResult direct = cluster_->Gather(plan);

  FaultConfig fault_config;
  fault_config.seed = 55;
  fault_config.read_error_rate = 0.05;
  FaultInjector injector(fault_config);
  cluster_->AttachFaultInjector(&injector);
  cluster_->KillNode(1);

  GatherOptions options;
  options.max_attempts = 4;
  options.transport = GatherTransport::kMessage;
  const GatherResult message = cluster_->Gather(plan, options);
  EXPECT_GT(message.retries, 0u);  // chaos was live, replica 2 absorbed it
  ExpectSameResult(direct, message, "box direct vs message under chaos");
}

// ---------------------------------------------------------------------------
// Telemetry: per-kind counters and flight-recorder tags

TEST(QueryPlanTest, QueryKindReachesCountersAndFlightRecorder) {
  MetricsRegistry registry;
  FlightRecorder recorder{FlightRecorder::Options{}};
  InProcessCluster cluster(3, PlacementKind::kDhtRandom, StoreOptions{}, 7);
  cluster.AttachTelemetry(nullptr, &registry);
  cluster.AttachFlightRecorder(&recorder);
  const WorkloadSpec workload = LoadUniform(cluster, 60, 12);

  cluster.Gather(MakeCountPlan(workload));
  cluster.Gather(MakeScanPlan(workload, ScanSpec{0, 4, 0}));
  cluster.Gather(MakeTopKPlan(workload, TopKSpec{3}));
  GatherOptions message;
  message.transport = GatherTransport::kMessage;
  cluster.Gather(MakeTopKPlan(workload, TopKSpec{3}), message);

  EXPECT_EQ(registry.GetCounter("cluster.query.count").Value(), 1u);
  EXPECT_EQ(registry.GetCounter("cluster.query.scan").Value(), 1u);
  EXPECT_EQ(registry.GetCounter("cluster.query.topk").Value(), 2u);
  EXPECT_EQ(registry.GetCounter("cluster.query.box").Value(), 0u);

  // Every Put during the load deposited a "put" record; the four gathers
  // follow them in issue order.
  const auto all = recorder.snapshot();
  ASSERT_EQ(all.size(), 64u);  // 60 puts + 4 gathers
  std::vector<QueryRecord> records;
  for (const QueryRecord& record : all) {
    if (record.query_kind != "put") records.push_back(record);
  }
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].query_kind, "count");
  EXPECT_EQ(records[1].query_kind, "scan");
  EXPECT_EQ(records[2].query_kind, "topk");
  EXPECT_EQ(records[3].query_kind, "topk");
  EXPECT_EQ(records[3].transport, "message");
  EXPECT_NE(recorder.ToJsonl().find("\"query_kind\":\"scan\""),
            std::string::npos);
}

}  // namespace
}  // namespace kvscale
