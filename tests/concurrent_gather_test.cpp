// Tests for the shared multi-query node runtime: runtime reuse across
// gathers, admission control (block and shed), per-query clock and reply
// isolation, N-client bit-identical parity with sequential gathers
// (healthy and under chaos), and the scatter-latency (t0) regression.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "cluster/in_process_cluster.hpp"
#include "cluster/node_runtime.hpp"
#include "store/row.hpp"
#include "telemetry/metrics_registry.hpp"
#include "trace/stage_trace.hpp"
#include "wire/messages.hpp"

namespace kvscale {
namespace {

WorkloadSpec LoadUniform(InProcessCluster& cluster, int partitions,
                         int columns, TypeCounts* truth = nullptr) {
  WorkloadSpec workload;
  workload.table = "t";
  for (int part = 0; part < partitions; ++part) {
    const std::string key = "p" + std::to_string(part);
    for (int i = 0; i < columns; ++i) {
      Column c;
      c.clustering = i;
      c.type_id = i % 5;
      c.payload = MakePayload(part, i, 24);
      EXPECT_TRUE(cluster.Put("t", key, std::move(c)).ok());
      if (truth != nullptr) ++(*truth)[i % 5];
    }
    workload.partitions.push_back(
        PartitionRef{key, static_cast<uint32_t>(columns)});
  }
  return workload;
}

void ExpectSameAccounting(const GatherResult& a, const GatherResult& b,
                          const std::string& label) {
  EXPECT_EQ(a.totals, b.totals) << label;
  EXPECT_EQ(a.requests_per_node, b.requests_per_node) << label;
  EXPECT_EQ(a.errors_per_node, b.errors_per_node) << label;
  EXPECT_EQ(a.partitions_missing, b.partitions_missing) << label;
  EXPECT_EQ(a.subqueries, b.subqueries) << label;
  EXPECT_EQ(a.completed, b.completed) << label;
  EXPECT_EQ(a.failed, b.failed) << label;
  EXPECT_EQ(a.retries, b.retries) << label;
  EXPECT_EQ(a.hedged, b.hedged) << label;
  EXPECT_EQ(a.partial, b.partial) << label;
  EXPECT_EQ(a.lost_partitions, b.lost_partitions) << label;
  EXPECT_DOUBLE_EQ(a.virtual_latency_us, b.virtual_latency_us) << label;
}

// ---------------------------------------------------------------------------
// Runtime lifecycle: one build, many gathers

TEST(SharedRuntimeTest, ReusedAcrossGathersAndRebuiltOnStructuralChange) {
  InProcessCluster cluster(3, PlacementKind::kDhtRandom, StoreOptions{}, 7);
  TypeCounts truth;
  const WorkloadSpec workload = LoadUniform(cluster, 30, 6, &truth);
  cluster.FlushAll();
  EXPECT_EQ(cluster.runtime_builds(), 0u);  // lazily built: nothing yet

  GatherOptions options;
  options.transport = GatherTransport::kMessage;
  for (int round = 0; round < 4; ++round) {
    EXPECT_EQ(cluster.CountByTypeAll(workload, options).totals, truth);
  }
  EXPECT_EQ(cluster.runtime_builds(), 1u);  // four gathers, one runtime

  // Codec and batching are per-query settings: no rebuild.
  options.codec = WireCodecKind::kTagged;
  options.batch = true;
  EXPECT_EQ(cluster.CountByTypeAll(workload, options).totals, truth);
  EXPECT_EQ(cluster.runtime_builds(), 1u);

  // Queue depth and worker count shape the queues and pools themselves:
  // the next gather must rebuild.
  options.workers_per_node = 3;
  EXPECT_EQ(cluster.CountByTypeAll(workload, options).totals, truth);
  EXPECT_EQ(cluster.runtime_builds(), 2u);
  EXPECT_EQ(cluster.CountByTypeAll(workload, options).totals, truth);
  EXPECT_EQ(cluster.runtime_builds(), 2u);
}

// ---------------------------------------------------------------------------
// Admission control at the runtime level (deterministic)

TEST(AdmissionControlTest, RejectPolicyShedsAtTheLimitAndRearms) {
  CompactCodec registry;
  RegisterClusterMessages(registry);
  NodeRuntimeOptions options;
  options.max_inflight_queries = 1;
  options.on_admission_full = QueueFullPolicy::kReject;
  NodeRuntime runtime(
      1, options,
      [](uint32_t, const SubQueryRequest&, ReadProbe*) -> Result<OperatorResult> {
        return OperatorResult{};
      },
      registry, nullptr, nullptr, nullptr);

  ASSERT_TRUE(runtime.BeginQuery(1, NodeRuntime::QueryOptions{}).ok());
  EXPECT_EQ(runtime.inflight_queries(), 1u);
  const Status second = runtime.BeginQuery(2, NodeRuntime::QueryOptions{});
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(runtime.admitted(), 1u);
  EXPECT_EQ(runtime.shed(), 1u);

  runtime.EndQuery(1);  // the slot frees up...
  EXPECT_TRUE(runtime.BeginQuery(2, NodeRuntime::QueryOptions{}).ok());

  // ...and raising the limit admits a second concurrent query.
  runtime.SetAdmissionLimit(2, QueueFullPolicy::kReject);
  EXPECT_TRUE(runtime.BeginQuery(3, NodeRuntime::QueryOptions{}).ok());
  EXPECT_EQ(runtime.inflight_queries(), 2u);
  runtime.EndQuery(2);
  runtime.EndQuery(3);
}

TEST(AdmissionControlTest, BlockPolicyWaitsForASlot) {
  CompactCodec registry;
  RegisterClusterMessages(registry);
  NodeRuntimeOptions options;
  options.max_inflight_queries = 1;
  options.on_admission_full = QueueFullPolicy::kBlock;
  NodeRuntime runtime(
      1, options,
      [](uint32_t, const SubQueryRequest&, ReadProbe*) -> Result<OperatorResult> {
        return OperatorResult{};
      },
      registry, nullptr, nullptr, nullptr);

  ASSERT_TRUE(runtime.BeginQuery(1, NodeRuntime::QueryOptions{}).ok());
  std::thread waiter([&] {
    // Must block until query 1 releases its slot, then be admitted.
    EXPECT_TRUE(runtime.BeginQuery(2, NodeRuntime::QueryOptions{}).ok());
    runtime.EndQuery(2);
  });
  runtime.EndQuery(1);
  waiter.join();
  EXPECT_EQ(runtime.admitted(), 2u);
  EXPECT_EQ(runtime.shed(), 0u);
  EXPECT_EQ(runtime.inflight_queries(), 0u);
}

TEST(AdmissionControlTest, PerQueryClocksAreIsolated) {
  CompactCodec registry;
  RegisterClusterMessages(registry);
  NodeRuntimeOptions options;
  NodeRuntime runtime(
      1, options,
      [](uint32_t, const SubQueryRequest&, ReadProbe*) -> Result<OperatorResult> {
        return OperatorResult{};
      },
      registry, nullptr, nullptr, nullptr);
  ASSERT_TRUE(runtime.BeginQuery(1, NodeRuntime::QueryOptions{}).ok());
  ASSERT_TRUE(runtime.BeginQuery(2, NodeRuntime::QueryOptions{}).ok());
  runtime.AdvanceClock(1, 750.0);
  // One query's backoff charge never moves another query's deadline.
  EXPECT_DOUBLE_EQ(runtime.clock_us(1), 750.0);
  EXPECT_DOUBLE_EQ(runtime.clock_us(2), 0.0);
  runtime.EndQuery(1);
  runtime.EndQuery(2);
}

// ---------------------------------------------------------------------------
// Concurrent gathers: bit-identical to sequential

TEST(ConcurrentGatherTest, EightClientsMatchSequentialBitForBit) {
  InProcessCluster cluster(4, PlacementKind::kDhtRandom, StoreOptions{}, 7,
                           2);
  TypeCounts truth;
  const WorkloadSpec workload = LoadUniform(cluster, 48, 10, &truth);
  cluster.FlushAll();

  GatherOptions options;
  options.transport = GatherTransport::kMessage;
  options.batch = true;
  options.workers_per_node = 2;
  const GatherResult sequential = cluster.CountByTypeAll(workload, options);
  ASSERT_EQ(sequential.totals, truth);
  const uint64_t builds_before = cluster.runtime_builds();

  // All eight clients record into one shared tracer — Record must be
  // thread-safe (this is what TSan watches here).
  StageTracer stages;
  cluster.AttachStageTracer(&stages);
  const ConcurrentGatherReport report =
      cluster.CountByTypeAllConcurrent(workload, 8, 2, options);
  EXPECT_EQ(stages.size(), 16u * sequential.subqueries);
  EXPECT_EQ(report.queries, 16u);
  EXPECT_EQ(report.admitted, 16u);
  EXPECT_EQ(report.shed, 0u);
  EXPECT_GT(report.queries_per_sec, 0.0);
  ASSERT_EQ(report.results.size(), 16u);
  for (size_t i = 0; i < report.results.size(); ++i) {
    ExpectSameAccounting(report.results[i], sequential,
                         "client query " + std::to_string(i));
  }
  // Every concurrent query flowed through the already-built runtime: no
  // per-gather queue or worker-pool construction.
  EXPECT_EQ(cluster.runtime_builds(), builds_before);
}

TEST(ConcurrentGatherTest, ChaosCrossfireStaysIsolatedPerQuery) {
  InProcessCluster cluster(6, PlacementKind::kDhtRandom, StoreOptions{}, 7,
                           3);
  TypeCounts truth;
  const WorkloadSpec workload = LoadUniform(cluster, 40, 12, &truth);
  cluster.FlushAll();

  FaultConfig config;
  config.seed = 1234;
  config.read_error_rate = 0.02;
  config.latency_spike_rate = 0.1;
  config.latency_spike_us = 2.0 * kMillisecond;
  config.reply_corrupt_rate = 0.05;
  FaultInjector injector(config);
  cluster.AttachFaultInjector(&injector);
  cluster.KillNode(2);

  GatherOptions options;
  options.transport = GatherTransport::kMessage;
  options.max_attempts = 6;
  options.workers_per_node = 2;
  const GatherResult sequential = cluster.CountByTypeAll(workload, options);
  ASSERT_EQ(sequential.totals, truth);

  // Stateless per-attempt fault decisions + per-query clocks + query-id
  // demux: eight clients under crossfire each see the sequential result,
  // bit for bit, including retry and error accounting.
  const ConcurrentGatherReport report =
      cluster.CountByTypeAllConcurrent(workload, 8, 1, options);
  ASSERT_EQ(report.results.size(), 8u);
  for (size_t i = 0; i < report.results.size(); ++i) {
    ExpectSameAccounting(report.results[i], sequential,
                         "chaos client " + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// Admission control at the cluster level

TEST(ConcurrentGatherTest, ShedQueriesAreAccountedAndWellFormed) {
  MetricsRegistry registry;
  InProcessCluster cluster(2, PlacementKind::kDhtRandom, StoreOptions{}, 7);
  cluster.AttachTelemetry(nullptr, &registry);
  TypeCounts truth;
  const WorkloadSpec workload = LoadUniform(cluster, 40, 4, &truth);
  cluster.FlushAll();

  GatherOptions options;
  options.transport = GatherTransport::kMessage;
  options.max_inflight = 1;
  options.admission_policy = QueueFullPolicy::kReject;
  const ConcurrentGatherReport report =
      cluster.CountByTypeAllConcurrent(workload, 8, 4, options);

  // How many queries bounce depends on scheduling, but the report must
  // balance exactly and every result must be internally consistent.
  EXPECT_EQ(report.admitted + report.shed, report.queries);
  EXPECT_GT(report.admitted, 0u);  // one query always holds the slot
  for (const GatherResult& r : report.results) {
    EXPECT_EQ(r.completed + r.failed, r.subqueries);
    if (r.shed_by_admission) {
      // Nothing was dispatched: every sub-query is a named loss.
      EXPECT_EQ(r.failed, r.subqueries);
      EXPECT_EQ(r.lost_partitions.size(), workload.partitions.size());
      EXPECT_TRUE(r.partial);
    } else {
      EXPECT_EQ(r.totals, truth);
      EXPECT_EQ(r.failed, 0u);
    }
  }
  EXPECT_EQ(registry.GetCounter("master.admission.admitted").Value(),
            report.admitted);
  EXPECT_EQ(registry.GetCounter("master.admission.shed").Value(),
            report.shed);
  EXPECT_EQ(registry.GetGauge("master.queries.inflight").Value(), 0.0);
}

TEST(ConcurrentGatherTest, BlockAdmissionThrottlesWithoutLoss) {
  InProcessCluster cluster(2, PlacementKind::kDhtRandom, StoreOptions{}, 7);
  TypeCounts truth;
  const WorkloadSpec workload = LoadUniform(cluster, 30, 4, &truth);
  cluster.FlushAll();

  GatherOptions options;
  options.transport = GatherTransport::kMessage;
  options.max_inflight = 2;
  options.admission_policy = QueueFullPolicy::kBlock;
  const GatherResult sequential = cluster.CountByTypeAll(workload, options);
  const ConcurrentGatherReport report =
      cluster.CountByTypeAllConcurrent(workload, 6, 2, options);
  EXPECT_EQ(report.shed, 0u);
  EXPECT_EQ(report.admitted, report.queries);
  for (size_t i = 0; i < report.results.size(); ++i) {
    ExpectSameAccounting(report.results[i], sequential,
                         "blocked client " + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// Satellite regression: sub-query latency must not include scatter skew

TEST(ConcurrentGatherTest, SubQueryLatencyExcludesScatterQueueingOfOthers) {
  MetricsRegistry registry;
  InProcessCluster cluster(1, PlacementKind::kDhtRandom, StoreOptions{}, 7);
  cluster.AttachTelemetry(nullptr, &registry);
  const WorkloadSpec workload = LoadUniform(cluster, 600, 2);
  cluster.FlushAll();

  // One node, one worker, a depth-1 queue, blocking sends: the scatter
  // loop itself serializes behind the store, so dispatches spread over
  // nearly the whole gather. Before the fix every sub-query's latency
  // clock started when the *gather* began, so even the last-scattered
  // sub-query reported the full wall time (Min ~= Mean ~= wall). Stamped
  // at its own first dispatch, a late sub-query measures only its short
  // queue+store+collect tail, and the mean drops to ~wall/2 (an early
  // sub-query still legitimately waits out the rest of the scatter
  // before the collect loop resolves it).
  GatherOptions options;
  options.transport = GatherTransport::kMessage;
  options.queue_depth = 1;
  options.workers_per_node = 1;
  options.queue_policy = QueueFullPolicy::kBlock;

  const auto start = std::chrono::steady_clock::now();
  const GatherResult result = cluster.CountByTypeAll(workload, options);
  const double wall_us = std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  ASSERT_EQ(result.failed, 0u);

  const LatencyHistogram& lat =
      registry.GetHistogram("cluster.subquery.latency_us");
  ASSERT_EQ(lat.Count(), workload.partitions.size());
  EXPECT_LT(lat.Min() * 4.0, wall_us)
      << "a late-scattered sub-query was charged its predecessors' time";
  EXPECT_LT(lat.Mean(), 0.85 * wall_us)
      << "mean sub-query latency tracks the whole gather, not dispatch";
}

}  // namespace
}  // namespace kvscale
