// Tests for the message-driven node runtime and the message-transport
// gather: bounded-queue semantics, backpressure policies, codec/batch
// parity with the direct gather (healthy and under chaos), deadline
// sheds, in-flight reply corruption, and the real four-stage timestamps.
#include <gtest/gtest.h>

#include <latch>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "cluster/in_process_cluster.hpp"
#include "cluster/node_runtime.hpp"
#include "store/row.hpp"
#include "telemetry/metrics_registry.hpp"
#include "trace/stage_trace.hpp"
#include "wire/messages.hpp"

namespace kvscale {
namespace {

/// Same loader the fault-injection suite uses: `partitions` partitions of
/// `columns` columns, five type ids, with the expected aggregation in
/// `truth`.
WorkloadSpec LoadUniform(InProcessCluster& cluster, int partitions,
                         int columns, TypeCounts* truth = nullptr) {
  WorkloadSpec workload;
  workload.table = "t";
  for (int part = 0; part < partitions; ++part) {
    const std::string key = "p" + std::to_string(part);
    for (int i = 0; i < columns; ++i) {
      Column c;
      c.clustering = i;
      c.type_id = i % 5;
      c.payload = MakePayload(part, i, 24);
      EXPECT_TRUE(cluster.Put("t", key, std::move(c)).ok());
      if (truth != nullptr) ++(*truth)[i % 5];
    }
    workload.partitions.push_back(
        PartitionRef{key, static_cast<uint32_t>(columns)});
  }
  return workload;
}

/// Field-by-field comparison of the accounting two gathers produced.
void ExpectSameAccounting(const GatherResult& a, const GatherResult& b,
                          const std::string& label) {
  EXPECT_EQ(a.totals, b.totals) << label;
  EXPECT_EQ(a.requests_per_node, b.requests_per_node) << label;
  EXPECT_EQ(a.errors_per_node, b.errors_per_node) << label;
  EXPECT_EQ(a.partitions_missing, b.partitions_missing) << label;
  EXPECT_EQ(a.subqueries, b.subqueries) << label;
  EXPECT_EQ(a.completed, b.completed) << label;
  EXPECT_EQ(a.failed, b.failed) << label;
  EXPECT_EQ(a.retries, b.retries) << label;
  EXPECT_EQ(a.hedged, b.hedged) << label;
  EXPECT_EQ(a.partial, b.partial) << label;
  EXPECT_EQ(a.lost_partitions, b.lost_partitions) << label;
  EXPECT_DOUBLE_EQ(a.virtual_latency_us, b.virtual_latency_us) << label;
}

// ---------------------------------------------------------------------------
// BoundedQueue

TEST(BoundedQueueTest, PushPopIsFifo) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.Push(i));
  EXPECT_EQ(queue.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    auto item = queue.Pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueueTest, TryPushRejectsExactlyAtCapacity) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // full: deterministic, no consumer racing
  ASSERT_TRUE(queue.Pop().has_value());
  EXPECT_TRUE(queue.TryPush(4));  // one slot freed, one accepted again
}

TEST(BoundedQueueTest, BlockingPushWaitsForASlot) {
  BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.Push(1));
  std::thread producer([&] { EXPECT_TRUE(queue.Push(2)); });  // must block
  // The consumer drains both items; the producer can only finish if its
  // blocked Push was woken by the first Pop.
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_EQ(queue.Pop().value(), 2);
  producer.join();
}

TEST(BoundedQueueTest, CloseDrainsRemainingItemsThenSignalsEnd) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.Push(7));
  queue.Close();
  EXPECT_FALSE(queue.Push(8));     // closed: producers are refused
  EXPECT_FALSE(queue.TryPush(9));
  EXPECT_EQ(queue.Pop().value(), 7);        // the backlog still drains
  EXPECT_FALSE(queue.Pop().has_value());    // then the end is signalled
}

TEST(BoundedQueueTest, OnEnqueueHookRunsBeforeInsertion) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.Push(1, [](int& v) { v *= 10; }));
  EXPECT_TRUE(queue.TryPush(2, [](int& v) { v *= 10; }));
  EXPECT_EQ(queue.Pop().value(), 10);
  EXPECT_EQ(queue.Pop().value(), 20);
}

// ---------------------------------------------------------------------------
// NodeRuntime

TEST(NodeRuntimeTest, DispatchRoundTripsOneSubQuery) {
  CompactCodec registry;
  RegisterClusterMessages(registry);
  NodeRuntimeOptions options;
  NodeRuntime runtime(
      2, options,
      [](uint32_t, const SubQueryRequest& req, ReadProbe* probe)
          -> Result<OperatorResult> {
        probe->columns_returned = req.expected_elements;
        return OperatorResult{{3}, {req.expected_elements}};
      },
      registry, nullptr, nullptr, nullptr);
  ASSERT_TRUE(runtime.BeginQuery(42, NodeRuntime::QueryOptions{}).ok());

  SubQueryRequest req;
  req.query_id = 42;
  req.sub_id = 7;
  req.table = "t";
  req.partition_key = "p7";
  req.expected_elements = 11;
  const uint32_t attempt = 0;
  const Micros extra = 0.0;
  ASSERT_TRUE(runtime
                  .Dispatch(42, 1, std::span<const SubQueryRequest>(&req, 1),
                            std::span<const uint32_t>(&attempt, 1),
                            std::span<const Micros>(&extra, 1))
                  .ok());

  const NodeRuntime::DecodedReply reply = runtime.AwaitReply(42);
  EXPECT_EQ(reply.node, 1u);
  EXPECT_EQ(reply.sub_id, 7u);
  EXPECT_TRUE(reply.store_read);
  ASSERT_TRUE(reply.reply.ok());
  EXPECT_EQ(reply.reply.value().status, 0u);
  ASSERT_EQ(reply.reply.value().type_ids.size(), 1u);
  EXPECT_EQ(reply.reply.value().type_ids[0], 3u);
  EXPECT_EQ(reply.reply.value().counts[0], 11u);
  EXPECT_EQ(reply.probe.columns_returned, 11u);
  // The five timestamps delimit the paper's four stages in order.
  EXPECT_LE(reply.issued_us, reply.received_us);
  EXPECT_LE(reply.received_us, reply.db_start_us);
  EXPECT_LE(reply.db_start_us, reply.db_end_us);

  const NodeRuntime::WireStats wire = runtime.wire_stats();
  EXPECT_EQ(wire.frames_sent, 1u);
  EXPECT_GT(wire.bytes_sent, 0u);
  EXPECT_GT(wire.bytes_received, 0u);
  // The query's private accounting matches: it was the only traffic.
  const NodeRuntime::WireStats own = runtime.query_wire_stats(42);
  EXPECT_EQ(own.frames_sent, wire.frames_sent);
  EXPECT_EQ(own.bytes_sent, wire.bytes_sent);
  EXPECT_EQ(own.bytes_received, wire.bytes_received);
  runtime.EndQuery(42);
  EXPECT_EQ(runtime.inflight_queries(), 0u);
}

TEST(NodeRuntimeTest, RejectPolicyShedsWhenQueueAndWorkerAreBusy) {
  CompactCodec registry;
  RegisterClusterMessages(registry);
  std::latch worker_started(1);
  std::latch release_worker(1);
  NodeRuntimeOptions options;
  options.queue_depth = 1;
  options.workers_per_node = 1;
  options.on_queue_full = QueueFullPolicy::kReject;
  NodeRuntime runtime(
      1, options,
      [&](uint32_t, const SubQueryRequest& req, ReadProbe*)
          -> Result<OperatorResult> {
        if (req.sub_id == 0) {
          worker_started.count_down();
          release_worker.wait();
        }
        return OperatorResult{};
      },
      registry, nullptr, nullptr, nullptr);
  ASSERT_TRUE(runtime.BeginQuery(9, NodeRuntime::QueryOptions{}).ok());

  auto dispatch_one = [&](uint32_t sub_id) {
    SubQueryRequest req;
    req.query_id = 9;
    req.sub_id = sub_id;
    req.table = "t";
    req.partition_key = "p" + std::to_string(sub_id);
    const uint32_t attempt = 0;
    const Micros extra = 0.0;
    return runtime.Dispatch(9, 0, std::span<const SubQueryRequest>(&req, 1),
                            std::span<const uint32_t>(&attempt, 1),
                            std::span<const Micros>(&extra, 1));
  };

  ASSERT_TRUE(dispatch_one(0).ok());
  worker_started.wait();  // the only worker now holds sub 0, queue empty
  ASSERT_TRUE(dispatch_one(1).ok());  // fills the depth-1 queue
  const Status rejected = dispatch_one(2);
  ASSERT_FALSE(rejected.ok());  // deterministically full
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);

  release_worker.count_down();
  EXPECT_TRUE(runtime.AwaitReply(9).reply.ok());
  EXPECT_TRUE(runtime.AwaitReply(9).reply.ok());
  EXPECT_EQ(runtime.wire_stats().frames_sent, 2u);  // the reject sent nothing
  runtime.EndQuery(9);
}

// ---------------------------------------------------------------------------
// Message-transport gather: parity with the direct path

TEST(MessageGatherTest, HealthyRunMatchesDirectAcrossCodecsAndBatching) {
  InProcessCluster cluster(4, PlacementKind::kDhtRandom, StoreOptions{}, 7,
                           2);
  TypeCounts truth;
  const WorkloadSpec workload = LoadUniform(cluster, 48, 12, &truth);
  cluster.FlushAll();

  const GatherResult direct = cluster.CountByTypeAll(workload);
  ASSERT_EQ(direct.totals, truth);

  for (const WireCodecKind codec :
       {WireCodecKind::kTagged, WireCodecKind::kCompact}) {
    for (const bool batch : {false, true}) {
      for (const uint32_t workers : {1u, 3u}) {
        GatherOptions options;
        options.transport = GatherTransport::kMessage;
        options.codec = codec;
        options.batch = batch;
        options.workers_per_node = workers;
        const GatherResult message = cluster.CountByTypeAll(workload, options);
        const std::string label = std::string(WireCodecName(codec)) +
                                  (batch ? "/batch" : "/single") + "/w" +
                                  std::to_string(workers);
        ExpectSameAccounting(message, direct, label);
        EXPECT_GT(message.wire_frames_sent, 0u) << label;
        EXPECT_GT(message.wire_bytes_sent, 0u) << label;
        EXPECT_GT(message.wire_bytes_received, 0u) << label;
      }
    }
  }
}

// The PR 2 headline chaos scenario (replication 3, one dead node, 1%
// injected errors, one corrupted block) executed over real encoded
// messages must land on the exact healthy answer with the exact same
// accounting as the direct failover path.
TEST(MessageGatherTest, ChaosRunMatchesDirectBitForBit) {
  InProcessCluster cluster(6, PlacementKind::kDhtRandom, StoreOptions{}, 7,
                           3);
  TypeCounts truth;
  const WorkloadSpec workload = LoadUniform(cluster, 60, 30, &truth);
  cluster.FlushAll();

  FaultConfig config;
  config.seed = 1234;
  config.read_error_rate = 0.01;
  FaultInjector injector(config);
  cluster.AttachFaultInjector(&injector);
  cluster.KillNode(1);
  auto table = cluster.node(0).FindTable("t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(table.value()->CorruptBlockForFaultInjection(0, 0, 12345).ok());

  GatherOptions direct_options;
  direct_options.max_attempts = 4;
  const GatherResult direct = cluster.CountByTypeAll(workload, direct_options);
  ASSERT_EQ(direct.totals, truth);
  ASSERT_GT(direct.retries, 0u);

  GatherOptions message_options = direct_options;
  message_options.transport = GatherTransport::kMessage;
  message_options.codec = WireCodecKind::kCompact;
  message_options.batch = true;
  const GatherResult message =
      cluster.CountByTypeAll(workload, message_options);

  EXPECT_EQ(message.totals, truth);
  ExpectSameAccounting(message, direct, "chaos compact/batch");
  EXPECT_GT(message.errors_per_node[1], 0u);  // the dead node was tried
  // Batching coalesced the scatter: far fewer frames than sub-queries.
  EXPECT_LT(message.wire_frames_sent,
            message.subqueries + message.retries);
}

TEST(MessageGatherTest, HedgedSpikyRunMatchesDirect) {
  InProcessCluster cluster(4, PlacementKind::kDhtRandom, StoreOptions{}, 7,
                           2);
  TypeCounts truth;
  const WorkloadSpec workload = LoadUniform(cluster, 60, 6, &truth);
  cluster.FlushAll();

  FaultConfig config;
  config.seed = 9;
  config.latency_spike_rate = 0.3;
  config.latency_spike_us = 10.0 * kMillisecond;
  FaultInjector injector(config);
  cluster.AttachFaultInjector(&injector);

  GatherOptions direct_options;
  direct_options.hedge = true;
  direct_options.hedge_threshold_us = 1.0 * kMillisecond;
  const GatherResult direct = cluster.CountByTypeAll(workload, direct_options);
  ASSERT_GT(direct.hedged, 0u);

  GatherOptions message_options = direct_options;
  message_options.transport = GatherTransport::kMessage;
  const GatherResult message =
      cluster.CountByTypeAll(workload, message_options);
  EXPECT_EQ(message.totals, truth);
  ExpectSameAccounting(message, direct, "hedged spiky");
}

TEST(MessageGatherTest, ParallelDelegatesToWorkerPoolsAndMatches) {
  InProcessCluster cluster(4, PlacementKind::kDhtRandom, StoreOptions{}, 7,
                           2);
  const WorkloadSpec workload = LoadUniform(cluster, 50, 12);
  cluster.FlushAll();

  FaultConfig config;
  config.seed = 555;
  config.read_error_rate = 0.05;
  FaultInjector injector(config);
  cluster.AttachFaultInjector(&injector);
  cluster.KillNode(3);

  GatherOptions options;
  options.max_attempts = 3;
  options.transport = GatherTransport::kMessage;
  const GatherResult serial = cluster.CountByTypeAll(workload, options);
  const GatherResult parallel =
      cluster.CountByTypeAllParallel(workload, 4, options);
  ExpectSameAccounting(parallel, serial, "parallel message");
}

// ---------------------------------------------------------------------------
// Backpressure, deadline sheds, reply corruption

TEST(MessageGatherTest, BlockPolicyIsLosslessUnderATinyQueue) {
  InProcessCluster cluster(2, PlacementKind::kDhtRandom, StoreOptions{}, 7);
  TypeCounts truth;
  const WorkloadSpec workload = LoadUniform(cluster, 80, 4, &truth);
  cluster.FlushAll();

  GatherOptions options;
  options.transport = GatherTransport::kMessage;
  options.queue_depth = 1;  // the master must block on nearly every send
  options.queue_policy = QueueFullPolicy::kBlock;
  const GatherResult result = cluster.CountByTypeAll(workload, options);
  EXPECT_EQ(result.totals, truth);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.completed + result.failed, result.subqueries);
}

TEST(MessageGatherTest, RejectPolicyKeepsTheAccountingInvariant) {
  InProcessCluster cluster(1, PlacementKind::kDhtRandom, StoreOptions{}, 7);
  TypeCounts truth;
  const WorkloadSpec workload = LoadUniform(cluster, 400, 2, &truth);
  cluster.FlushAll();

  GatherOptions options;
  options.transport = GatherTransport::kMessage;
  options.queue_depth = 1;
  options.queue_policy = QueueFullPolicy::kReject;
  options.max_attempts = 2;
  const GatherResult result = cluster.CountByTypeAll(workload, options);
  // How many sends bounce depends on scheduling, but the degraded-result
  // report must balance exactly and name every loss.
  EXPECT_EQ(result.completed + result.failed, result.subqueries);
  EXPECT_EQ(result.lost_partitions.size(), result.failed);
  EXPECT_EQ(result.partial, result.failed > 0);
  if (result.failed == 0) {
    EXPECT_EQ(result.totals, truth);
  }
}

TEST(MessageGatherTest, DeadlineExpiryWhileEnqueuedShedsDeterministically) {
  InProcessCluster cluster(1, PlacementKind::kDhtRandom, StoreOptions{}, 7);
  const WorkloadSpec workload = LoadUniform(cluster, 10, 4);
  cluster.FlushAll();

  // Every served request charges 10 ms of virtual latency against a 1 ms
  // deadline: with one worker and one batched frame, the first request
  // completes and burns the budget, and everything behind it in the
  // queue is shed without touching the store.
  FaultConfig config;
  config.latency_spike_rate = 1.0;
  config.latency_spike_us = 10.0 * kMillisecond;
  FaultInjector injector(config);
  cluster.AttachFaultInjector(&injector);

  GatherOptions options;
  options.transport = GatherTransport::kMessage;
  options.batch = true;
  options.workers_per_node = 1;
  options.max_attempts = 1;
  options.deadline_us = 1.0 * kMillisecond;
  const GatherResult result = cluster.CountByTypeAll(workload, options);

  EXPECT_EQ(result.completed, 1u);
  EXPECT_EQ(result.failed, workload.partitions.size() - 1);
  EXPECT_TRUE(result.partial);
  EXPECT_EQ(result.lost_partitions.size(), result.failed);
  EXPECT_EQ(result.completed + result.failed, result.subqueries);
  // The shed requests never reached the store.
  EXPECT_EQ(result.requests_per_node[0], 1u);
  // Exactly the first scattered partition survived.
  for (const std::string& lost : result.lost_partitions) {
    EXPECT_NE(lost, workload.partitions[0].key);
  }
}

TEST(MessageGatherTest, CorruptedRepliesAreDetectedAndFailedOver) {
  InProcessCluster cluster(3, PlacementKind::kDhtRandom, StoreOptions{}, 7,
                           2);
  TypeCounts truth;
  const WorkloadSpec workload = LoadUniform(cluster, 40, 8, &truth);
  cluster.FlushAll();

  FaultConfig config;
  config.seed = 4242;
  config.reply_corrupt_rate = 0.25;
  FaultInjector injector(config);
  cluster.AttachFaultInjector(&injector);

  GatherOptions options;
  options.transport = GatherTransport::kMessage;
  options.max_attempts = 6;
  const GatherResult result = cluster.CountByTypeAll(workload, options);

  EXPECT_GT(injector.corrupted_replies(), 0u);  // the fault really fired
  EXPECT_EQ(result.totals, truth);  // and the master routed around it
  EXPECT_EQ(result.failed, 0u);
  EXPECT_GT(result.retries, 0u);
  uint64_t errors = 0;
  for (const uint64_t e : result.errors_per_node) errors += e;
  EXPECT_GT(errors, 0u);
  // The direct path never consults the reply injection point.
  const uint64_t before = injector.corrupted_replies();
  const GatherResult direct = cluster.CountByTypeAll(workload);
  EXPECT_EQ(direct.totals, truth);
  EXPECT_EQ(direct.retries, 0u);
  EXPECT_EQ(injector.corrupted_replies(), before);
}

// ---------------------------------------------------------------------------
// Telemetry: stage timestamps and wire instruments

TEST(MessageGatherTest, RecordsOrderedFourStageTimestamps) {
  InProcessCluster cluster(3, PlacementKind::kDhtRandom, StoreOptions{}, 7);
  const WorkloadSpec workload = LoadUniform(cluster, 30, 6);
  cluster.FlushAll();

  StageTracer stages;
  cluster.AttachStageTracer(&stages);
  GatherOptions options;
  options.transport = GatherTransport::kMessage;
  options.batch = true;
  const GatherResult result = cluster.CountByTypeAll(workload, options);
  ASSERT_EQ(result.failed, 0u);

  // One trace per sub-query that reached a store.
  ASSERT_EQ(stages.size(), workload.partitions.size());
  for (const RequestTrace& trace : stages.traces()) {
    EXPECT_LE(trace.issued, trace.received);
    EXPECT_LE(trace.received, trace.db_start);
    EXPECT_LE(trace.db_start, trace.db_end);
    EXPECT_LE(trace.db_end, trace.completed);
    EXPECT_GT(trace.keysize, 0.0);
  }
  EXPECT_GT(stages.Makespan(), 0.0);
  // Every stage has a defined summary over the run.
  for (const Stage stage :
       {Stage::kMasterToSlave, Stage::kInQueue, Stage::kInDb,
        Stage::kSlaveToMaster}) {
    EXPECT_EQ(stages.StageSummary(stage).count(),
              workload.partitions.size());
  }
  // The direct transport records no stages (nothing is queued or encoded).
  stages.Clear();
  cluster.CountByTypeAll(workload);
  EXPECT_EQ(stages.size(), 0u);
}

TEST(MessageGatherTest, ExportsWireCountersAndQueueGauges) {
  MetricsRegistry registry;
  InProcessCluster cluster(2, PlacementKind::kDhtRandom, StoreOptions{}, 7);
  cluster.AttachTelemetry(nullptr, &registry);
  const WorkloadSpec workload = LoadUniform(cluster, 20, 5);
  cluster.FlushAll();

  GatherOptions options;
  options.transport = GatherTransport::kMessage;
  const GatherResult result = cluster.CountByTypeAll(workload, options);

  EXPECT_EQ(registry.GetCounter("wire.bytes.sent").Value(),
            result.wire_bytes_sent);
  EXPECT_EQ(registry.GetCounter("wire.bytes.received").Value(),
            result.wire_bytes_received);
  EXPECT_EQ(registry.GetCounter("wire.frames.sent").Value(),
            result.wire_frames_sent);
  EXPECT_EQ(registry.GetHistogram("wire.encode.latency_us").Count(),
            result.wire_frames_sent + result.subqueries);  // + replies
  EXPECT_GT(registry.GetHistogram("wire.decode.latency_us").Count(), 0u);
  EXPECT_GT(registry.GetHistogram("cluster.queue.wait_us").Count(), 0u);
  // The per-node depth gauges exist (drained back to zero by the end).
  EXPECT_EQ(registry.GetGauge("cluster.queue.depth.node0").Value(), 0.0);
  EXPECT_EQ(registry.GetGauge("cluster.queue.depth.node1").Value(), 0.0);
}

TEST(MessageGatherTest, TaggedCodecCostsMoreBytesThanCompact) {
  InProcessCluster cluster(2, PlacementKind::kDhtRandom, StoreOptions{}, 7);
  const WorkloadSpec workload = LoadUniform(cluster, 50, 4);
  cluster.FlushAll();

  GatherOptions tagged;
  tagged.transport = GatherTransport::kMessage;
  tagged.codec = WireCodecKind::kTagged;
  GatherOptions compact = tagged;
  compact.codec = WireCodecKind::kCompact;

  const GatherResult t = cluster.CountByTypeAll(workload, tagged);
  const GatherResult c = cluster.CountByTypeAll(workload, compact);
  EXPECT_EQ(t.totals, c.totals);
  // The Section V-B gap: self-describing frames dwarf registered-id ones.
  EXPECT_GT(t.wire_bytes_sent, 2 * c.wire_bytes_sent);
  EXPECT_GT(t.wire_bytes_received, c.wire_bytes_received);
}

}  // namespace
}  // namespace kvscale
