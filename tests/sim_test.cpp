// Tests for src/sim: event ordering, determinism, k-server resources.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/resource.hpp"
#include "sim/simulator.hpp"

namespace kvscale {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  const SimTime end = sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(end, 30.0);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(SimulatorTest, SimultaneousEventsFifoByInsertion) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(5.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int chained = 0;
  std::function<void()> chain = [&]() {
    if (++chained < 5) sim.Schedule(1.0, chain);
  };
  sim.Schedule(0.0, chain);
  const SimTime end = sim.Run();
  EXPECT_EQ(chained, 5);
  EXPECT_DOUBLE_EQ(end, 4.0);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] { ++fired; });
  sim.Schedule(20, [&] { ++fired; });
  sim.RunUntil(15);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 15.0);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, NowAdvancesMonotonically) {
  Simulator sim;
  SimTime last = -1;
  for (int i = 0; i < 100; ++i) {
    sim.Schedule(i % 7, [&sim, &last] {
      EXPECT_GE(sim.now(), last);
      last = sim.now();
    });
  }
  sim.Run();
}

TEST(ResourceTest, SingleServerSerialisesJobs) {
  Simulator sim;
  Resource cpu(sim, 1, "cpu");
  std::vector<SimTime> starts, ends;
  for (int i = 0; i < 3; ++i) {
    cpu.Submit(10.0, [&](SimTime, SimTime started, SimTime finished) {
      starts.push_back(started);
      ends.push_back(finished);
    });
  }
  sim.Run();
  ASSERT_EQ(starts.size(), 3u);
  EXPECT_DOUBLE_EQ(starts[0], 0.0);
  EXPECT_DOUBLE_EQ(starts[1], 10.0);
  EXPECT_DOUBLE_EQ(starts[2], 20.0);
  EXPECT_DOUBLE_EQ(ends[2], 30.0);
  EXPECT_EQ(cpu.jobs_completed(), 3u);
  EXPECT_DOUBLE_EQ(cpu.busy_time(), 30.0);
}

TEST(ResourceTest, MultiServerRunsConcurrently) {
  Simulator sim;
  Resource pool(sim, 4, "pool");
  std::vector<SimTime> ends;
  for (int i = 0; i < 8; ++i) {
    pool.Submit(10.0, [&](SimTime, SimTime, SimTime finished) {
      ends.push_back(finished);
    });
  }
  sim.Run();
  ASSERT_EQ(ends.size(), 8u);
  // Two waves of four.
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(ends[i], 10.0);
  for (int i = 4; i < 8; ++i) EXPECT_DOUBLE_EQ(ends[i], 20.0);
}

TEST(ResourceTest, QueueWaitIsObservable) {
  Simulator sim;
  Resource cpu(sim, 1, "cpu");
  SimTime enq2 = -1, start2 = -1;
  cpu.Submit(25.0, [](SimTime, SimTime, SimTime) {});
  cpu.Submit(5.0, [&](SimTime enqueued, SimTime started, SimTime) {
    enq2 = enqueued;
    start2 = started;
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(enq2, 0.0);
  EXPECT_DOUBLE_EQ(start2, 25.0);  // waited behind the first job
}

TEST(ResourceTest, ServiceFnSeesInstantaneousConcurrency) {
  Simulator sim;
  Resource pool(sim, 3, "pool");
  std::vector<uint32_t> seen;
  for (int i = 0; i < 3; ++i) {
    pool.Submit(
        [&seen](uint32_t active) {
          seen.push_back(active);
          return 10.0;
        },
        [](SimTime, SimTime, SimTime) {});
  }
  sim.Run();
  // Submitted back-to-back at t=0: admission sees 1, then 2, then 3.
  EXPECT_EQ(seen, (std::vector<uint32_t>{1, 2, 3}));
}

TEST(ResourceTest, FifoOrderPreserved) {
  Simulator sim;
  Resource cpu(sim, 1, "cpu");
  std::vector<int> completion_order;
  for (int i = 0; i < 10; ++i) {
    cpu.Submit(1.0, [&completion_order, i](SimTime, SimTime, SimTime) {
      completion_order.push_back(i);
    });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(completion_order[i], i);
}

TEST(ResourceTest, ZeroServiceTimeCompletesAtSubmitInstant) {
  Simulator sim;
  Resource cpu(sim, 1, "cpu");
  SimTime done = -1;
  sim.Schedule(7.0, [&] {
    cpu.Submit(0.0, [&](SimTime, SimTime, SimTime f) { done = f; });
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(done, 7.0);
}

TEST(ResourceTest, ActiveAndQueueDepthTrack) {
  Simulator sim;
  Resource pool(sim, 2, "pool");
  for (int i = 0; i < 5; ++i) {
    pool.Submit(10.0, [](SimTime, SimTime, SimTime) {});
  }
  EXPECT_EQ(pool.active(), 2u);
  EXPECT_EQ(pool.queue_depth(), 3u);
  sim.Run();
  EXPECT_EQ(pool.active(), 0u);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

/// Determinism: the backbone property of the whole experimental harness.
TEST(SimulatorTest, IdenticalProgramsProduceIdenticalTimelines) {
  auto run = [] {
    Simulator sim;
    Resource cpu(sim, 2, "cpu");
    std::vector<double> log;
    for (int i = 0; i < 50; ++i) {
      cpu.Submit(1.0 + (i % 7),
                 [&log](SimTime e, SimTime s, SimTime f) {
                   log.push_back(e + s * 1e3 + f * 1e6);
                 });
    }
    sim.Run();
    return log;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace kvscale
