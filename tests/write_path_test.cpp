// Tests for the batched replicated write path: PutResult accounting,
// dispatch-on-attempt load feedback, PutBatch <-> sequential-Put parity
// (healthy and under WAL/kill chaos, both transports), per-key quorum
// policies, group-commit sync amortization, torn-tail recovery, the
// epoch-retry membership drill, and background flush scheduling.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "cluster/in_process_cluster.hpp"
#include "store/row.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics_registry.hpp"

namespace kvscale {
namespace {

std::string TempPath(const char* tag) {
  return std::string("/tmp/kvscale_write_path_") + tag + "_" +
         std::to_string(::getpid());
}

void RemoveWals(const std::string& prefix, int nodes) {
  for (int n = 0; n < nodes; ++n) {
    std::remove((prefix + ".node" + std::to_string(n)).c_str());
  }
}

/// `partitions` one-column-per-clustering items, grouped per partition in
/// key order (the same order a sequential loop would Put them).
std::vector<BatchPutItem> MakeItems(int partitions, int columns,
                                    const char* prefix = "p") {
  std::vector<BatchPutItem> items;
  for (int part = 0; part < partitions; ++part) {
    for (int i = 0; i < columns; ++i) {
      BatchPutItem item;
      item.partition_key = prefix + std::to_string(part);
      item.column.clustering = i;
      item.column.type_id = i % 5;
      item.column.payload = MakePayload(part, i, 24);
      items.push_back(std::move(item));
    }
  }
  return items;
}

WorkloadSpec MakeWorkload(int partitions, int columns,
                          const char* prefix = "p") {
  WorkloadSpec workload;
  workload.table = "t";
  for (int part = 0; part < partitions; ++part) {
    workload.partitions.push_back(PartitionRef{
        prefix + std::to_string(part), static_cast<uint32_t>(columns)});
  }
  return workload;
}

// ---------------------------------------------------------------------------
// Satellite 1: replica failures are accounted, not collapsed

TEST(WritePathTest, DegradedPutAccountsEveryReplica) {
  InProcessCluster cluster(3, PlacementKind::kDhtRandom, StoreOptions{}, 7,
                           3);
  cluster.KillNode(1);
  cluster.KillNode(2);

  Column c;
  c.clustering = 0;
  c.type_id = 1;
  c.payload = MakePayload(0, 0, 24);
  const PutResult put = cluster.Put("t", "p0", std::move(c));

  // 2-of-3 replicas refused: the old API collapsed this into one Status;
  // the result must account every attempted copy.
  EXPECT_EQ(put.keys, 1u);
  EXPECT_EQ(put.replica_writes, 3u);
  EXPECT_EQ(put.replica_acks, 1u);
  EXPECT_EQ(put.replica_failures, 2u);
  EXPECT_EQ(put.replica_acks + put.replica_failures, put.replica_writes);
  EXPECT_EQ(put.first_error.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(put.ok());  // quorum all
  EXPECT_EQ(put.keys_quorum_failed, 1u);

  // The same degraded write under laxer quorums: 1 ack misses majority
  // (needs 2 of 3) but satisfies one.
  PutOptions majority;
  majority.quorum = PutQuorum::kMajority;
  std::vector<BatchPutItem> items = MakeItems(1, 1);
  const PutResult two_needed = cluster.PutBatch("t", items, majority);
  EXPECT_FALSE(two_needed.ok());
  EXPECT_EQ(two_needed.keys_quorum_failed, 1u);

  PutOptions one;
  one.quorum = PutQuorum::kOne;
  const PutResult one_needed = cluster.PutBatch("t", MakeItems(1, 1), one);
  EXPECT_TRUE(one_needed.ok());
  EXPECT_EQ(one_needed.keys_quorum_met, 1u);
  EXPECT_EQ(one_needed.replica_failures, 2u);  // still fully accounted
}

// ---------------------------------------------------------------------------
// Satellite 2: load feedback lands at the dispatch attempt, not on success

TEST(WritePathTest, DispatchRecordedEvenWhenTheWriteFails) {
  const std::string wal = TempPath("dispatch");
  StoreOptions store_options;
  store_options.wal_path = wal;
  InProcessCluster cluster(2, PlacementKind::kDhtRandom, store_options, 7);

  FaultConfig config;
  config.seed = 5;
  config.wal_error_rate = 1.0;  // every WAL append refused
  FaultInjector injector(config);
  cluster.AttachFaultInjector(&injector);

  const std::vector<int64_t> before = cluster.PlacementLoad();
  const int64_t before_sum =
      std::accumulate(before.begin(), before.end(), int64_t{0});
  const PutResult put = cluster.PutBatch("t", MakeItems(10, 1), PutOptions{});
  EXPECT_FALSE(put.ok());
  EXPECT_EQ(put.replica_acks, 0u);
  EXPECT_EQ(put.replica_failures, 10u);

  // Every replica write was *attempted*, so the placement policies' load
  // signal moved by exactly the attempt count — a failed node must not
  // look idle to the balancer.
  const std::vector<int64_t> after = cluster.PlacementLoad();
  const int64_t after_sum =
      std::accumulate(after.begin(), after.end(), int64_t{0});
  EXPECT_EQ(after_sum - before_sum, 10);
  RemoveWals(wal, 2);
}

// ---------------------------------------------------------------------------
// Tentpole: batched == sequential, healthy and under chaos

TEST(WritePathTest, BatchMatchesSequentialPutsHealthy) {
  const std::string wal_a = TempPath("seq");
  const std::string wal_b = TempPath("batch");
  StoreOptions options_a;
  options_a.wal_path = wal_a;
  StoreOptions options_b;
  options_b.wal_path = wal_b;
  InProcessCluster sequential(3, PlacementKind::kDhtRandom, options_a, 7, 2);
  InProcessCluster batched(3, PlacementKind::kDhtRandom, options_b, 7, 2);

  for (BatchPutItem& item : MakeItems(24, 4)) {
    ASSERT_TRUE(sequential
                    .Put("t", item.partition_key, std::move(item.column))
                    .ok());
  }
  PutOptions options;
  options.batch = 5;  // several group-committed batches per node
  const PutResult put = batched.PutBatch("t", MakeItems(24, 4), options);
  ASSERT_TRUE(put.ok());
  EXPECT_EQ(put.keys, 96u);
  EXPECT_EQ(put.replica_acks, 192u);  // 96 items x 2 replicas
  EXPECT_GT(put.batches_sent, 3u);    // batch cap really split the load

  sequential.FlushAll();
  batched.FlushAll();
  const WorkloadSpec workload = MakeWorkload(24, 4);
  const GatherResult a = sequential.CountByTypeAll(workload);
  const GatherResult b = batched.CountByTypeAll(workload);
  EXPECT_EQ(a.totals, b.totals);
  EXPECT_EQ(b.partitions_missing, 0u);
  EXPECT_EQ(sequential.ColumnsPerNode("t"), batched.ColumnsPerNode("t"));
  RemoveWals(wal_a, 3);
  RemoveWals(wal_b, 3);
}

TEST(WritePathTest, BatchMatchesSequentialPutsUnderWalChaos) {
  const std::string wal_a = TempPath("seq_chaos");
  const std::string wal_b = TempPath("batch_chaos");
  StoreOptions options_a;
  options_a.wal_path = wal_a;
  StoreOptions options_b;
  options_b.wal_path = wal_b;
  InProcessCluster sequential(3, PlacementKind::kDhtRandom, options_a, 7, 2);
  InProcessCluster batched(3, PlacementKind::kDhtRandom, options_b, 7, 2);

  // Two injectors, one config: OnWalWrite hashes (seed, node, key), so
  // both clusters refuse exactly the same (node, key) pairs no matter
  // how the writes are grouped.
  FaultConfig config;
  config.seed = 77;
  config.wal_error_rate = 0.3;
  FaultInjector injector_a(config);
  FaultInjector injector_b(config);
  sequential.AttachFaultInjector(&injector_a);
  batched.AttachFaultInjector(&injector_b);

  uint64_t sequential_failures = 0;
  for (BatchPutItem& item : MakeItems(24, 4)) {
    const PutResult put =
        sequential.Put("t", item.partition_key, std::move(item.column));
    sequential_failures += put.replica_failures;
  }
  ASSERT_GT(sequential_failures, 0u);  // the chaos really fired

  PutOptions options;
  options.batch = 7;
  const PutResult put = batched.PutBatch("t", MakeItems(24, 4), options);
  EXPECT_EQ(put.replica_failures, sequential_failures);
  EXPECT_EQ(put.replica_acks + put.replica_failures, put.replica_writes);

  sequential.FlushAll();
  batched.FlushAll();
  const WorkloadSpec workload = MakeWorkload(24, 4);
  const GatherResult a = sequential.CountByTypeAll(workload);
  const GatherResult b = batched.CountByTypeAll(workload);
  EXPECT_EQ(a.totals, b.totals);
  EXPECT_EQ(a.partitions_missing, b.partitions_missing);
  EXPECT_EQ(sequential.ColumnsPerNode("t"), batched.ColumnsPerNode("t"));
  RemoveWals(wal_a, 3);
  RemoveWals(wal_b, 3);
}

TEST(WritePathTest, MessageTransportMatchesDirect) {
  const std::string wal_a = TempPath("direct");
  const std::string wal_b = TempPath("message");
  StoreOptions options_a;
  options_a.wal_path = wal_a;
  StoreOptions options_b;
  options_b.wal_path = wal_b;
  InProcessCluster direct(3, PlacementKind::kDhtRandom, options_a, 7, 2);
  InProcessCluster message(3, PlacementKind::kDhtRandom, options_b, 7, 2);

  FaultConfig config;
  config.seed = 91;
  config.wal_error_rate = 0.2;
  FaultInjector injector_a(config);
  FaultInjector injector_b(config);
  direct.AttachFaultInjector(&injector_a);
  message.AttachFaultInjector(&injector_b);

  PutOptions direct_options;
  direct_options.batch = 6;
  const PutResult a = direct.PutBatch("t", MakeItems(20, 3), direct_options);

  PutOptions message_options;
  message_options.batch = 6;
  message_options.transport = GatherTransport::kMessage;
  message_options.workers_per_node = 2;
  const PutResult b =
      message.PutBatch("t", MakeItems(20, 3), message_options);

  // Same accounting over the wire as over plain calls...
  EXPECT_EQ(a.replica_writes, b.replica_writes);
  EXPECT_EQ(a.replica_acks, b.replica_acks);
  EXPECT_EQ(a.replica_failures, b.replica_failures);
  EXPECT_EQ(a.batches_sent, b.batches_sent);
  // ...but only the message path paid for frames.
  EXPECT_EQ(a.wire_frames_sent, 0u);
  EXPECT_EQ(b.wire_frames_sent, b.batches_sent);
  EXPECT_GT(b.wire_bytes_sent, 0u);
  EXPECT_GT(b.wire_bytes_received, 0u);

  direct.FlushAll();
  message.FlushAll();
  const WorkloadSpec workload = MakeWorkload(20, 3);
  const GatherResult ra = direct.CountByTypeAll(workload);
  const GatherResult rb = message.CountByTypeAll(workload);
  EXPECT_EQ(ra.totals, rb.totals);
  EXPECT_EQ(ra.partitions_missing, rb.partitions_missing);
  EXPECT_EQ(direct.ColumnsPerNode("t"), message.ColumnsPerNode("t"));
  RemoveWals(wal_a, 3);
  RemoveWals(wal_b, 3);
}

// ---------------------------------------------------------------------------
// Quorum accounting invariant under combined chaos

TEST(WritePathTest, QuorumInvariantHoldsUnderChaos) {
  const std::string wal = TempPath("quorum");
  StoreOptions store_options;
  store_options.wal_path = wal;
  InProcessCluster cluster(4, PlacementKind::kDhtRandom, store_options, 11,
                           3);

  FaultConfig config;
  config.seed = 13;
  config.wal_error_rate = 0.25;
  FaultInjector injector(config);
  cluster.AttachFaultInjector(&injector);
  cluster.KillNode(1);  // one dead replica on top of flaky WALs

  PutOptions options;
  options.quorum = PutQuorum::kMajority;
  options.batch = 8;
  const PutResult put = cluster.PutBatch("t", MakeItems(30, 1), options);

  // Every attempted replica write is accounted exactly once: acked +
  // failed == replicas x keys, whether the refusal was per-key (WAL) or
  // whole-batch (dead node).
  EXPECT_EQ(put.replica_writes, 90u);  // 30 keys x 3 replicas
  EXPECT_EQ(put.replica_acks + put.replica_failures, put.replica_writes);
  EXPECT_GT(put.replica_failures, 0u);
  EXPECT_EQ(put.keys_quorum_met + put.keys_quorum_failed, put.keys);
  EXPECT_FALSE(put.first_error.ok());

  // Same invariant over the wire, against the same chaos.
  PutOptions wired = options;
  wired.transport = GatherTransport::kMessage;
  const PutResult over_wire =
      cluster.PutBatch("t", MakeItems(30, 1, "w"), wired);
  EXPECT_EQ(over_wire.replica_writes, 90u);
  EXPECT_EQ(over_wire.replica_acks + over_wire.replica_failures,
            over_wire.replica_writes);
  EXPECT_EQ(over_wire.keys_quorum_met + over_wire.keys_quorum_failed,
            over_wire.keys);
  RemoveWals(wal, 4);
}

// ---------------------------------------------------------------------------
// Group commit: one Sync per batch, not per key

TEST(WritePathTest, GroupCommitAmortizesWalSyncs) {
  const std::string wal = TempPath("group");
  MetricsRegistry registry;
  StoreOptions store_options;
  store_options.wal_path = wal;
  store_options.metrics = &registry;
  InProcessCluster cluster(2, PlacementKind::kDhtRandom, store_options, 7);

  const PutResult put = cluster.PutBatch("t", MakeItems(20, 1), PutOptions{});
  ASSERT_TRUE(put.ok());

  // batch=0: one batch (one group Sync) per node touched; still one WAL
  // append per column. A per-key-sync path would have paid 20 syncs.
  EXPECT_EQ(registry.GetCounter("store.ingest.batches").Value(),
            put.batches_sent);
  EXPECT_EQ(registry.GetCounter("store.ingest.group_syncs").Value(),
            put.batches_sent);
  EXPECT_LE(put.batches_sent, 2u);
  EXPECT_EQ(registry.GetCounter("store.ingest.columns").Value(), 20u);
  EXPECT_EQ(registry.GetCounter("store.commitlog.appends").Value(), 20u);
  EXPECT_EQ(put.sync_failures, 0u);
  RemoveWals(wal, 2);
}

// ---------------------------------------------------------------------------
// Torn WAL tail: a crash mid-batch replays the intact prefix

TEST(WritePathTest, TornWalTailRecoversThePrefix) {
  const std::string wal = TempPath("torn");
  StoreOptions store_options;
  store_options.wal_path = wal;
  InProcessCluster cluster(1, PlacementKind::kDhtRandom, store_options, 7);

  const PutResult put = cluster.PutBatch("t", MakeItems(8, 1), PutOptions{});
  ASSERT_TRUE(put.ok());

  // Crash before any flush, tearing the last append mid-record.
  cluster.KillNode(0);
  ASSERT_TRUE(FaultInjector::TruncateFileTail(wal + ".node0", 3).ok());
  const Result<uint64_t> recovered = cluster.ReviveNode(0);
  ASSERT_TRUE(recovered.ok());
  EXPECT_LT(recovered.value(), 8u);  // the torn record is gone...
  EXPECT_GE(recovered.value(), 7u);  // ...and only the torn record

  // The intact prefix serves; the torn key reads as a clean miss.
  const GatherResult result = cluster.CountByTypeAll(MakeWorkload(8, 1));
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.partitions_missing, 8u - recovered.value());
  uint64_t total = 0;
  for (const auto& [type, count] : result.totals) total += count;
  EXPECT_EQ(total, recovered.value());
  RemoveWals(wal, 1);
}

// ---------------------------------------------------------------------------
// Satellite 3: writes racing a membership change chase the epoch

TEST(WritePathTest, PutsLandDuringAMembershipChange) {
  InProcessCluster cluster(4, PlacementKind::kDhtRandom, StoreOptions{}, 37,
                           2);
  TypeCounts truth;
  for (BatchPutItem& item : MakeItems(30, 3, "a")) {
    ++truth[item.column.type_id];
    ASSERT_TRUE(
        cluster.Put("t", item.partition_key, std::move(item.column)).ok());
  }

  // A node joins while fresh keys keep arriving in small batches. Every
  // put must account all its replicas and meet quorum all — whether it
  // ran before, during, or after the ring flip (a flip observed
  // mid-write triggers the epoch-retry rounds).
  std::atomic<bool> joined{false};
  std::thread membership([&] {
    ASSERT_TRUE(cluster.AddNode().ok());
    joined.store(true, std::memory_order_release);
  });
  int batches = 0;
  while (!joined.load(std::memory_order_acquire) && batches < 200) {
    std::vector<BatchPutItem> items;
    for (int i = 0; i < 2; ++i) {
      BatchPutItem item;
      item.partition_key = "b" + std::to_string(batches * 2 + i);
      item.column.clustering = 0;
      item.column.type_id = i % 5;
      item.column.payload = MakePayload(batches, i, 24);
      items.push_back(std::move(item));
    }
    for (const BatchPutItem& item : items) ++truth[item.column.type_id];
    const PutResult put = cluster.PutBatch("t", std::move(items), PutOptions{});
    EXPECT_TRUE(put.ok());
    EXPECT_EQ(put.replica_acks, put.replica_writes);
    ++batches;
  }
  membership.join();
  EXPECT_GE(cluster.ring_epoch(), 1u);

  // Nothing was lost to the race: the post-join gather folds every key
  // written on either side of the flip.
  WorkloadSpec workload = MakeWorkload(30, 3, "a");
  for (int b = 0; b < batches * 2; ++b) {
    workload.partitions.push_back(PartitionRef{"b" + std::to_string(b), 1});
  }
  const GatherResult result = cluster.CountByTypeAll(workload);
  EXPECT_EQ(result.completed, result.subqueries);
  EXPECT_EQ(result.partitions_missing, 0u);
  EXPECT_EQ(result.totals, truth);
}

TEST(WritePathTest, EpochRetryRewritesToTheNewOwners) {
  InProcessCluster cluster(3, PlacementKind::kDhtRandom, StoreOptions{}, 7,
                           2);
  for (BatchPutItem& item : MakeItems(12, 2)) {
    ASSERT_TRUE(
        cluster.Put("t", item.partition_key, std::move(item.column)).ok());
  }
  // Become elastic: writes after the flip resolve through the ring and
  // still satisfy quorum all against the current epoch's owners.
  ASSERT_TRUE(cluster.AddNode().ok());
  ASSERT_GE(cluster.ring_epoch(), 1u);
  const PutResult put =
      cluster.PutBatch("t", MakeItems(12, 2, "post"), PutOptions{});
  EXPECT_TRUE(put.ok());
  EXPECT_EQ(put.replica_acks, 48u);  // 24 items x 2 replicas
  EXPECT_EQ(put.epoch_retries, 0u);  // no flip raced this one

  const GatherResult result =
      cluster.CountByTypeAll(MakeWorkload(12, 2, "post"));
  EXPECT_EQ(result.completed, result.subqueries);
  EXPECT_EQ(result.partitions_missing, 0u);
}

// ---------------------------------------------------------------------------
// Background maintenance: flushes ride the node's own worker pool

TEST(WritePathTest, WatermarkSchedulesBackgroundFlush) {
  MetricsRegistry registry;
  InProcessCluster cluster(2, PlacementKind::kDhtRandom, StoreOptions{}, 7);
  cluster.AttachTelemetry(nullptr, &registry);

  PutOptions options;
  options.transport = GatherTransport::kMessage;
  options.flush_watermark_bytes = 1;  // any write crosses it
  options.workers_per_node = 1;       // FIFO per node: put #2 drains #1's step
  ASSERT_TRUE(cluster.PutBatch("t", MakeItems(12, 2), options).ok());
  ASSERT_TRUE(cluster.PutBatch("t", MakeItems(12, 2, "q"), options).ok());

  // The first put's maintenance step was enqueued behind its batch and
  // ahead of the second put's, so by now at least one ran: some memtable
  // was frozen into a segment by a node worker, not by the master.
  EXPECT_GE(registry.GetCounter("cluster.maintenance.runs").Value(), 1u);
  uint64_t segments = 0;
  for (uint32_t n = 0; n < cluster.node_count(); ++n) {
    auto found = cluster.node(n).FindTable("t");
    if (found.ok()) segments += found.value()->segment_count();
  }
  EXPECT_GE(segments, 1u);
}

// ---------------------------------------------------------------------------
// Observability: puts deposit flight records

TEST(WritePathTest, PutsDepositFlightRecords) {
  FlightRecorder recorder;
  InProcessCluster cluster(2, PlacementKind::kDhtRandom, StoreOptions{}, 7,
                           2);
  cluster.AttachFlightRecorder(&recorder);

  ASSERT_TRUE(cluster.PutBatch("t", MakeItems(4, 1), PutOptions{}).ok());
  PutOptions wired;
  wired.transport = GatherTransport::kMessage;
  ASSERT_TRUE(cluster.PutBatch("t", MakeItems(4, 1, "w"), wired).ok());

  const auto records = recorder.snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].query_kind, "put");
  EXPECT_EQ(records[0].transport, "direct");
  EXPECT_EQ(records[0].subqueries, 8u);  // 4 keys x 2 replicas
  EXPECT_EQ(records[0].completed, 8u);
  EXPECT_EQ(records[1].transport, "message");
  EXPECT_GT(records[1].wire_bytes_sent, 0u);
}

}  // namespace
}  // namespace kvscale
