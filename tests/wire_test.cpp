// Tests for src/wire: buffers, both codecs, message set, serializer models.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "wire/buffer.hpp"
#include "wire/codec.hpp"
#include "wire/envelope.hpp"
#include "wire/messages.hpp"
#include "wire/serializer_model.hpp"

namespace kvscale {
namespace {

TEST(WireBufferTest, FixedWidthRoundTrip) {
  WireBuffer buf;
  buf.WriteU8(0xab);
  buf.WriteU16(0xbeef);
  buf.WriteU32(0xdeadbeef);
  buf.WriteU64(0x0123456789abcdefULL);
  buf.WriteF64(3.14159);
  WireReader r(buf.data());
  EXPECT_EQ(r.ReadU8(), 0xab);
  EXPECT_EQ(r.ReadU16(), 0xbeef);
  EXPECT_EQ(r.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadU64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.ReadF64(), 3.14159);
  EXPECT_TRUE(r.AtEnd());
}

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, Works) {
  WireBuffer buf;
  buf.WriteVarint(GetParam());
  WireReader r(buf.data());
  EXPECT_EQ(r.ReadVarint(), GetParam());
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(
    EdgeCases, VarintRoundTrip,
    ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL,
                      (1ULL << 32) - 1, 1ULL << 32,
                      std::numeric_limits<uint64_t>::max()));

class ZigZagRoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(ZigZagRoundTrip, Works) {
  WireBuffer buf;
  buf.WriteZigZag(GetParam());
  WireReader r(buf.data());
  EXPECT_EQ(r.ReadZigZag(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    EdgeCases, ZigZagRoundTrip,
    ::testing::Values(int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{63},
                      int64_t{-64}, std::numeric_limits<int64_t>::max(),
                      std::numeric_limits<int64_t>::min()));

TEST(WireBufferTest, VarintSizesArePacked) {
  WireBuffer small, large;
  small.WriteVarint(5);
  large.WriteVarint(std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(small.size(), 1u);
  EXPECT_EQ(large.size(), 10u);
}

TEST(WireBufferTest, StringAndBytesRoundTrip) {
  WireBuffer buf;
  buf.WriteString("hello");
  buf.WriteString("");
  std::vector<std::byte> blob{std::byte{1}, std::byte{2}, std::byte{3}};
  buf.WriteBytes(blob);
  WireReader r(buf.data());
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_EQ(r.ReadBytes(), blob);
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireReaderTest, OverrunSetsStickyError) {
  WireBuffer buf;
  buf.WriteU8(1);
  WireReader r(buf.data());
  r.ReadU8();
  r.ReadU64();  // overrun
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  // Further reads keep failing and return zero values.
  EXPECT_EQ(r.ReadU32(), 0u);
}

TEST(WireReaderTest, TruncatedStringFails) {
  WireBuffer buf;
  buf.WriteVarint(100);  // claims 100 bytes follow
  buf.WriteU8('x');
  WireReader r(buf.data());
  r.ReadString();
  EXPECT_FALSE(r.ok());
}

TEST(WireReaderTest, OverlongVarintFails) {
  WireBuffer buf;
  for (int i = 0; i < 11; ++i) buf.WriteU8(0x80);
  WireReader r(buf.data());
  r.ReadVarint();
  EXPECT_FALSE(r.ok());
}

SubQueryRequest SampleRequest() {
  SubQueryRequest req;
  req.query_id = 77;
  req.sub_id = 12;
  req.table = "alya.particles_d8";
  req.partition_key = "d8:5:123456";
  req.expected_elements = 1425;
  return req;
}

PartialResult SampleResult() {
  PartialResult res;
  res.query_id = 77;
  res.sub_id = 12;
  res.node = 3;
  res.types = {"t0", "t1", "t5"};
  res.counts = {10, 20, 70};
  res.db_micros = 1234.5;
  return res;
}

TEST(TaggedCodecTest, RoundTripsAllMessageTypes) {
  {
    WireBuffer buf;
    TaggedCodec::Encode(SampleRequest(), buf);
    auto decoded = TaggedCodec::Decode<SubQueryRequest>(buf.data());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().partition_key, "d8:5:123456");
    EXPECT_EQ(decoded.value().expected_elements, 1425u);
  }
  {
    WireBuffer buf;
    TaggedCodec::Encode(SampleResult(), buf);
    auto decoded = TaggedCodec::Decode<PartialResult>(buf.data());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().types.size(), 3u);
    EXPECT_EQ(decoded.value().counts[2], 70u);
    EXPECT_DOUBLE_EQ(decoded.value().db_micros, 1234.5);
  }
  {
    Heartbeat hb;
    hb.node = 9;
    hb.sequence = 1000;
    hb.queue_depth = -1;  // exercises zigzag
    WireBuffer buf;
    TaggedCodec::Encode(hb, buf);
    auto decoded = TaggedCodec::Decode<Heartbeat>(buf.data());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().queue_depth, -1);
  }
}

TEST(TaggedCodecTest, RejectsWrongType) {
  WireBuffer buf;
  TaggedCodec::Encode(SampleRequest(), buf);
  auto decoded = TaggedCodec::Decode<PartialResult>(buf.data());
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(TaggedCodecTest, RejectsTruncation) {
  WireBuffer buf;
  TaggedCodec::Encode(SampleRequest(), buf);
  auto data = buf.data();
  for (size_t cut : {data.size() - 1, data.size() / 2, size_t{3}}) {
    auto decoded =
        TaggedCodec::Decode<SubQueryRequest>(data.subspan(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
  }
}

TEST(CompactCodecTest, RoundTripsRegisteredTypes) {
  CompactCodec codec;
  RegisterClusterMessages(codec);
  EXPECT_EQ(codec.registered_count(), 11u);

  WireBuffer buf;
  codec.Encode(SampleResult(), buf);
  auto decoded = codec.Decode<PartialResult>(buf.data());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().node, 3u);
  EXPECT_EQ(decoded.value().types[1], "t1");
}

TEST(MigrationMessageTest, BlockRoundTripsWithChecksum) {
  CompactCodec codec;
  RegisterClusterMessages(codec);
  MigrationBlock block;
  block.migration_id = 42;
  block.seq = 7;
  block.source = 1;
  block.target = 4;
  block.table = "particles";
  block.keys = {"p:0001", "p:0002"};
  block.payloads = {std::string("ab\0cd", 5), "efg"};  // embedded NUL survives
  block.checksum = MigrationBlockChecksum(block.payloads);

  WireBuffer buf;
  codec.Encode(block, buf);
  auto decoded = codec.Decode<MigrationBlock>(buf.data());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().migration_id, 42u);
  EXPECT_EQ(decoded.value().seq, 7u);
  EXPECT_EQ(decoded.value().keys, block.keys);
  EXPECT_EQ(decoded.value().payloads, block.payloads);
  EXPECT_EQ(MigrationBlockChecksum(decoded.value().payloads), block.checksum);
}

TEST(MigrationMessageTest, ChecksumSeesPayloadBoundaries) {
  // The length-mixing keeps concatenation-equal payload lists distinct.
  EXPECT_NE(MigrationBlockChecksum({"ab", "c"}),
            MigrationBlockChecksum({"a", "bc"}));
  EXPECT_NE(MigrationBlockChecksum({}), MigrationBlockChecksum({""}));
  EXPECT_EQ(MigrationBlockChecksum({"ab", "c"}),
            MigrationBlockChecksum({"ab", "c"}));
}

WriteBatch SampleWriteBatch() {
  WriteBatch batch;
  batch.query_id = 91;
  batch.sub_id = 4;
  batch.target = 2;
  batch.table = "t";
  batch.keys = {"p0", "p0", "p7"};
  batch.clusterings = {1, 2, 9};
  batch.type_ids = {0, 1, 4};
  batch.tombstones = {0, 0, 1};
  batch.payloads = {"aa", "bbb", ""};
  batch.checksum = MigrationBlockChecksum(batch.payloads);
  return batch;
}

TEST(WriteMessageTest, BatchFrameRoundTripsBothCodecs) {
  CompactCodec codec;
  RegisterClusterMessages(codec);
  const WriteBatch batch = SampleWriteBatch();
  for (const WireCodecKind kind :
       {WireCodecKind::kTagged, WireCodecKind::kCompact}) {
    WireBuffer buf;
    EncodeWriteBatchFrame(batch, /*attempt=*/2, /*trace_flags=*/0, kind,
                          codec, buf);
    auto decoded = DecodeWriteBatchFrame(buf.data(), kind, codec);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().attempt, 2u);
    EXPECT_EQ(decoded.value().batch.keys, batch.keys);
    EXPECT_EQ(decoded.value().batch.payloads, batch.payloads);
    EXPECT_EQ(decoded.value().batch.tombstones, batch.tombstones);
    EXPECT_EQ(decoded.value().batch.checksum, batch.checksum);
  }
}

TEST(WriteMessageTest, BatchDecoderRejectsBadShapes) {
  CompactCodec codec;
  RegisterClusterMessages(codec);
  const auto expect_corrupt = [&](const WriteBatch& bad) {
    WireBuffer buf;
    EncodeWriteBatchFrame(bad, 0, 0, WireCodecKind::kCompact, codec, buf);
    auto decoded =
        DecodeWriteBatchFrame(buf.data(), WireCodecKind::kCompact, codec);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
  };

  WriteBatch stale_checksum = SampleWriteBatch();
  stale_checksum.payloads[1] = "tampered";  // checksum no longer matches
  expect_corrupt(stale_checksum);

  WriteBatch ragged = SampleWriteBatch();
  ragged.clusterings.pop_back();
  expect_corrupt(ragged);

  WriteBatch empty = SampleWriteBatch();
  empty.keys.clear();
  empty.clusterings.clear();
  empty.type_ids.clear();
  empty.tombstones.clear();
  empty.payloads.clear();
  empty.checksum = MigrationBlockChecksum(empty.payloads);
  expect_corrupt(empty);

  WriteBatch bad_flag = SampleWriteBatch();
  bad_flag.tombstones[0] = 2;  // not a 0/1 marker
  expect_corrupt(bad_flag);
}

TEST(WriteMessageTest, ReplyRoundTripsAndRejectsUnsortedFailures) {
  CompactCodec codec;
  RegisterClusterMessages(codec);
  WriteReply reply;
  reply.query_id = 91;
  reply.sub_id = 4;
  reply.node = 2;
  reply.status = 0;
  reply.applied = 5;
  reply.failed_keys = {1, 3, 6};
  reply.sync_failures = 1;
  reply.db_micros = 42.5;

  WireBuffer buf;
  EncodeWriteReplyFrame(reply, /*attempt=*/1, /*trace_flags=*/0,
                        WireCodecKind::kCompact, codec, buf);
  auto decoded =
      DecodeWriteReplyFrame(buf.data(), WireCodecKind::kCompact, codec);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().reply.applied, 5u);
  EXPECT_EQ(decoded.value().reply.failed_keys, reply.failed_keys);
  EXPECT_EQ(decoded.value().reply.sync_failures, 1u);

  reply.failed_keys = {3, 3};  // duplicates can double-count a key
  WireBuffer bad;
  EncodeWriteReplyFrame(reply, 1, 0, WireCodecKind::kCompact, codec, bad);
  auto rejected =
      DecodeWriteReplyFrame(bad.data(), WireCodecKind::kCompact, codec);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kCorruption);
}

TEST(CompactCodecTest, RejectsTypeIdMismatch) {
  CompactCodec codec;
  RegisterClusterMessages(codec);
  WireBuffer buf;
  codec.Encode(SampleRequest(), buf);
  auto decoded = codec.Decode<PartialResult>(buf.data());
  EXPECT_FALSE(decoded.ok());
}

TEST(CompactCodecTest, PeersAgreeWhenRegistrationOrderMatches) {
  CompactCodec sender, receiver;
  RegisterClusterMessages(sender);
  RegisterClusterMessages(receiver);
  WireBuffer buf;
  sender.Encode(SampleRequest(), buf);
  auto decoded = receiver.Decode<SubQueryRequest>(buf.data());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().table, "alya.particles_d8");
}

TEST(CodecComparisonTest, CompactIsMuchSmallerThanTagged) {
  CompactCodec codec;
  RegisterClusterMessages(codec);
  // This is the structural size gap behind the paper's 7.5 MB -> 0.9 MB.
  const auto request = SampleRequest();
  const size_t tagged = TaggedEncodedSize(request);
  const size_t compact = CompactEncodedSize(codec, request);
  EXPECT_LT(compact * 3, tagged);

  const auto result = SampleResult();
  EXPECT_LT(CompactEncodedSize(codec, result), TaggedEncodedSize(result));
}

TEST(CodecComparisonTest, RepresentativeRequestSizes) {
  CompactCodec codec;
  RegisterClusterMessages(codec);
  const auto req = MakeRepresentativeSubQuery(1, 4242, 100);
  const size_t compact = CompactEncodedSize(codec, req);
  const size_t tagged = TaggedEncodedSize(req);
  // Compact stays in the tens of bytes (paper: ~90 B/message with Kryo);
  // tagged is several times larger.
  EXPECT_LT(compact, 64u);
  EXPECT_GT(tagged, 120u);
}

TEST(SerializerModelTest, ProfilesMatchPaperNumbers) {
  const auto java = JavaLikeProfile();
  EXPECT_NEAR(java.TypicalCost(), 150.0, 0.5);
  EXPECT_NEAR(java.bytes_per_message, 750.0, 1.0);
  const auto kryo = KryoLikeProfile();
  EXPECT_NEAR(kryo.TypicalCost(), 19.0, 0.1);
  EXPECT_NEAR(kryo.bytes_per_message, 90.0, 1.0);
  // 10k fine-grained messages: 1.5 s -> 192 ms in the paper.
  EXPECT_NEAR(java.TypicalCost() * 10000 / kSecond, 1.5, 0.01);
  EXPECT_NEAR(kryo.TypicalCost() * 10000 / kMillisecond, 190.0, 3.0);
}

TEST(SerializerModelTest, CostGrowsWithBytes) {
  const auto p = KryoLikeProfile();
  EXPECT_GT(p.CostFor(1000), p.CostFor(100));
  EXPECT_GE(p.CostFor(0), p.cpu_fixed);
}

TEST(SerializerModelTest, FromMeasurement) {
  const auto p = ProfileFromMeasurement("local", 120.0, 10.0);
  EXPECT_NEAR(p.TypicalCost(), 10.0, 1e-9);
  EXPECT_EQ(p.name, "local");
}

}  // namespace
}  // namespace kvscale
