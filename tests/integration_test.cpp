// End-to-end integration: generate -> index -> shard -> query (real data),
// then simulate -> calibrate -> predict (the paper's full methodology).
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/cluster_sim.hpp"
#include "cluster/in_process_cluster.hpp"
#include "model/calibrator.hpp"
#include "model/optimizer.hpp"
#include "model/query_model.hpp"
#include "workload/alya.hpp"
#include "workload/d8tree.hpp"
#include "workload/granularity.hpp"

namespace kvscale {
namespace {

/// Stage 1 of the paper: a real dataset indexed by the D8tree, sharded over
/// a real cluster, aggregated by a master — counts must be exact.
TEST(IntegrationTest, RealDataPipelineEndToEnd) {
  AlyaParams params;
  params.particles = 30000;
  params.seed = 2024;
  const auto particles = GenerateAlyaParticles(params);
  const D8Tree tree(particles, 4);

  // Shard level-4 cubes over 4 nodes.
  InProcessCluster cluster(4, PlacementKind::kDhtRandom, StoreOptions{}, 3);
  WorkloadSpec workload;
  workload.table = "alya.cubes";
  TypeCounts truth;
  for (const auto& [morton, count] : tree.CubeSizes(4)) {
    const std::string key = CubeKey(4, morton);
    for (uint64_t id : tree.CubeParticles(4, morton)) {
      const Particle& p = particles[id];
      Column c;
      c.clustering = p.id;
      c.type_id = p.type;
      c.payload = MakePayload(morton, p.id, kParticlePayloadBytes);
      ASSERT_TRUE(cluster.Put(workload.table, key, std::move(c)).ok());
      ++truth[p.type];
    }
    workload.partitions.push_back(PartitionRef{key, count});
  }
  cluster.FlushAll();

  const GatherResult gathered = cluster.CountByTypeAll(workload);
  EXPECT_EQ(gathered.partitions_missing, 0u);
  EXPECT_EQ(gathered.totals, truth);

  // The same workload plan drives the virtual-time simulator; its fold of
  // synthetic counts must also be internally consistent.
  ClusterConfig config;
  config.nodes = 4;
  const QueryRunResult sim = RunDistributedQuery(config, workload);
  EXPECT_EQ(sim.aggregated, ExpectedAggregation(workload));
  EXPECT_GT(sim.makespan, 0.0);
}

/// Stage 2: the calibration methodology — run single-request measurements
/// in the simulator, refit Formula 6, and check the refit model predicts
/// the simulator's cluster results about as well as the built-in one.
TEST(IntegrationTest, CalibrateThenPredictLoop) {
  // Single-request "measurements" from the simulator: one partition per
  // run on one node with concurrency 1 and no noise isolates Formula 6.
  std::vector<CalibrationSample> samples;
  for (double keysize : {100.0, 300.0, 700.0, 1000.0, 1200.0, 1400.0,
                         1600.0, 2500.0, 4000.0, 6000.0, 8000.0, 10000.0}) {
    ClusterConfig config;
    config.nodes = 1;
    config.db_concurrency = 1;
    config.db.noise_sigma = 0.0;
    config.gc.quadratic_us_per_element2 = 0.0;
    WorkloadSpec spec;
    spec.partitions = {
        PartitionRef{"probe", static_cast<uint32_t>(keysize)}};
    const auto run = RunDistributedQuery(config, spec);
    const auto& trace = run.tracer.traces()[0];
    samples.push_back(
        CalibrationSample{keysize, trace.StageDuration(Stage::kInDb)});
  }
  const SegmentedFit fit = FitQueryTimeModel(samples, 3);
  // The refit recovers the planted Formula 6 within a few percent.
  const DbModel truth;
  for (double keysize : {200.0, 900.0, 5000.0}) {
    EXPECT_NEAR(fit(keysize) / truth.QueryTime(keysize), 1.0, 0.06)
        << keysize;
  }
}

/// Stage 3: the optimizer applied to the simulated system — the optimal
/// partition count must beat the paper's three fixed granularities.
TEST(IntegrationTest, OptimizerBeatsFixedGranularities) {
  const QueryModel model(DbModel{},
                         MasterModel::FromSerializer(KryoLikeProfile()));
  PartitionOptimizer optimizer(model);
  constexpr uint32_t kNodes = 8;
  const auto opt = optimizer.Optimize(1000000, kNodes);

  ClusterConfig config;
  config.nodes = kNodes;
  config.gc.quadratic_us_per_element2 = 0.0;
  const Micros optimal_time =
      RunDistributedQuery(config, UniformWorkload(1000000, opt.keys))
          .makespan;
  for (auto granularity : {Granularity::kCoarse, Granularity::kMedium,
                           Granularity::kFine}) {
    const Micros fixed_time =
        RunDistributedQuery(config,
                            MakeUniformWorkload(granularity, 1000000))
            .makespan;
    EXPECT_LT(optimal_time, fixed_time * 1.15)
        << GranularityName(granularity);
  }
}

/// Model-vs-simulator validation across the full grid (Figure 8's spirit).
TEST(IntegrationTest, ModelTracksSimulatorAcrossGrid) {
  const QueryModel model(DbModel{},
                         MasterModel::FromSerializer(KryoLikeProfile()));
  for (uint64_t keys : {100ULL, 1000ULL, 10000ULL}) {
    for (uint32_t nodes : {1u, 4u, 16u}) {
      ClusterConfig config;
      config.nodes = nodes;
      config.gc.quadratic_us_per_element2 = 0.0;
      const auto run =
          RunDistributedQuery(config, UniformWorkload(1000000, keys));
      const Micros predicted = model.Predict(1000000, keys, nodes).total;
      const double ratio = run.makespan / predicted;
      // Single imbalance draws put coarse-grained runs furthest from the
      // expectation; everything stays within a factor ~1.6.
      EXPECT_GT(ratio, 0.6) << keys << "@" << nodes;
      EXPECT_LT(ratio, 1.7) << keys << "@" << nodes;
    }
  }
}

}  // namespace
}  // namespace kvscale
