// Tests for elastic membership: live partition migration, replica
// re-protection after permanent node loss, and gathers racing a
// membership change (the chaos drill).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/in_process_cluster.hpp"
#include "store/row.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/timeseries.hpp"

namespace kvscale {
namespace {

/// Loads `partitions` partitions of `columns` columns each into table "t"
/// and returns the matching workload; `truth` accumulates the expected
/// fold.
WorkloadSpec LoadCluster(InProcessCluster& cluster, int partitions,
                         int columns, TypeCounts& truth) {
  WorkloadSpec workload;
  workload.table = "t";
  for (int part = 0; part < partitions; ++part) {
    const std::string key = "part-" + std::to_string(part);
    for (int i = 0; i < columns; ++i) {
      Column c;
      c.clustering = i;
      c.type_id = i % 3;
      c.payload = {std::byte{0xab}, std::byte(part & 0xff)};
      EXPECT_TRUE(cluster.Put("t", key, c).ok());
      ++truth[i % 3];
    }
    workload.partitions.push_back(
        PartitionRef{key, static_cast<uint32_t>(columns)});
  }
  cluster.FlushAll();
  return workload;
}

TEST(MembershipSmoke, AddNodeStreamsOwnershipAndGathersStayExact) {
  InProcessCluster cluster(4, PlacementKind::kDhtRandom, StoreOptions{}, 11,
                           2);
  TypeCounts truth;
  const WorkloadSpec workload = LoadCluster(cluster, 60, 20, truth);
  EXPECT_EQ(cluster.ring_epoch(), 0u);

  auto joined = cluster.AddNode();
  ASSERT_TRUE(joined.ok()) << joined.status().message();
  const MembershipReport& report = joined.value();
  EXPECT_EQ(report.node, 4u);
  EXPECT_EQ(cluster.node_count(), 5u);
  EXPECT_GE(cluster.ring_epoch(), 1u);
  EXPECT_EQ(report.ring_epoch, cluster.ring_epoch());
  EXPECT_EQ(report.partitions_lost, 0u);
  EXPECT_GT(report.partitions_moved, 0u);
  EXPECT_GT(report.blocks_streamed, 0u);
  EXPECT_GT(report.bytes_streamed, 0u);
  EXPECT_EQ(cluster.Members(),
            (std::vector<NodeId>{0u, 1u, 2u, 3u, 4u}));

  // The new node actually owns data now, and every key's replica set is
  // intact and served from real copies.
  const auto per_node = cluster.ColumnsPerNode("t");
  ASSERT_EQ(per_node.size(), 5u);
  EXPECT_GT(per_node[4], 0u);
  for (const auto& part : workload.partitions) {
    const std::vector<NodeId> replicas = cluster.ReplicasOf(part.key);
    ASSERT_EQ(replicas.size(), 2u);
    for (const NodeId r : replicas) {
      auto table = cluster.node(r).FindTable("t");
      ASSERT_TRUE(table.ok());
      EXPECT_TRUE(table.value()->HasPartition(part.key))
          << part.key << " missing on node " << r;
    }
  }

  const GatherResult result = cluster.CountByTypeAll(workload);
  EXPECT_EQ(result.completed, result.subqueries);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.totals, truth);
}

TEST(MembershipSmoke, DecommissionDrainsBeforeTheNodeDies) {
  InProcessCluster cluster(5, PlacementKind::kDhtRandom, StoreOptions{}, 13,
                           2);
  TypeCounts truth;
  const WorkloadSpec workload = LoadCluster(cluster, 50, 15, truth);

  auto removed = cluster.DecommissionNode(1);
  ASSERT_TRUE(removed.ok()) << removed.status().message();
  EXPECT_EQ(removed.value().partitions_lost, 0u);
  EXPECT_TRUE(cluster.fault_injector().IsNodeDown(1));
  const std::vector<NodeId> members = cluster.Members();
  EXPECT_EQ(std::count(members.begin(), members.end(), 1u), 0);
  // Slots are append-only: the id stays allocated, just not a member.
  EXPECT_EQ(cluster.node_count(), 5u);

  // No replica set references the decommissioned node any more.
  for (const auto& part : workload.partitions) {
    const std::vector<NodeId> replicas = cluster.ReplicasOf(part.key);
    ASSERT_EQ(replicas.size(), 2u);
    EXPECT_EQ(std::count(replicas.begin(), replicas.end(), 1u), 0)
        << part.key;
  }

  const GatherResult result = cluster.CountByTypeAll(workload);
  EXPECT_EQ(result.completed, result.subqueries);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.totals, truth);
}

TEST(MembershipSmoke, MembershipOpsRefuseToBreakReplication) {
  InProcessCluster cluster(2, PlacementKind::kDhtRandom, StoreOptions{}, 17,
                           2);
  TypeCounts truth;
  LoadCluster(cluster, 10, 5, truth);

  EXPECT_EQ(cluster.DecommissionNode(0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(cluster.FailNodePermanently(1).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(cluster.DecommissionNode(9).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(cluster.FailNodePermanently(9).status().code(),
            StatusCode::kNotFound);
  // The refusals changed nothing: both nodes still serve.
  EXPECT_EQ(cluster.Members(), (std::vector<NodeId>{0u, 1u}));
  EXPECT_FALSE(cluster.fault_injector().IsNodeDown(0));
  EXPECT_FALSE(cluster.fault_injector().IsNodeDown(1));
}

TEST(MembershipSmoke, PermanentFailureReprotectsEveryPartition) {
  InProcessCluster cluster(4, PlacementKind::kDhtRandom, StoreOptions{}, 19,
                           2);
  TypeCounts truth;
  const WorkloadSpec workload = LoadCluster(cluster, 60, 10, truth);

  auto failed = cluster.FailNodePermanently(2);
  ASSERT_TRUE(failed.ok()) << failed.status().message();
  const MembershipReport& report = failed.value();
  EXPECT_EQ(report.partitions_lost, 0u);
  EXPECT_TRUE(report.lost_partitions.empty());
  EXPECT_TRUE(cluster.fault_injector().IsNodeDown(2));

  // Replication is healed: every key has two live copies, neither on the
  // dead node, and both actually hold the partition.
  for (const auto& part : workload.partitions) {
    const std::vector<NodeId> replicas = cluster.ReplicasOf(part.key);
    ASSERT_EQ(replicas.size(), 2u);
    EXPECT_EQ(std::count(replicas.begin(), replicas.end(), 2u), 0)
        << part.key;
    for (const NodeId r : replicas) {
      auto table = cluster.node(r).FindTable("t");
      ASSERT_TRUE(table.ok());
      EXPECT_TRUE(table.value()->HasPartition(part.key))
          << part.key << " missing on node " << r;
    }
  }

  const GatherResult result = cluster.CountByTypeAll(workload);
  EXPECT_EQ(result.completed, result.subqueries);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.totals, truth);
}

TEST(MembershipSmoke, UnreplicatedLossIsReportedNotLaundered) {
  // replication=1: partitions held only by the dead node cannot be
  // re-protected. They must be reported lost, and gathers must keep
  // failing them loudly instead of returning an authoritative miss.
  InProcessCluster cluster(3, PlacementKind::kDhtRandom, StoreOptions{}, 23,
                           1);
  TypeCounts truth;
  const WorkloadSpec workload = LoadCluster(cluster, 45, 8, truth);

  auto failed = cluster.FailNodePermanently(0);
  ASSERT_TRUE(failed.ok()) << failed.status().message();
  const MembershipReport& report = failed.value();
  EXPECT_GT(report.partitions_lost, 0u);
  EXPECT_EQ(report.lost_partitions.size(), report.partitions_lost);
  EXPECT_TRUE(std::is_sorted(report.lost_partitions.begin(),
                             report.lost_partitions.end()));

  const GatherResult result = cluster.CountByTypeAll(workload);
  EXPECT_EQ(result.completed + result.failed, result.subqueries);
  EXPECT_TRUE(result.partial);
  EXPECT_EQ(result.failed, report.partitions_lost);
  EXPECT_EQ(result.lost_partitions, report.lost_partitions);
  EXPECT_EQ(result.partitions_missing, 0u);  // loss is not a miss

  // The surviving partitions still fold exactly.
  uint64_t folded = 0;
  uint64_t expected = 0;
  for (const auto& [type, count] : result.totals) folded += count;
  for (const auto& [type, count] : truth) expected += count;
  EXPECT_EQ(folded, expected - report.partitions_lost * 8u);
}

TEST(MigrationFaultTest, CorruptedFramesAreResentNeverApplied) {
  FaultConfig config;
  config.seed = 0xc0ffee;
  config.migration_corrupt_rate = 0.4;
  FaultInjector injector(config);
  InProcessCluster cluster(4, PlacementKind::kDhtRandom, StoreOptions{}, 29,
                           2);
  cluster.AttachFaultInjector(&injector);
  TypeCounts truth;
  const WorkloadSpec workload = LoadCluster(cluster, 80, 12, truth);

  auto joined = cluster.AddNode();
  ASSERT_TRUE(joined.ok()) << joined.status().message();
  EXPECT_GT(injector.corrupted_migration_frames(), 0u);
  EXPECT_GT(joined.value().block_retries, 0u);
  EXPECT_EQ(joined.value().partitions_lost, 0u);

  // Every corrupted block was re-sent and verified: the data is intact.
  const GatherResult result = cluster.CountByTypeAll(workload);
  EXPECT_EQ(result.completed, result.subqueries);
  EXPECT_EQ(result.totals, truth);
}

TEST(MigrationFaultTest, SourceDyingMidStreamFailsOverToAnotherReplica) {
  FaultInjector injector;
  InProcessCluster cluster(4, PlacementKind::kDhtRandom, StoreOptions{}, 31,
                           2);
  cluster.AttachFaultInjector(&injector);
  TypeCounts truth;
  const WorkloadSpec workload = LoadCluster(cluster, 80, 12, truth);

  // The first block node 0 streams kills it: the classic "source dies
  // during rebalance". Its partitions fail over to the second replica.
  injector.ArmMigrationSourceKill(0, 1);
  auto joined = cluster.AddNode();
  ASSERT_TRUE(joined.ok()) << joined.status().message();
  EXPECT_EQ(injector.migration_source_kills(), 1u);
  EXPECT_TRUE(injector.IsNodeDown(0));
  EXPECT_GE(joined.value().source_failovers, 1u);
  EXPECT_EQ(joined.value().partitions_lost, 0u);

  // Node 0 is down but replication=2 keeps every partition readable.
  const GatherResult result = cluster.CountByTypeAll(workload);
  EXPECT_EQ(result.completed, result.subqueries);
  EXPECT_EQ(result.totals, truth);
}

TEST(MembershipTelemetryTest, RecordsAndSamplesCarryTheRingEpoch) {
  MetricsRegistry metrics;
  MetricsTimeSeries::Options ts_options;
  ts_options.interval_us = 0.0;  // sample on every gather
  MetricsTimeSeries timeseries(&metrics, ts_options);
  FlightRecorder recorder;
  InProcessCluster cluster(3, PlacementKind::kDhtRandom, StoreOptions{}, 37,
                           2);
  cluster.AttachTelemetry(nullptr, &metrics);
  cluster.AttachFlightRecorder(&recorder);
  cluster.AttachTimeSeries(&timeseries);
  TypeCounts truth;
  const WorkloadSpec workload = LoadCluster(cluster, 20, 6, truth);

  cluster.CountByTypeAll(workload);
  ASSERT_TRUE(cluster.AddNode().ok());
  cluster.CountByTypeAll(workload);

  // Loads now deposit "put" records too; the epoch tags live on the two
  // gather records bracketing the membership change.
  std::vector<QueryRecord> records;
  for (const QueryRecord& record : recorder.snapshot()) {
    if (record.query_kind != "put") records.push_back(record);
  }
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records.front().ring_epoch, 0u);
  EXPECT_EQ(records.back().ring_epoch, cluster.ring_epoch());
  EXPECT_GE(cluster.ring_epoch(), 1u);
  EXPECT_NE(recorder.ToJsonl().find("\"ring_epoch\":"), std::string::npos);

  // The trajectory tags every line, and the membership metrics moved.
  const std::string jsonl = timeseries.ToJsonl();
  EXPECT_NE(jsonl.find("\"epoch\":" + std::to_string(cluster.ring_epoch())),
            std::string::npos);
  const MetricsSnapshot snapshot = metrics.Snapshot();
  uint64_t joins = 0;
  uint64_t moved = 0;
  double epoch_gauge = -1.0;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "cluster.membership.joins") joins = value;
    if (name == "cluster.migration.partitions") moved = value;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    if (name == "cluster.membership.epoch") epoch_gauge = value;
  }
  EXPECT_EQ(joins, 1u);
  EXPECT_GT(moved, 0u);
  EXPECT_EQ(epoch_gauge, static_cast<double>(cluster.ring_epoch()));
}

TEST(MembershipChaosTest, ConcurrentGathersStayExactThroughTheDrill) {
  // The acceptance drill: 8 clients gather continuously while the
  // cluster joins a node, decommissions another, and loses a third
  // permanently. Every gather — mid-migration included — must fold the
  // exact same totals a quiet cluster folds, and the degraded-read
  // accounting must stay exact on every result.
  constexpr int kPartitions = 48;
  constexpr int kColumns = 10;
  constexpr uint64_t kSeed = 41;

  InProcessCluster quiet(4, PlacementKind::kDhtRandom, StoreOptions{}, kSeed,
                         2);
  TypeCounts truth;
  const WorkloadSpec workload = LoadCluster(quiet, kPartitions, kColumns,
                                            truth);
  const GatherResult quiet_result = quiet.CountByTypeAll(workload);
  ASSERT_EQ(quiet_result.totals, truth);

  InProcessCluster drill(4, PlacementKind::kDhtRandom, StoreOptions{}, kSeed,
                         2);
  TypeCounts drill_truth;
  LoadCluster(drill, kPartitions, kColumns, drill_truth);
  ASSERT_EQ(drill_truth, truth);

  GatherOptions options;
  options.max_attempts = 5;  // enough to ride out an epoch flip mid-query
  GatherOptions message_options = options;
  message_options.transport = GatherTransport::kMessage;

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> gathers{0};
  std::atomic<uint64_t> exact{0};
  std::atomic<uint64_t> balanced{0};
  std::vector<std::thread> clients;
  clients.reserve(8);
  for (int c = 0; c < 8; ++c) {
    // Half the clients use the direct transport, half the message path.
    const GatherOptions& opts = (c % 2 == 0) ? options : message_options;
    clients.emplace_back([&, opts]() {
      while (!stop.load(std::memory_order_acquire)) {
        const GatherResult result = drill.CountByTypeAll(workload, opts);
        gathers.fetch_add(1, std::memory_order_relaxed);
        if (result.completed + result.failed == result.subqueries) {
          balanced.fetch_add(1, std::memory_order_relaxed);
        }
        if (result.totals == truth) {
          exact.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Let every client finish at least one gather first, so the drill
  // genuinely overlaps in-flight queries instead of racing thread spawn.
  while (gathers.load(std::memory_order_relaxed) < 8) {
    std::this_thread::yield();
  }

  // The drill, under continuous crossfire: join, drain, unplanned loss.
  auto joined = drill.AddNode();
  auto drained = drill.DecommissionNode(1);
  auto lost = drill.FailNodePermanently(2);
  stop.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();

  ASSERT_TRUE(joined.ok()) << joined.status().message();
  ASSERT_TRUE(drained.ok()) << drained.status().message();
  ASSERT_TRUE(lost.ok()) << lost.status().message();
  EXPECT_EQ(lost.value().partitions_lost, 0u);  // replication healed it
  // Four flips: ring adoption (the join is the first elastic op), the
  // join itself, the drain, and the repair.
  EXPECT_EQ(drill.ring_epoch(), 4u);
  EXPECT_EQ(drill.Members(), (std::vector<NodeId>{0u, 3u, 4u}));

  // Every mid-drill gather balanced its accounting and folded the quiet
  // cluster's exact totals.
  EXPECT_GT(gathers.load(), 0u);
  EXPECT_EQ(balanced.load(), gathers.load());
  EXPECT_EQ(exact.load(), gathers.load());

  // Post-heal: the drilled cluster answers bit-identically to the quiet
  // one on both transports.
  const GatherResult after_direct = drill.CountByTypeAll(workload, options);
  EXPECT_EQ(after_direct.failed, 0u);
  EXPECT_EQ(after_direct.totals, quiet_result.totals);
  const GatherResult after_message =
      drill.CountByTypeAll(workload, message_options);
  EXPECT_EQ(after_message.failed, 0u);
  EXPECT_EQ(after_message.totals, quiet_result.totals);
}

TEST(MembershipChaosTest, RepeatedChurnKeepsEveryCopyReal) {
  // Grow-shrink churn: add two nodes, decommission two originals, then
  // lose one more — the surviving members must hold two real copies of
  // everything at every step.
  InProcessCluster cluster(4, PlacementKind::kDhtRandom, StoreOptions{}, 43,
                           2);
  TypeCounts truth;
  const WorkloadSpec workload = LoadCluster(cluster, 40, 8, truth);

  ASSERT_TRUE(cluster.AddNode().ok());
  ASSERT_TRUE(cluster.AddNode().ok());
  ASSERT_TRUE(cluster.DecommissionNode(0).ok());
  ASSERT_TRUE(cluster.DecommissionNode(1).ok());
  auto lost = cluster.FailNodePermanently(4);
  ASSERT_TRUE(lost.ok()) << lost.status().message();
  EXPECT_EQ(lost.value().partitions_lost, 0u);
  EXPECT_EQ(cluster.Members(), (std::vector<NodeId>{2u, 3u, 5u}));
  EXPECT_EQ(cluster.ring_epoch(), 6u);  // adoption + five membership ops

  const GatherResult result = cluster.CountByTypeAll(workload);
  EXPECT_EQ(result.completed, result.subqueries);
  EXPECT_EQ(result.totals, truth);
  for (const auto& part : workload.partitions) {
    const std::vector<NodeId> replicas = cluster.ReplicasOf(part.key);
    std::set<NodeId> unique(replicas.begin(), replicas.end());
    EXPECT_EQ(unique.size(), 2u) << part.key;
    for (const NodeId r : replicas) {
      auto table = cluster.node(r).FindTable("t");
      ASSERT_TRUE(table.ok());
      EXPECT_TRUE(table.value()->HasPartition(part.key))
          << part.key << " missing on node " << r;
    }
  }
}

}  // namespace
}  // namespace kvscale
