// Tests for src/workload: Alya particle generator, D8tree index, workload
// construction, phonebook example.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/alya.hpp"
#include "workload/d8tree.hpp"
#include "workload/granularity.hpp"
#include "workload/phonebook.hpp"

namespace kvscale {
namespace {

AlyaParams SmallParams() {
  AlyaParams params;
  params.particles = 20000;
  params.branch_depth = 5;
  params.seed = 77;
  return params;
}

TEST(AlyaTest, GeneratesRequestedCount) {
  const auto particles = GenerateAlyaParticles(SmallParams());
  EXPECT_EQ(particles.size(), 20000u);
}

TEST(AlyaTest, PositionsInUnitCubeAndTypesBounded) {
  const auto particles = GenerateAlyaParticles(SmallParams());
  for (const auto& p : particles) {
    EXPECT_GE(p.x, 0.0f);
    EXPECT_LT(p.x, 1.0f);
    EXPECT_GE(p.y, 0.0f);
    EXPECT_LT(p.y, 1.0f);
    EXPECT_GE(p.z, 0.0f);
    EXPECT_LT(p.z, 1.0f);
    EXPECT_LT(p.type, 8u);
  }
}

TEST(AlyaTest, DeterministicInSeed) {
  const auto a = GenerateAlyaParticles(SmallParams());
  const auto b = GenerateAlyaParticles(SmallParams());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x);
    EXPECT_EQ(a[i].type, b[i].type);
  }
  AlyaParams other = SmallParams();
  other.seed = 78;
  const auto c = GenerateAlyaParticles(other);
  int same = 0;
  for (size_t i = 0; i < a.size(); ++i) same += (a[i].x == c[i].x);
  EXPECT_LT(same, 100);
}

TEST(AlyaTest, ParticlesAreSpatiallyClustered) {
  // The bronchi geometry concentrates particles: a D8tree at level 4 must
  // leave most of the 4096 cells empty (a uniform cloud would fill nearly
  // all of them with 20k particles).
  const auto particles = GenerateAlyaParticles(SmallParams());
  std::set<uint64_t> occupied;
  for (const auto& p : particles) {
    const auto cx = static_cast<uint32_t>(p.x * 16);
    const auto cy = static_cast<uint32_t>(p.y * 16);
    const auto cz = static_cast<uint32_t>(p.z * 16);
    occupied.insert(MortonEncode3(cx, cy, cz, 4));
  }
  EXPECT_LT(occupied.size(), 2500u);
  EXPECT_GT(occupied.size(), 20u);
}

TEST(AlyaTest, AllTypesRepresented) {
  const auto particles = GenerateAlyaParticles(SmallParams());
  std::set<uint32_t> types;
  for (const auto& p : particles) types.insert(p.type);
  EXPECT_EQ(types.size(), 8u);
}

class MortonRoundTrip
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(MortonRoundTrip, EncodeDecodeIdentity) {
  const auto [level, salt] = GetParam();
  const uint32_t bound = 1u << level;
  Rng rng(salt);
  for (int i = 0; i < 200; ++i) {
    const auto cx = static_cast<uint32_t>(rng.Below(bound));
    const auto cy = static_cast<uint32_t>(rng.Below(bound));
    const auto cz = static_cast<uint32_t>(rng.Below(bound));
    uint32_t dx, dy, dz;
    MortonDecode3(MortonEncode3(cx, cy, cz, level), level, dx, dy, dz);
    EXPECT_EQ(dx, cx);
    EXPECT_EQ(dy, cy);
    EXPECT_EQ(dz, cz);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Levels, MortonRoundTrip,
    ::testing::Values(std::tuple{1u, 1u}, std::tuple{4u, 2u},
                      std::tuple{8u, 3u}, std::tuple{12u, 4u},
                      std::tuple{20u, 5u}));

TEST(MortonTest, CodesAreUniquePerCell) {
  std::set<uint64_t> codes;
  for (uint32_t x = 0; x < 8; ++x) {
    for (uint32_t y = 0; y < 8; ++y) {
      for (uint32_t z = 0; z < 8; ++z) {
        codes.insert(MortonEncode3(x, y, z, 3));
      }
    }
  }
  EXPECT_EQ(codes.size(), 512u);
}

TEST(D8TreeTest, EveryLevelPartitionsAllParticles) {
  const auto particles = GenerateAlyaParticles(SmallParams());
  const D8Tree tree(particles, 5);
  for (uint32_t level = 0; level <= 5; ++level) {
    uint64_t sum = 0;
    for (const auto& [morton, count] : tree.CubeSizes(level)) sum += count;
    EXPECT_EQ(sum, particles.size()) << "level " << level;
  }
}

TEST(D8TreeTest, LevelZeroIsOneCube) {
  const auto particles = GenerateAlyaParticles(SmallParams());
  const D8Tree tree(particles, 4);
  EXPECT_EQ(tree.CubeCount(0), 1u);
  EXPECT_GE(tree.CubeCount(4), tree.CubeCount(1));
}

TEST(D8TreeTest, DenormalizationCostIsLevelsTimesParticles) {
  const auto particles = GenerateAlyaParticles(SmallParams());
  const D8Tree tree(particles, 4);
  EXPECT_EQ(tree.TotalEntries(), particles.size() * 5);
}

TEST(D8TreeTest, CubesBySizeFilters) {
  const auto particles = GenerateAlyaParticles(SmallParams());
  const D8Tree tree(particles, 5);
  const auto cubes = tree.CubesBySize(50, 200);
  EXPECT_FALSE(cubes.empty());
  for (const auto& cube : cubes) {
    EXPECT_GE(cube.elements, 50u);
    EXPECT_LE(cube.elements, 200u);
  }
}

TEST(D8TreeTest, CubeParticlesMatchesSizes) {
  const auto particles = GenerateAlyaParticles(SmallParams());
  const D8Tree tree(particles, 3);
  for (const auto& [morton, count] : tree.CubeSizes(3)) {
    EXPECT_EQ(tree.CubeParticles(3, morton).size(), count);
  }
  EXPECT_TRUE(tree.CubeParticles(3, 0xFFFFFFFFull).empty() ||
              !tree.CubeParticles(3, 0xFFFFFFFFull).empty());  // no crash
}

TEST(D8TreeTest, LoadLevelIntoTableRoundTrips) {
  AlyaParams params = SmallParams();
  params.particles = 3000;
  const auto particles = GenerateAlyaParticles(params);
  const D8Tree tree(particles, 3);

  Table table("cubes", TableOptions{}, nullptr);
  tree.LoadLevelIntoTable(3, table);
  table.Flush();

  // Per-cube count-by-type in the table must match the generator's truth.
  std::map<uint64_t, TypeCounts> truth;
  for (const auto& p : particles) {
    const auto cx = static_cast<uint32_t>(p.x * 8);
    const auto cy = static_cast<uint32_t>(p.y * 8);
    const auto cz = static_cast<uint32_t>(p.z * 8);
    ++truth[MortonEncode3(cx, cy, cz, 3)][p.type];
  }
  for (const auto& [morton, counts] : truth) {
    auto stored = table.CountByType(CubeKey(3, morton));
    ASSERT_TRUE(stored.ok()) << morton;
    EXPECT_EQ(stored.value(), counts) << morton;
  }
}

class BoxQueryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BoxQueryTest, PlanMatchesBruteForceOnRandomBoxes) {
  AlyaParams params = SmallParams();
  params.particles = 15000;
  params.seed = GetParam();
  const auto particles = GenerateAlyaParticles(params);
  const D8Tree tree(particles, 5);

  Rng rng(GetParam() * 31 + 7);
  for (int q = 0; q < 8; ++q) {
    D8Tree::Box box;
    box.min_x = static_cast<float>(rng.Uniform(0.0, 0.8));
    box.min_y = static_cast<float>(rng.Uniform(0.0, 0.8));
    box.min_z = static_cast<float>(rng.Uniform(0.0, 0.8));
    box.max_x = box.min_x + static_cast<float>(rng.Uniform(0.05, 0.5));
    box.max_y = box.min_y + static_cast<float>(rng.Uniform(0.05, 0.5));
    box.max_z = box.min_z + static_cast<float>(rng.Uniform(0.05, 0.5));
    const uint32_t target = 50 + static_cast<uint32_t>(rng.Below(1000));
    EXPECT_EQ(tree.BoxQueryExecute(box, target), tree.BoxQueryBruteForce(box))
        << "query " << q << " target " << target;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoxQueryTest, ::testing::Values(1, 2, 3));

TEST(BoxQueryTest, FullCubeReturnsEveryParticle) {
  AlyaParams params = SmallParams();
  params.particles = 5000;
  const auto particles = GenerateAlyaParticles(params);
  const D8Tree tree(particles, 4);
  D8Tree::Box everything;  // defaults to the whole unit cube
  EXPECT_EQ(tree.BoxQueryExecute(everything, 1000).size(), 5000u);
  // With a huge target the plan is a single cube: the root.
  const auto coarse = tree.BoxQueryPlan(everything, 1u << 30);
  ASSERT_EQ(coarse.size(), 1u);
  EXPECT_EQ(coarse[0].cube.level, 0u);
  EXPECT_TRUE(coarse[0].fully_inside);
}

TEST(BoxQueryTest, DisjointBoxIsEmpty) {
  AlyaParams params = SmallParams();
  params.particles = 2000;
  const auto particles = GenerateAlyaParticles(params);
  const D8Tree tree(particles, 3);
  D8Tree::Box nowhere;
  nowhere.min_x = nowhere.max_x = 0.0f;  // zero-volume box
  EXPECT_TRUE(tree.BoxQueryPlan(nowhere, 100).empty());
  EXPECT_TRUE(tree.BoxQueryExecute(nowhere, 100).empty());
}

TEST(BoxQueryTest, InteriorCubesRespectTargetSize) {
  AlyaParams params = SmallParams();
  params.particles = 30000;
  const auto particles = GenerateAlyaParticles(params);
  const D8Tree tree(particles, 6);
  D8Tree::Box box{0.2f, 0.2f, 0.2f, 0.8f, 0.8f, 0.8f};
  constexpr uint32_t kTarget = 300;
  for (const auto& entry : tree.BoxQueryPlan(box, kTarget)) {
    if (entry.fully_inside && entry.cube.level < tree.max_level()) {
      EXPECT_LE(entry.cube.elements, kTarget);
    }
    if (!entry.fully_inside) {
      // Boundary cubes are always refined to the finest level.
      EXPECT_EQ(entry.cube.level, tree.max_level());
    }
  }
}

TEST(BoxQueryTest, SmallerTargetMeansMorePartitions) {
  AlyaParams params = SmallParams();
  params.particles = 30000;
  const auto particles = GenerateAlyaParticles(params);
  const D8Tree tree(particles, 6);
  D8Tree::Box box{0.1f, 0.1f, 0.1f, 0.9f, 0.9f, 0.9f};
  const auto coarse = tree.BoxQueryPlan(box, 5000);
  const auto fine = tree.BoxQueryPlan(box, 100);
  EXPECT_GT(fine.size(), coarse.size());
  // Same answer either way — the paper's "arbitrarily decide the number
  // of keys we need to access to run a query".
  EXPECT_EQ(tree.BoxQueryExecute(box, 5000), tree.BoxQueryExecute(box, 100));
}

TEST(GranularityTest, PaperWorkloadShapes) {
  EXPECT_EQ(PartitionsFor(Granularity::kCoarse, 1000000), 100u);
  EXPECT_EQ(PartitionsFor(Granularity::kMedium, 1000000), 1000u);
  EXPECT_EQ(PartitionsFor(Granularity::kFine, 1000000), 10000u);
  EXPECT_EQ(KeysizeFor(Granularity::kCoarse), 10000u);
  EXPECT_EQ(GranularityName(Granularity::kFine), "fine-grained");
}

TEST(GranularityTest, MakeUniformWorkloadMatchesSpec) {
  const auto spec = MakeUniformWorkload(Granularity::kMedium, 1000000);
  EXPECT_EQ(spec.partitions.size(), 1000u);
  EXPECT_EQ(spec.TotalElements(), 1000000u);
}

TEST(GranularityTest, WorkloadFromD8TreeRespectsSizeTolerance) {
  AlyaParams params = SmallParams();
  params.particles = 50000;
  const auto particles = GenerateAlyaParticles(params);
  const D8Tree tree(particles, 6);
  Rng rng(5);
  const auto spec = WorkloadFromD8Tree(tree, 100, 10000, 0.5, rng);
  EXPECT_FALSE(spec.partitions.empty());
  for (const auto& p : spec.partitions) {
    EXPECT_GE(p.elements, 50u);
    EXPECT_LE(p.elements, 150u);
  }
}

TEST(PhonebookTest, PaperImbalanceNumbers) {
  const auto models = PhonebookModels();
  ASSERT_EQ(models.size(), 3u);
  EXPECT_NEAR(PhonebookKeyImbalance(models[0], 10), 0.34, 0.01);
  EXPECT_NEAR(PhonebookKeyImbalance(models[1], 10), 0.005, 0.001);
  EXPECT_NEAR(PhonebookKeyImbalance(models[2], 10), 0.00015, 0.00005);
}

TEST(PhonebookTest, CitySizesMatchThePapersPremise) {
  // "about half of the population lives in the 500 most populated cities".
  const auto models = PhonebookModels();
  const auto sizes = PhonebookPartitionSizes(models[1], 10000000, 20000);
  ASSERT_EQ(sizes.size(), 20000u);
  uint64_t head = 0, total = 0;
  for (size_t i = 0; i < sizes.size(); ++i) {
    total += sizes[i];
    if (i < 500) head += sizes[i];
  }
  EXPECT_NEAR(static_cast<double>(head) / static_cast<double>(total), 0.5,
              0.05);
  // The single biggest city holds percents, not tens of percents.
  EXPECT_LT(static_cast<double>(sizes[0]) / static_cast<double>(total), 0.05);
}

TEST(PhonebookTest, UniformModelsHaveUniformSizes) {
  const auto models = PhonebookModels();
  const auto sizes = PhonebookPartitionSizes(models[0], 1000000, 20000);
  ASSERT_EQ(sizes.size(), 200u);
  for (uint64_t s : sizes) EXPECT_EQ(s, sizes[0]);
}

TEST(PhonebookTest, ZipfCitiesStayImbalancedDespiteCardinality) {
  Rng rng(11);
  const auto models = PhonebookModels();
  // Key-count imbalance says ~0.5%, but the Zipf sizes keep the *load*
  // imbalance in the tens of percent (paper: ~21% on 10 nodes).
  const double load_imbalance =
      PhonebookLoadImbalance(models[1], 10, 10000000, 20000, 30, rng);
  EXPECT_GT(load_imbalance, 0.08);
  // And it grows when doubling the cluster (paper: 21% -> 35%).
  const double load_imbalance_20 =
      PhonebookLoadImbalance(models[1], 20, 10000000, 20000, 30, rng);
  EXPECT_GT(load_imbalance_20, load_imbalance);
}

}  // namespace
}  // namespace kvscale
