// Tests for the real-data sharded cluster (InProcessCluster).
#include <gtest/gtest.h>

#include <map>

#include "cluster/in_process_cluster.hpp"
#include "store/row.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/span_tracer.hpp"
#include "workload/alya.hpp"
#include "workload/d8tree.hpp"
#include "workload/granularity.hpp"

namespace kvscale {
namespace {

Column ParticleColumn(const Particle& p, uint64_t cube_seed) {
  Column c;
  c.clustering = p.id;
  c.type_id = p.type;
  c.payload = MakePayload(cube_seed, p.id, kParticlePayloadBytes);
  return c;
}

TEST(InProcessClusterTest, RoutingIsStable) {
  InProcessCluster cluster(8, PlacementKind::kDhtRandom, StoreOptions{}, 1);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_EQ(cluster.OwnerOf(key), cluster.OwnerOf(key));
    EXPECT_LT(cluster.OwnerOf(key), 8u);
  }
}

TEST(InProcessClusterTest, DistributedAggregationMatchesTruth) {
  AlyaParams params;
  params.particles = 8000;
  params.seed = 101;
  const auto particles = GenerateAlyaParticles(params);
  const D8Tree tree(particles, 3);

  InProcessCluster cluster(4, PlacementKind::kDhtRandom, StoreOptions{}, 7);
  WorkloadSpec workload;
  workload.table = "cubes";
  TypeCounts truth;
  for (const auto& [morton, count] : tree.CubeSizes(3)) {
    const std::string key = CubeKey(3, morton);
    for (uint64_t id : tree.CubeParticles(3, morton)) {
      const Particle& p = particles[id];
      EXPECT_TRUE(cluster.Put("cubes", key, ParticleColumn(p, morton)).ok());
      ++truth[p.type];
    }
    workload.partitions.push_back(PartitionRef{key, count});
  }
  cluster.FlushAll();

  const GatherResult result = cluster.CountByTypeAll(workload);
  EXPECT_EQ(result.partitions_missing, 0u);
  EXPECT_EQ(result.totals, truth);
  uint64_t requests = 0;
  for (uint64_t r : result.requests_per_node) requests += r;
  EXPECT_EQ(requests, workload.partitions.size());
}

TEST(InProcessClusterTest, ColumnsLandOnOwnersOnly) {
  InProcessCluster cluster(4, PlacementKind::kDhtRandom, StoreOptions{}, 7);
  Column c;
  c.clustering = 1;
  c.type_id = 0;
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(cluster.Put("t", "part-" + std::to_string(i), c).ok());
  }
  cluster.FlushAll();
  const auto per_node = cluster.ColumnsPerNode("t");
  uint64_t total = 0;
  for (uint64_t n : per_node) total += n;
  EXPECT_EQ(total, 200u);
  // Each partition readable exactly from its owner.
  for (int i = 0; i < 200; ++i) {
    const std::string key = "part-" + std::to_string(i);
    const NodeId owner = cluster.OwnerOf(key);
    auto table = cluster.node(owner).FindTable("t");
    ASSERT_TRUE(table.ok());
    EXPECT_TRUE(table.value()->HasPartition(key)) << key;
  }
}

TEST(InProcessClusterTest, MissingPartitionsAreCounted) {
  InProcessCluster cluster(2, PlacementKind::kDhtRandom, StoreOptions{}, 7);
  Column c;
  c.clustering = 1;
  EXPECT_TRUE(cluster.Put("t", "exists", c).ok());
  cluster.FlushAll();
  WorkloadSpec workload;
  workload.table = "t";
  workload.partitions = {PartitionRef{"exists", 1}, PartitionRef{"nope", 1}};
  const auto result = cluster.CountByTypeAll(workload);
  EXPECT_EQ(result.partitions_missing, 1u);
  EXPECT_EQ(result.totals.at(0), 1u);
}

TEST(InProcessClusterTest, ProbesRecordRealWork) {
  InProcessCluster cluster(2, PlacementKind::kDhtRandom, StoreOptions{}, 7);
  Column c;
  c.clustering = 1;
  for (int i = 0; i < 50; ++i) {
    c.clustering = i;
    EXPECT_TRUE(cluster.Put("t", "p", c).ok());
  }
  cluster.FlushAll();
  WorkloadSpec workload;
  workload.table = "t";
  workload.partitions = {PartitionRef{"p", 50}};
  const auto result = cluster.CountByTypeAll(workload);
  uint64_t decoded = 0;
  for (const auto& probe : result.probes_per_node) {
    decoded += probe.blocks_decoded + probe.blocks_from_cache;
  }
  EXPECT_GT(decoded, 0u);
}

TEST(InProcessClusterTest, ReplicationStoresEveryCopyAndAllReplicasAgree) {
  constexpr uint32_t kReplication = 3;
  InProcessCluster cluster(5, PlacementKind::kDhtRandom, StoreOptions{}, 9,
                           kReplication);
  EXPECT_EQ(cluster.replication(), kReplication);

  WorkloadSpec workload;
  workload.table = "t";
  TypeCounts truth;
  for (int part = 0; part < 40; ++part) {
    const std::string key = "p" + std::to_string(part);
    for (int i = 0; i < 25; ++i) {
      Column c;
      c.clustering = i;
      c.type_id = i % 3;
      EXPECT_TRUE(cluster.Put("t", key, c).ok());
      ++truth[i % 3];
    }
    workload.partitions.push_back(PartitionRef{key, 25});
  }
  cluster.FlushAll();

  // The replica set is stable, distinct, primary-first.
  for (const auto& part : workload.partitions) {
    const auto& replicas = cluster.ReplicasOf(part.key);
    ASSERT_EQ(replicas.size(), kReplication);
    EXPECT_EQ(replicas.front(), cluster.OwnerOf(part.key));
    std::set<NodeId> unique(replicas.begin(), replicas.end());
    EXPECT_EQ(unique.size(), kReplication);
  }

  // Every replica serves the identical answer.
  for (uint32_t replica = 0; replica < kReplication + 1; ++replica) {
    const auto result = cluster.CountByTypeAll(workload, replica);
    EXPECT_EQ(result.partitions_missing, 0u) << replica;
    EXPECT_EQ(result.totals, truth) << replica;
  }

  // Storage cost: three full copies of the data.
  uint64_t stored = 0;
  for (uint64_t c : cluster.ColumnsPerNode("t")) stored += c;
  EXPECT_EQ(stored, 40u * 25u * kReplication);
}

TEST(InProcessClusterTest, ReplicationClampedToClusterSize) {
  InProcessCluster cluster(2, PlacementKind::kDhtRandom, StoreOptions{}, 9,
                           8);
  EXPECT_EQ(cluster.replication(), 2u);
}

TEST(InProcessClusterTest, ReplicaReadsSpreadRequestLoad) {
  InProcessCluster cluster(4, PlacementKind::kDhtRandom, StoreOptions{}, 9,
                           2);
  WorkloadSpec workload;
  workload.table = "t";
  for (int part = 0; part < 100; ++part) {
    const std::string key = "p" + std::to_string(part);
    Column c;
    c.clustering = 1;
    EXPECT_TRUE(cluster.Put("t", key, c).ok());
    workload.partitions.push_back(PartitionRef{key, 1});
  }
  cluster.FlushAll();
  const auto primary = cluster.CountByTypeAll(workload, 0);
  const auto secondary = cluster.CountByTypeAll(workload, 1);
  EXPECT_EQ(primary.totals, secondary.totals);
  // Reading the second copy shifts the per-node request counts.
  EXPECT_NE(primary.requests_per_node, secondary.requests_per_node);
}

TEST(InProcessClusterTest, ParallelGatherMatchesSerial) {
  AlyaParams params;
  params.particles = 12000;
  params.seed = 55;
  const auto particles = GenerateAlyaParticles(params);
  const D8Tree tree(particles, 3);

  InProcessCluster cluster(4, PlacementKind::kDhtRandom, StoreOptions{}, 7);
  WorkloadSpec workload;
  workload.table = "cubes";
  for (const auto& [morton, count] : tree.CubeSizes(3)) {
    const std::string key = CubeKey(3, morton);
    for (uint64_t id : tree.CubeParticles(3, morton)) {
      EXPECT_TRUE(cluster.Put("cubes", key, ParticleColumn(particles[id], morton)).ok());
    }
    workload.partitions.push_back(PartitionRef{key, count});
  }
  cluster.FlushAll();

  const GatherResult serial = cluster.CountByTypeAll(workload);
  for (uint32_t threads : {1u, 2u, 4u, 7u}) {
    const GatherResult parallel =
        cluster.CountByTypeAllParallel(workload, threads);
    EXPECT_EQ(parallel.totals, serial.totals) << threads;
    EXPECT_EQ(parallel.partitions_missing, serial.partitions_missing);
    EXPECT_EQ(parallel.requests_per_node, serial.requests_per_node);
  }
}

TEST(InProcessClusterTest, TelemetryCountersTrackTheDataPath) {
  MetricsRegistry registry;
  SpanTracer spans;
  StoreOptions options;
  options.metrics = &registry;
  InProcessCluster cluster(2, PlacementKind::kDhtRandom, options, 7);
  cluster.AttachTelemetry(&spans, &registry);

  WorkloadSpec workload;
  workload.table = "t";
  for (int part = 0; part < 20; ++part) {
    const std::string key = "p" + std::to_string(part);
    for (int i = 0; i < 30; ++i) {
      Column c;
      c.clustering = i;
      c.type_id = i % 4;
      c.payload = MakePayload(part, i, 30);
      EXPECT_TRUE(cluster.Put("t", key, c).ok());
    }
    workload.partitions.push_back(PartitionRef{key, 30});
  }
  cluster.FlushAll();
  EXPECT_GE(registry.GetCounter("store.memtable.flushes").Value(), 1u);

  // Cold round: every block is decoded (a cache miss), nothing is served
  // from the cache yet.
  const auto cold = cluster.CountByTypeAll(workload);
  EXPECT_EQ(cold.partitions_missing, 0u);
  const uint64_t cold_misses = registry.GetCounter("store.cache.misses").Value();
  const uint64_t cold_hits = registry.GetCounter("store.cache.hits").Value();
  EXPECT_GT(cold_misses, 0u);
  EXPECT_EQ(cold_hits, 0u);
  EXPECT_EQ(registry.GetCounter("cluster.subqueries").Value(), 20u);
  EXPECT_EQ(registry.GetCounter("store.read.count").Value(), 20u);

  // Warm round: the same reads now come from the block cache.
  const auto warm = cluster.CountByTypeAll(workload);
  EXPECT_EQ(warm.totals, cold.totals);
  EXPECT_GT(registry.GetCounter("store.cache.hits").Value(), cold_hits);
  EXPECT_EQ(registry.GetCounter("store.cache.misses").Value(), cold_misses);
  EXPECT_EQ(registry.GetCounter("cluster.subqueries").Value(), 40u);

  // Reads of absent partitions are answered by the bloom filter.
  WorkloadSpec absent;
  absent.table = "t";
  for (int i = 0; i < 10; ++i) {
    absent.partitions.push_back(PartitionRef{"missing-" + std::to_string(i), 1});
  }
  const auto missing = cluster.CountByTypeAll(absent);
  EXPECT_EQ(missing.partitions_missing, 10u);
  EXPECT_GT(registry.GetCounter("store.bloom.negatives").Value(), 0u);
  EXPECT_EQ(registry.GetCounter("cluster.partitions_missing").Value(), 10u);

  // The latency histogram saw every instrumented read, and the gather
  // emitted spans: 3 gathers, route + store-read per sub-query, fold for
  // the 40 sub-queries that found data.
  EXPECT_EQ(registry.GetHistogram("cluster.subquery.latency_us").Count(), 50u);
  EXPECT_GT(registry.GetHistogram("store.read.latency_us").Count(), 0u);
  EXPECT_EQ(spans.size(), 3u + 2u * 50u + 40u);

  // Detaching telemetry stops the counters without breaking reads.
  cluster.AttachTelemetry(nullptr, nullptr);
  cluster.CountByTypeAll(workload);
  EXPECT_EQ(registry.GetCounter("cluster.subqueries").Value(), 50u);
}

class PlacementKindSweep : public ::testing::TestWithParam<PlacementKind> {};

TEST_P(PlacementKindSweep, AggregationCorrectUnderEveryPolicy) {
  InProcessCluster cluster(3, GetParam(), StoreOptions{}, 11);
  WorkloadSpec workload;
  workload.table = "t";
  TypeCounts truth;
  for (int part = 0; part < 30; ++part) {
    const std::string key = "p" + std::to_string(part);
    for (int i = 0; i < 20; ++i) {
      Column c;
      c.clustering = i;
      c.type_id = i % 4;
      EXPECT_TRUE(cluster.Put("t", key, c).ok());
      ++truth[i % 4];
    }
    workload.partitions.push_back(PartitionRef{key, 20});
  }
  cluster.FlushAll();
  const auto result = cluster.CountByTypeAll(workload);
  EXPECT_EQ(result.partitions_missing, 0u);
  EXPECT_EQ(result.totals, truth);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PlacementKindSweep,
    ::testing::Values(PlacementKind::kDhtRandom, PlacementKind::kTokenRing,
                      PlacementKind::kRoundRobin,
                      PlacementKind::kJumpHash));

// A load-aware policy must see *read* traffic, not just first placements:
// dispatch feedback is recorded where requests are actually issued, so a
// hot partition's repeat traffic steers new placements away from its
// node. (Before the fix, OnDispatch only fired on a directory miss, so a
// thousand gathers over one key looked like zero load.)
TEST(InProcessClusterTest, RepeatedGathersSteerLoadAwarePlacement) {
  InProcessCluster cluster(2, PlacementKind::kLeastLoaded, StoreOptions{}, 5);
  WorkloadSpec hot;
  hot.table = "t";
  Column c;
  c.clustering = 1;
  c.type_id = 0;
  EXPECT_TRUE(cluster.Put("t", "hot", c).ok());
  hot.partitions.push_back(PartitionRef{"hot", 1});
  cluster.FlushAll();
  const NodeId hot_node = cluster.OwnerOf("hot");
  const NodeId cold_node = 1 - hot_node;

  // Hammer the hot partition: every read is dispatched load.
  for (int round = 0; round < 20; ++round) {
    const GatherResult r = cluster.CountByTypeAll(hot);
    ASSERT_EQ(r.failed, 0u);
  }
  const std::vector<int64_t> load = cluster.PlacementLoad();
  EXPECT_GE(load[hot_node], 20);  // the write + twenty reads
  EXPECT_GT(load[hot_node], load[cold_node] + 10);

  // Least-loaded now sends every fresh key to the cold node until it
  // catches up — far more than the ten we place.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(cluster.OwnerOf("fresh-" + std::to_string(i)), cold_node)
        << "fresh key " << i << " ignored the hot node's read traffic";
  }
}

}  // namespace
}  // namespace kvscale
