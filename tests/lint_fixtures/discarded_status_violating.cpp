// Linted as src/store/fixture.cpp: (void) discards of call results.
#include "common/status.hpp"

namespace kvscale {

Status DoWrite();

void Flush() {
  (void)DoWrite();  // line 9: discarded-status
}

}  // namespace kvscale
