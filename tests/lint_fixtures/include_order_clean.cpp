// Linted as src/store/order.cpp: own header first, then the rest.
#include "store/order.hpp"

#include <vector>

#include "common/status.hpp"

namespace kvscale {

int Noop() { return 0; }

}  // namespace kvscale
