// Fixture: suppressions whose rule no longer fires. Each marker below is
// syntactically valid (known rule, justification present) but dead — the
// code it once excused has been fixed — so each must be reported as
// stale-suppression. Linted as src/sim/fixture.cpp.
#include <cstdint>

// A line marker covering the next line, but the line is clean now.
// kvscale-lint: allow(sim-wallclock) the wall-clock read was removed
uint64_t Now() { return 42; }

// A trailing marker on a clean line.
uint64_t Later() { return 43; }  // kvscale-lint: allow(discarded-status) call was dropped

// A file-wide marker for a rule that fires nowhere in this file.
// kvscale-lint: allow-file(raw-mutex) the raw mutex member is gone

// A live marker for contrast: it suppresses a real violation and must
// NOT be reported as stale.
// kvscale-lint: allow(stdout-in-lib) fixture exercises a live marker
int Print() { return puts("ok"); }
