// Linted as src/sim/fixture.cpp. Each marker below is defective and must
// produce a lint-suppression finding; the findings they fail to suppress
// must still be reported.
#include <chrono>

namespace kvscale {

double A() {
  // kvscale-lint: allow(no-such-rule) rule id does not exist
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

double B() {
  // kvscale-lint: allow(sim-wallclock)
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

double C() {
  // kvscale-lint: disable-everything-forever
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

}  // namespace kvscale
