// Linted as src/store/fixture.cpp. (void) on a plain variable and
// C-style `f(void)` parameter lists are not discards of a call result.
namespace kvscale {

int TakesVoid(void);

void Use(int unused_argument) {
  (void)unused_argument;
}

}  // namespace kvscale
