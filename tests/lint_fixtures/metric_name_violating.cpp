// Linted as src/telemetry/fixture.cpp: flat or malformed metric names.
#include "telemetry/metrics_registry.hpp"

namespace kvscale {

void Violations(MetricsRegistry& registry) {
  registry.GetCounter("reads").Increment();      // line 7: no namespace dot
  registry.GetGauge("Cache.Fill").Set(1.0);      // line 8: uppercase
  registry.GetHistogram(".lat.us").Record(1.0);  // line 9: leading dot
  registry.GetCounter("a..b").Increment();       // line 10: empty segment
  registry.GetCounter("trailing.").Increment();  // line 11: dangling prefix
}

}  // namespace kvscale
