// Linted as src/sim/fixture.cpp: wall clocks and rand() are banned there.
#include <chrono>
#include <cstdlib>

namespace kvscale {

double NowSeconds() {
  const auto t = std::chrono::steady_clock::now();  // line 8: sim-wallclock
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

int Jitter() { return rand() % 10; }  // line 12: sim-wallclock

}  // namespace kvscale
