// Linted as src/store/fixture.cpp: raw standard-library locking
// primitives belong behind the annotated wrappers.
#include <mutex>  // line 3: raw-mutex

namespace kvscale {

class Counter {
 public:
  void Bump() {
    std::lock_guard<std::mutex> lock(mu_);  // line 10: raw-mutex
    ++n_;
  }

 private:
  std::mutex mu_;  // line 15: raw-mutex
  int n_ = 0;
};

}  // namespace kvscale
