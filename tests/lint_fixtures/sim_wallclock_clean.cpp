// Linted as src/sim/fixture.cpp. Mentions of steady_clock in comments or
// strings must not trip the rule, nor must identifiers that merely
// contain "rand".
#include <cstdint>
#include <string>

namespace kvscale {

// The virtual clock replaces std::chrono::steady_clock here.
const std::string kDoc = "never call steady_clock::now() or rand()";

uint64_t NextRandom(uint64_t operand) { return operand * 6364136223846793005ULL; }

}  // namespace kvscale
