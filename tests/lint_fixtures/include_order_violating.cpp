// Linted as src/store/order.cpp: the own header must be the first
// include, but here a system header sneaks in before it.
#include <vector>

#include "store/order.hpp"

namespace kvscale {

int Noop() { return 0; }

}  // namespace kvscale
