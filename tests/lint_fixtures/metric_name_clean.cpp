// Linted as src/telemetry/fixture.cpp: well-formed metric names, a
// prefix concatenation, a dynamic name, and a justified suppression.
#include <string>

#include "telemetry/metrics_registry.hpp"

namespace kvscale {

void Clean(MetricsRegistry& registry, const std::string& name) {
  registry.GetCounter("cluster.read.errors").Increment();
  registry.GetHistogram("store.read.latency_us").Record(1.0);
  // A trailing dot is fine when the literal is a concatenated prefix.
  registry.GetGauge("sim.gauge." + name).Set(1.0);
  // Dynamic names cannot be linted statically.
  registry.GetCounter(name).Increment();
  // kvscale-lint: allow(metric-name) legacy dashboard key kept verbatim
  registry.GetCounter("legacy").Increment();
  // Prose mentioning GetCounter("flat") in a comment is not a call.
}

}  // namespace kvscale
