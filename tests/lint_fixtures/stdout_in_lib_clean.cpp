// Linted two ways by the test: as src/net/fixture.cpp (stderr and
// snprintf are fine in libraries) and as bench/fixture.cpp (where even
// printf would be exempt).
#include <cstdio>

namespace kvscale {

void Report(const char* message) {
  char line[128];
  snprintf(line, sizeof(line), "note: %s", message);
  fprintf(stderr, "%s\n", line);
}

}  // namespace kvscale
