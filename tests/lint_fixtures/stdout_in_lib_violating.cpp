// Linted as src/net/fixture.cpp: stdout printing from library code.
#include <cstdio>
#include <iostream>

namespace kvscale {

void Announce() {
  std::cout << "hello\n";  // line 8: stdout-in-lib
  printf("world\n");       // line 9: stdout-in-lib
}

}  // namespace kvscale
