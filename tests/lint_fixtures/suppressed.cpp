// Linted as src/sim/fixture.cpp. Every violation below carries a valid
// justification, so the linter must stay silent.
#include <chrono>

// kvscale-lint: allow-file(stdout-in-lib) fixture exercises file-wide allows
#include <cstdio>

namespace kvscale {

double Now() {
  // kvscale-lint: allow(sim-wallclock) marker on the line above the code
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

double Also() {
  const auto t = std::chrono::steady_clock::now();  // kvscale-lint: allow(sim-wallclock) trailing marker on the same line
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

void Print() {
  printf("covered by the allow-file marker\n");
  printf("every printf in this file is\n");
}

}  // namespace kvscale
