// Linted as src/store/fixture.cpp: the annotated wrappers are the
// sanctioned way to lock, and prose mentioning std::mutex is fine.
#include "common/thread_annotations.hpp"

namespace kvscale {

// Wraps std::mutex internally; see thread_annotations.hpp.
class Counter {
 public:
  void Bump() {
    MutexLock lock(mu_);
    ++n_;
  }

 private:
  Mutex mu_;
  int n_ KV_GUARDED_BY(mu_) = 0;
};

}  // namespace kvscale
