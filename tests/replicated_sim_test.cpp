// Tests for the replicated-cluster simulator: replication, read policies,
// cache affinity, failure injection / retries, and master architectures.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cluster/replicated_sim.hpp"

namespace kvscale {
namespace {

ReplicatedClusterConfig FastConfig(uint32_t nodes) {
  ReplicatedClusterConfig config;
  config.base.nodes = nodes;
  config.base.seed = 4242;
  config.base.gc.quadratic_us_per_element2 = 0.0;
  return config;
}

TEST(ReplicatedSimTest, CompletesAndAggregatesCorrectly) {
  const auto workload = UniformWorkload(50000, 100);
  const auto result = RunReplicatedQuery(FastConfig(4), workload);
  EXPECT_EQ(result.completed, 100u);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.retries, 0u);
  EXPECT_EQ(result.aggregated, ExpectedAggregation(workload));
  uint64_t reads = 0;
  for (uint64_t r : result.reads_per_node) reads += r;
  EXPECT_EQ(reads, 100u);
}

TEST(ReplicatedSimTest, MatchesUnreplicatedRunnerOnTheBaseCase) {
  // replication=1 + primary policy must behave like the paper-faithful
  // runner within noise (same model, same structure, different seeds of
  // placement randomness).
  const auto workload = UniformWorkload(200000, 1000);
  ReplicatedClusterConfig config = FastConfig(8);
  const auto replicated = RunReplicatedQuery(config, workload);
  ClusterConfig simple;
  simple.nodes = 8;
  simple.seed = 4242;
  simple.gc.quadratic_us_per_element2 = 0.0;
  const auto plain = RunDistributedQuery(simple, workload);
  EXPECT_NEAR(replicated.makespan / plain.makespan, 1.0, 0.35);
}

TEST(ReplicatedSimTest, DeterministicForSameSeed) {
  const auto workload = UniformWorkload(50000, 200);
  ReplicatedClusterConfig config = FastConfig(4);
  config.replication = 3;
  config.read_policy = ReadPolicy::kRandomReplica;
  const auto a = RunReplicatedQuery(config, workload);
  const auto b = RunReplicatedQuery(config, workload);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.reads_per_node, b.reads_per_node);
}

TEST(ReplicatedSimTest, PrimaryPolicyIgnoresReplicas) {
  const auto workload = UniformWorkload(50000, 200);
  ReplicatedClusterConfig r1 = FastConfig(8);
  ReplicatedClusterConfig r3 = FastConfig(8);
  r3.replication = 3;
  const auto a = RunReplicatedQuery(r1, workload);
  const auto b = RunReplicatedQuery(r3, workload);
  // Primary reads: identical node assignment regardless of replication.
  EXPECT_EQ(a.reads_per_node, b.reads_per_node);
}

TEST(ReplicatedSimTest, LeastLoadedReplicaFlattensTheCoarseWorkload) {
  const auto workload = UniformWorkload(1000000, 100);
  ReplicatedClusterConfig primary = FastConfig(16);
  primary.replication = 3;
  ReplicatedClusterConfig least = FastConfig(16);
  least.replication = 3;
  least.read_policy = ReadPolicy::kLeastLoaded;
  const auto a = RunReplicatedQuery(primary, workload);
  const auto b = RunReplicatedQuery(least, workload);
  EXPECT_LT(b.RequestImbalance(), a.RequestImbalance());
  EXPECT_LT(b.makespan, a.makespan);
}

TEST(ReplicatedSimTest, StaleLoadInfoIsWorseThanFresh) {
  const auto workload = UniformWorkload(1000000, 100);
  ReplicatedClusterConfig fresh = FastConfig(16);
  fresh.replication = 3;
  fresh.read_policy = ReadPolicy::kLeastLoaded;
  ReplicatedClusterConfig stale = FastConfig(16);
  stale.replication = 3;
  stale.read_policy = ReadPolicy::kStaleLeastLoaded;
  stale.load_snapshot_interval = 10.0 * kSecond;  // never refreshed in-run
  const auto a = RunReplicatedQuery(fresh, workload);
  const auto b = RunReplicatedQuery(stale, workload);
  // A snapshot that never updates sees all-zero loads: placement collapses
  // to first-candidate order, so it cannot beat fresh information.
  EXPECT_GE(b.RequestImbalance() + 0.02, a.RequestImbalance());
}

TEST(ReplicatedSimTest, RereadsAreWarm) {
  const auto base = UniformWorkload(10000, 50);
  const auto repeated = RepeatWorkload(base, 3);
  EXPECT_EQ(repeated.partitions.size(), 150u);
  ReplicatedClusterConfig config = FastConfig(4);
  const auto result = RunReplicatedQuery(config, repeated);
  EXPECT_EQ(result.cold_reads, 50u);   // first pass
  EXPECT_EQ(result.warm_reads, 100u);  // second and third passes
  EXPECT_NEAR(result.WarmFraction(), 2.0 / 3.0, 1e-9);
}

TEST(ReplicatedSimTest, SpreadingReadsLosesCacheAffinity) {
  // The Section VIII argument: primary-only re-reads hit a warm cache;
  // spreading over replicas pays cold reads on every copy.
  const auto repeated = RepeatWorkload(UniformWorkload(100000, 100), 4);
  ReplicatedClusterConfig primary = FastConfig(8);
  primary.replication = 3;
  ReplicatedClusterConfig spread = FastConfig(8);
  spread.replication = 3;
  spread.read_policy = ReadPolicy::kRoundRobinReplica;
  const auto a = RunReplicatedQuery(primary, repeated);
  const auto b = RunReplicatedQuery(spread, repeated);
  EXPECT_GT(a.WarmFraction(), b.WarmFraction());
  EXPECT_GT(b.cold_reads, a.cold_reads);
}

TEST(ReplicatedSimTest, FailureWithoutReplicationLosesWork) {
  const auto workload = UniformWorkload(500000, 500);
  ReplicatedClusterConfig config = FastConfig(8);
  config.fail_node = 3;
  config.fail_at = 1.0 * kMillisecond;  // fail almost immediately
  config.request_timeout = 200.0 * kMillisecond;
  config.max_attempts = 3;  // retries exist but there is only one copy
  const auto result = RunReplicatedQuery(config, workload);
  EXPECT_GT(result.failed, 0u);
  EXPECT_EQ(result.reads_per_node[3], 0u);
  EXPECT_LT(result.completed, 500u);
  // Failure accounting must balance: every issued sub-query either
  // completed or is reported failed, never both, never neither.
  EXPECT_EQ(result.completed + result.failed, 500u);
}

TEST(ReplicatedSimTest, FailureAccountingBalancesAcrossTimeoutShapes) {
  // The failed count is derived from per-sub-query state, not subtraction;
  // sweep failure timing against the retry window to probe double-count /
  // lost-update bugs in the fold path (late duplicates, timer races).
  const auto workload = UniformWorkload(200000, 300);
  for (const double fail_at : {0.0, 1.0 * kMillisecond, 40.0 * kMillisecond,
                               400.0 * kMillisecond}) {
    ReplicatedClusterConfig config = FastConfig(6);
    config.replication = 2;
    config.fail_node = 2;
    config.fail_at = fail_at;
    config.request_timeout = 80.0 * kMillisecond;
    config.max_attempts = 2;
    const auto result = RunReplicatedQuery(config, workload);
    EXPECT_EQ(result.completed + result.failed, 300u) << fail_at;
  }
}

TEST(ReplicatedSimTest, ReplicationPlusRetriesSurviveAFailure) {
  const auto workload = UniformWorkload(500000, 500);
  ReplicatedClusterConfig config = FastConfig(8);
  config.replication = 2;
  config.fail_node = 3;
  config.fail_at = 1.0 * kMillisecond;
  config.request_timeout = 150.0 * kMillisecond;
  config.max_attempts = 3;
  const auto result = RunReplicatedQuery(config, workload);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.completed, 500u);
  EXPECT_GT(result.retries, 0u);
  EXPECT_EQ(result.aggregated, ExpectedAggregation(workload));
  // Retried work costs time: makespan at least one timeout window.
  EXPECT_GT(result.makespan, config.request_timeout);
}

TEST(ReplicatedSimTest, NoRetriesWhenTimeoutDisabled) {
  const auto workload = UniformWorkload(100000, 100);
  ReplicatedClusterConfig config = FastConfig(4);
  config.replication = 2;
  config.fail_node = 1;
  config.fail_at = 0.0;
  config.request_timeout = 0.0;  // fire-and-forget
  const auto result = RunReplicatedQuery(config, workload);
  EXPECT_EQ(result.retries, 0u);
  EXPECT_GT(result.failed, 0u);
}

TEST(ReplicatedSimTest, ShardedMastersCutTheIssueBottleneck) {
  // Fine-grained with the slow serializer: a single master needs ~1.5 s;
  // four masters cut the issue phase near 4x (Section VIII's GFS fix).
  const auto workload = UniformWorkload(1000000, 10000);
  ReplicatedClusterConfig single = FastConfig(16);
  single.base.serializer = JavaLikeProfile();
  single.base.size_messages_with_compact_codec = false;
  ReplicatedClusterConfig sharded = single;
  sharded.master_arch = MasterArch::kSharded;
  sharded.master_count = 4;
  const auto a = RunReplicatedQuery(single, workload);
  const auto b = RunReplicatedQuery(sharded, workload);
  EXPECT_LT(b.makespan, a.makespan * 0.6);
  EXPECT_EQ(b.completed, 10000u);
  EXPECT_EQ(b.aggregated, ExpectedAggregation(workload));
}

TEST(ReplicatedSimTest, PeerToPeerRemovesTheMasterEntirely) {
  const auto workload = UniformWorkload(1000000, 10000);
  ReplicatedClusterConfig single = FastConfig(16);
  single.base.serializer = JavaLikeProfile();
  single.base.size_messages_with_compact_codec = false;
  ReplicatedClusterConfig p2p = single;
  p2p.master_arch = MasterArch::kPeerToPeer;
  const auto a = RunReplicatedQuery(single, workload);
  const auto b = RunReplicatedQuery(p2p, workload);
  EXPECT_EQ(b.completed, 10000u);
  EXPECT_EQ(b.aggregated, ExpectedAggregation(workload));
  // No per-message master serialization: the fine-grained workload is no
  // longer pinned at the master's 1.5 s.
  EXPECT_LT(b.makespan, a.makespan * 0.5);
}

TEST(ReplicatedSimTest, PeerToPeerTracesAreLocallyOrdered) {
  const auto workload = UniformWorkload(50000, 200);
  ReplicatedClusterConfig config = FastConfig(4);
  config.master_arch = MasterArch::kPeerToPeer;
  const auto result = RunReplicatedQuery(config, workload);
  ASSERT_EQ(result.tracer.size(), 200u);
  for (const auto& t : result.tracer.traces()) {
    EXPECT_DOUBLE_EQ(t.issued, t.received);  // local dispatch
    EXPECT_LE(t.received, t.db_start);
    EXPECT_LE(t.db_start, t.db_end);
    EXPECT_DOUBLE_EQ(t.db_end, t.completed);  // folded locally
  }
}

TEST(ReplicatedSimTest, ReplicaSetsAreDistinctNodes) {
  const auto workload = UniformWorkload(10000, 100);
  ReplicatedClusterConfig config = FastConfig(6);
  config.replication = 3;
  config.read_policy = ReadPolicy::kRoundRobinReplica;
  const auto result = RunReplicatedQuery(config, workload);
  // With rotation over 3 distinct replicas, reads reach many nodes.
  size_t nodes_used = 0;
  for (uint64_t c : result.reads_per_node) nodes_used += (c > 0);
  EXPECT_GE(nodes_used, 5u);
}

TEST(ReplicatedSimTest, SuccessfulTracesKeepStageOrderEvenWithRetries) {
  const auto workload = UniformWorkload(300000, 300);
  ReplicatedClusterConfig config = FastConfig(8);
  config.replication = 2;
  config.fail_node = 2;
  config.fail_at = 20.0 * kMillisecond;
  config.request_timeout = 100.0 * kMillisecond;
  config.max_attempts = 3;
  const auto result = RunReplicatedQuery(config, workload);
  EXPECT_GT(result.retries, 0u);
  for (const auto& t : result.tracer.traces()) {
    EXPECT_LE(t.issued, t.received) << t.sub_id;
    EXPECT_LE(t.received, t.db_start) << t.sub_id;
    EXPECT_LE(t.db_start, t.db_end) << t.sub_id;
    EXPECT_GT(t.completed, 0.0) << t.sub_id;
  }
}

TEST(ReplicatedSimTest, ReadFanoutMultipliesDatabaseWork) {
  // Section VIII on Kinesis-style multi-reads: "we have to question all k
  // servers during a read operation and this might result in reducing k
  // times the performance".
  const auto workload = UniformWorkload(200000, 200);
  ReplicatedClusterConfig one = FastConfig(8);
  one.replication = 3;
  ReplicatedClusterConfig all = FastConfig(8);
  all.replication = 3;
  all.read_fanout = 3;
  const auto a = RunReplicatedQuery(one, workload);
  const auto b = RunReplicatedQuery(all, workload);
  EXPECT_EQ(a.completed, 200u);
  EXPECT_EQ(b.completed, 200u);
  EXPECT_EQ(b.aggregated, ExpectedAggregation(workload));
  uint64_t reads_a = 0, reads_b = 0;
  for (uint64_t r : a.reads_per_node) reads_a += r;
  for (uint64_t r : b.reads_per_node) reads_b += r;
  EXPECT_EQ(reads_a, 200u);
  EXPECT_EQ(reads_b, 600u);  // every copy served
  // The query waits for the slowest copy and the cluster does 3x work.
  EXPECT_GT(b.makespan, a.makespan * 1.5);
}

TEST(ReplicatedSimTest, FanoutClampedToReplication) {
  const auto workload = UniformWorkload(50000, 100);
  ReplicatedClusterConfig config = FastConfig(4);
  config.replication = 2;
  config.read_fanout = 16;  // clamped to the 2 available copies
  const auto result = RunReplicatedQuery(config, workload);
  EXPECT_EQ(result.completed, 100u);
  uint64_t reads = 0;
  for (uint64_t r : result.reads_per_node) reads += r;
  EXPECT_EQ(reads, 200u);
}

class ReadPolicySweep : public ::testing::TestWithParam<ReadPolicy> {};

TEST_P(ReadPolicySweep, EveryPolicyCompletesAndAggregates) {
  const auto workload = UniformWorkload(50000, 100);
  ReplicatedClusterConfig config = FastConfig(5);
  config.replication = 2;
  config.read_policy = GetParam();
  const auto result = RunReplicatedQuery(config, workload);
  EXPECT_EQ(result.completed, 100u);
  EXPECT_EQ(result.aggregated, ExpectedAggregation(workload));
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ReadPolicySweep,
    ::testing::Values(ReadPolicy::kPrimary, ReadPolicy::kRoundRobinReplica,
                      ReadPolicy::kRandomReplica, ReadPolicy::kLeastLoaded,
                      ReadPolicy::kStaleLeastLoaded));

}  // namespace
}  // namespace kvscale
