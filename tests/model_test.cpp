// Tests for src/model: Formulas 1-8, the optimizer, architecture analyses,
// and calibration. Paper-anchored values are cited inline.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "model/architecture.hpp"
#include "model/balls_into_bins.hpp"
#include "model/calibrator.hpp"
#include "model/db_model.hpp"
#include "model/device_model.hpp"
#include "model/master_model.hpp"
#include "model/monte_carlo.hpp"
#include "model/optimizer.hpp"
#include "model/parallelism_model.hpp"
#include "model/query_model.hpp"

namespace kvscale {
namespace {

// ---------------------------------------------------------------------------
// Formula 1 / Formula 5 (balls into bins)
// ---------------------------------------------------------------------------

TEST(BallsIntoBinsTest, PaperSectionIIExamples) {
  // "one of the ten nodes will have 27 countries assigned - which is about
  // sqrt(log 10 * 10 / 200) = 0.339 ~ 34% more".
  EXPECT_NEAR(ImbalanceRatio(200, 10), 0.339, 0.005);
  // "we will expect an unbalance of 0.5% and 0.015%".
  EXPECT_NEAR(ImbalanceRatio(1000000, 10), 0.0048, 0.0005);
  EXPECT_NEAR(ImbalanceRatio(1000000000, 10), 0.00015, 0.00002);
}

TEST(BallsIntoBinsTest, SingleNodeHasNoImbalance) {
  EXPECT_DOUBLE_EQ(ImbalanceRatio(100, 1), 0.0);
  EXPECT_DOUBLE_EQ(ExpectedMaxKeys(100, 1), 100.0);
}

TEST(BallsIntoBinsTest, Figure3Expectation) {
  // 100 keys over 16 nodes: perfect split is 6.25, the paper's Formula-1
  // marker sits near 10.4 keys (the observed run had 10).
  const double expected = ExpectedMaxKeys(100, 16);
  EXPECT_NEAR(expected, 10.4, 0.3);
}

TEST(BallsIntoBinsTest, ImbalanceGrowsWithNodesShrinksWithKeys) {
  EXPECT_GT(ImbalanceRatio(100, 16), ImbalanceRatio(100, 8));
  EXPECT_GT(ImbalanceRatio(100, 16), ImbalanceRatio(1000, 16));
  // The paper's city example: doubling servers raises imbalance 21% -> 35%.
  EXPECT_GT(ImbalanceRatio(500, 20) / ImbalanceRatio(500, 10), 1.3);
}

TEST(BallsIntoBinsTest, ThrowBallsConservesBalls) {
  Rng rng(3);
  const auto bins = ThrowBalls(1000, 16, rng);
  uint64_t sum = 0;
  for (uint64_t b : bins) sum += b;
  EXPECT_EQ(sum, 1000u);
  EXPECT_EQ(bins.size(), 16u);
}

TEST(BallsIntoBinsTest, MonteCarloDensityBracketsFormula) {
  Rng rng(5);
  const auto density = SimulateMaxLoadDensity(100, 16, 20000, rng);
  // Support of the max load: at least ceil(100/16) = 7.
  EXPECT_GE(density.MinValue(), 7);
  // The Monte-Carlo mean should sit near the Formula-1 expectation.
  EXPECT_NEAR(density.Mean(), ExpectedMaxKeys(100, 16), 1.0);
  // "in 60% of the cases we would have a more unbalanced scenario" than
  // the paper's observed 10, i.e. P(max > 10) ~ 0.6.
  const double more_unbalanced = density.TailProbability(11);
  EXPECT_GT(more_unbalanced, 0.45);
  EXPECT_LT(more_unbalanced, 0.8);
}

TEST(BallsIntoBinsTest, EmpiricalImbalanceOfUniformIsZero) {
  EXPECT_DOUBLE_EQ(EmpiricalImbalance({5, 5, 5, 5}), 0.0);
  EXPECT_NEAR(EmpiricalImbalance({10, 5, 5, 0}), 1.0, 1e-12);
}

TEST(BallsIntoBinsTest, WeightedImbalanceExceedsUniformForZipf) {
  Rng rng(7);
  std::vector<uint64_t> uniform(1000, 100);
  std::vector<uint64_t> zipf;
  uint64_t remaining = 100000;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t s = std::max<uint64_t>(1, remaining / (2 * (i + 1)));
    zipf.push_back(s);
  }
  const double u = SimulateWeightedImbalance(uniform, 10, 200, rng);
  const double z = SimulateWeightedImbalance(zipf, 10, 200, rng);
  EXPECT_GT(z, u);
}

// ---------------------------------------------------------------------------
// Formula 6 (DB time) and Formula 7 (parallelism)
// ---------------------------------------------------------------------------

TEST(DbModelTest, PaperConstants) {
  DbModel db;
  // Below the breakpoint: 1.163 ms + 0.0387 ms/element.
  EXPECT_NEAR(db.QueryTime(100), 1163 + 38.7 * 100, 1e-6);
  EXPECT_NEAR(db.QueryTime(1425), 1163 + 38.7 * 1425, 1e-6);
  // Above: 0.773 ms + 0.0439 ms/element.
  EXPECT_NEAR(db.QueryTime(1426), 773 + 43.9 * 1426, 1e-6);
  EXPECT_NEAR(db.QueryTime(10000), 773 + 43.9 * 10000, 1e-6);
}

TEST(DbModelTest, DiscontinuityJumpsUpAtBreakpoint) {
  DbModel db;
  // The index overhead makes the first indexed row *slower* than the last
  // unindexed one (visible as the Figure 6 step).
  EXPECT_GT(db.QueryTime(1426), db.QueryTime(1425));
  const double jump = db.QueryTime(1426) - db.QueryTime(1425);
  EXPECT_GT(jump, 5.0 * kMillisecond);  // ~7.0 ms step for these constants
}

TEST(DbModelTest, PaperSectionVIIExample) {
  // "the single request takes 11 milliseconds" for 1M/4000 = 250-element
  // rows: 1.163 + 0.0387*250 = 10.8 ms.
  DbModel db;
  EXPECT_NEAR(db.QueryTime(250) / kMillisecond, 10.8, 0.2);
}

TEST(ParallelismModelTest, Formula7Values) {
  ParallelismModel par;
  EXPECT_NEAR(par.MaxSpeedup(100), 12.562 - 1.084 * std::log(100), 1e-9);
  EXPECT_NEAR(par.MaxSpeedup(10000), 12.562 - 1.084 * std::log(10000), 1e-9);
  // Never below 1 even for very large rows.
  EXPECT_GE(par.MaxSpeedup(1e9), 1.0);
}

TEST(ParallelismModelTest, SpeedupAnchors) {
  ParallelismModel par;
  for (double keysize : {100.0, 1000.0, 10000.0}) {
    EXPECT_NEAR(par.SpeedupAt(keysize, 1.0), 1.0, 1e-9) << keysize;
    const double copt = par.OptimalConcurrency(keysize);
    EXPECT_NEAR(par.SpeedupAt(keysize, copt), par.MaxSpeedup(keysize), 1e-6)
        << keysize;
    // Past the optimum the speed-up declines.
    EXPECT_LT(par.SpeedupAt(keysize, copt * 2), par.MaxSpeedup(keysize))
        << keysize;
  }
}

TEST(ParallelismModelTest, OptimalConcurrencyFallsWithRowSize) {
  // Figure 7: "small queries perform best with 32 requests at a time, the
  // medium with 16 while the large ones with 8".
  ParallelismModel par;
  const double small = par.OptimalConcurrency(100);
  const double medium = par.OptimalConcurrency(2500);
  const double large = par.OptimalConcurrency(9000);
  EXPECT_NEAR(small, 32.0, 1.0);
  EXPECT_NEAR(medium, 16.0, 4.0);
  EXPECT_NEAR(large, 8.0, 3.0);
  EXPECT_GT(small, medium);
  EXPECT_GT(medium, large);
}

TEST(ParallelismModelTest, ServiceInflationAtUnitConcurrencyIsOne) {
  ParallelismModel par;
  for (double keysize : {50.0, 500.0, 5000.0}) {
    EXPECT_NEAR(par.ServiceInflation(keysize, 1.0), 1.0, 1e-9);
    // Inflation grows with concurrency (requests interfere).
    EXPECT_GT(par.ServiceInflation(keysize, 16.0), 1.0);
  }
}

TEST(DbModelTest, EffectiveTimeDividesBySpeedup) {
  DbModel db;
  const double keysize = 250;
  EXPECT_NEAR(db.EffectiveTimePerRequest(keysize),
              db.QueryTime(keysize) / db.parallelism().MaxSpeedup(keysize),
              1e-9);
}

TEST(DbModelTest, FromCalibrationRoundTrips) {
  SegmentedFit time_fit;
  time_fit.breakpoint = 1500;
  time_fit.lower = LinearFit{1000, 40, 1.0, 0, 10};
  time_fit.upper = LinearFit{800, 44, 1.0, 0, 10};
  LinearFit speedup_fit{12.0, -1.0, 1.0, 0, 10};
  const DbModel db = DbModel::FromCalibration(time_fit, speedup_fit);
  EXPECT_NEAR(db.QueryTime(1000), 1000 + 40 * 1000, 1e-9);
  EXPECT_NEAR(db.QueryTime(2000), 800 + 44 * 2000, 1e-9);
  EXPECT_NEAR(db.parallelism().MaxSpeedup(std::exp(1.0)), 11.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Formulas 2/3/4 (composed model)
// ---------------------------------------------------------------------------

QueryModel PaperModel(const SerializerProfile& profile) {
  return QueryModel(DbModel{}, MasterModel::FromSerializer(profile));
}

TEST(MasterModelTest, Formula3IsLinearInKeys) {
  const MasterModel master = MasterModel::FromSerializer(JavaLikeProfile());
  // 10k messages at 150 us = 1.5 s (the paper's fine-grained master time).
  EXPECT_NEAR(master.IssueTime(10000) / kSecond, 1.5, 0.01);
  const MasterModel fast = MasterModel::FromSerializer(KryoLikeProfile());
  EXPECT_NEAR(fast.IssueTime(10000) / kMillisecond, 190, 5);
}

TEST(QueryModelTest, FineGrainedSlowMasterIsMasterBound) {
  const QueryModel model = PaperModel(JavaLikeProfile());
  const QueryPrediction p = model.Predict(1000000, 10000, 16);
  EXPECT_EQ(p.bottleneck, QueryPrediction::Bottleneck::kMaster);
  EXPECT_NEAR(p.total / kSecond, 1.5, 0.1);
}

TEST(QueryModelTest, FineGrainedFastMasterIsSlaveBound) {
  const QueryModel model = PaperModel(KryoLikeProfile());
  const QueryPrediction p = model.Predict(1000000, 10000, 16);
  EXPECT_EQ(p.bottleneck, QueryPrediction::Bottleneck::kSlave);
}

TEST(QueryModelTest, CoarseGrainedDominatedByImbalance) {
  const QueryModel model = PaperModel(KryoLikeProfile());
  const QueryPrediction p = model.Predict(1000000, 100, 16);
  // key_max ~ 10.4 of 100 keys: the slowest slave does ~66% more work
  // than a balanced one.
  EXPECT_GT(p.slowest_slave / p.balanced_slave, 1.5);
  EXPECT_EQ(p.bottleneck, QueryPrediction::Bottleneck::kSlave);
}

TEST(QueryModelTest, TotalIsMaxOfComponents) {
  const QueryModel model = PaperModel(KryoLikeProfile());
  for (uint64_t keys : {100ULL, 1000ULL, 10000ULL}) {
    for (uint32_t nodes : {1u, 4u, 16u}) {
      const QueryPrediction p = model.Predict(1000000, keys, nodes);
      EXPECT_DOUBLE_EQ(
          p.total,
          std::max({p.master_issue, p.slowest_slave, p.result_fetch}));
    }
  }
}

TEST(QueryModelTest, MoreNodesNeverSlowerWhileSlaveBound) {
  const QueryModel model = PaperModel(KryoLikeProfile());
  Micros prev = model.Predict(1000000, 1000, 1).total;
  for (uint32_t n = 2; n <= 16; n *= 2) {
    const Micros cur = model.Predict(1000000, 1000, n).total;
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(QueryModelTest, IdealTimeScalesLinearly) {
  const QueryModel model = PaperModel(KryoLikeProfile());
  const Micros one = model.Predict(1000000, 1000, 1).total;
  EXPECT_NEAR(model.IdealTime(1000000, 1000, 8), one / 8, 1e-6);
}

TEST(QueryModelTest, GcCorrectionAddsOverhead) {
  const QueryModel base = PaperModel(KryoLikeProfile());
  const QueryModel with_gc = base.WithGc(GcModel{0.5});
  const QueryPrediction p0 = base.Predict(1000000, 100, 16);
  const QueryPrediction p1 = with_gc.Predict(1000000, 100, 16);
  EXPECT_GT(p1.slowest_slave, p0.slowest_slave);
  EXPECT_DOUBLE_EQ(p1.gc_overhead, 0.5 * 10000 * p1.key_max);
}

TEST(QueryModelTest, SlowerDeviceRaisesPrediction) {
  const QueryModel dram = PaperModel(KryoLikeProfile());
  const QueryModel hdd = dram.WithDevice(HddDevice());
  EXPECT_GT(hdd.Predict(1000000, 1000, 4).total,
            dram.Predict(1000000, 1000, 4).total);
}

TEST(DeviceModelTest, TierOrdering) {
  const double bytes = 64 * 1024;
  EXPECT_LT(HbmDevice().ReadTime(bytes), DramDevice().ReadTime(bytes));
  EXPECT_LT(DramDevice().ReadTime(bytes), NvmDevice().ReadTime(bytes));
  EXPECT_LT(NvmDevice().ReadTime(bytes), SataSsdDevice().ReadTime(bytes));
  EXPECT_LT(SataSsdDevice().ReadTime(bytes), HddDevice().ReadTime(bytes));
}

// ---------------------------------------------------------------------------
// Optimizer (Figures 9 and 10)
// ---------------------------------------------------------------------------

TEST(QueryModelTest, PaperSectionVIIRoundNumbers) {
  // "the database performs optimally when issuing 4 thousand rows; the
  // whole query takes 8 seconds on a single node, while the single
  // request takes 11 milliseconds".
  const QueryModel model = PaperModel(KryoLikeProfile());
  const QueryPrediction p = model.Predict(1000000, 4000, 1);
  EXPECT_NEAR(p.total / kSecond, 8.0, 2.0);
  EXPECT_NEAR(model.db().QueryTime(p.keysize) / kMillisecond, 11.0, 1.0);
  // "On a cluster of 32 nodes, the query should run in 8/32 = 0.25
  // seconds if the system scales perfectly."
  EXPECT_NEAR(model.IdealTime(1000000, 4000, 32) / p.total, 1.0 / 32, 1e-9);
}

TEST(OptimizerTest, SingleNodeOptimumNearPaperValue) {
  // "Cassandra seems to perform at best if we split the one million
  // elements into 3300 rows" (Section VII).
  PartitionOptimizer optimizer(PaperModel(KryoLikeProfile()));
  const auto opt = optimizer.Optimize(1000000, 1);
  EXPECT_GT(opt.keys, 1500u);
  EXPECT_LT(opt.keys, 8000u);
}

TEST(OptimizerTest, ResultIsArgminOnFineGrid) {
  PartitionOptimizer optimizer(PaperModel(KryoLikeProfile()));
  const auto opt = optimizer.Optimize(100000, 4);
  const QueryModel& model = optimizer.model();
  const Micros best = model.Predict(100000, opt.keys, 4).total;
  for (uint64_t k = std::max<uint64_t>(1, opt.keys - 50); k <= opt.keys + 50;
       ++k) {
    EXPECT_GE(model.Predict(100000, k, 4).total, best * 0.9999) << k;
  }
}

TEST(OptimizerTest, OptimalKeysGrowWithNodes) {
  // Figure 9: "the optimizer increases the number of rows when there are
  // more nodes".
  PartitionOptimizer optimizer(PaperModel(KryoLikeProfile()));
  const auto sweep = optimizer.Sweep(1000000, {1, 2, 4, 8, 16});
  for (size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GE(sweep[i].keys, sweep[i - 1].keys);
  }
  EXPECT_GT(sweep.back().keys, sweep.front().keys);
}

TEST(OptimizerTest, LossDecompositionIsConsistent) {
  PartitionOptimizer optimizer(PaperModel(KryoLikeProfile()));
  const auto sweep = optimizer.Sweep(1000000, {1, 4, 16});
  for (const auto& opt : sweep) {
    EXPECT_NEAR(opt.total_loss, opt.imbalance_loss + opt.efficiency_loss,
                1e-9);
    EXPECT_GE(opt.total_loss, -1e-9);
  }
  // Figure 10: at 16 nodes the total loss is ~10%; allow a broad band
  // around the paper's number since the constants differ slightly.
  EXPECT_GT(sweep.back().total_loss, 0.02);
  EXPECT_LT(sweep.back().total_loss, 0.5);
}

// ---------------------------------------------------------------------------
// Architecture analyses (Section VII, Figure 11)
// ---------------------------------------------------------------------------

TEST(ArchitectureTest, ScalingProfileFindsMasterCrossover) {
  const QueryModel model = PaperModel(KryoLikeProfile());
  const auto profile = ScalingProfile(model, 1000000, 4000, 160);
  ASSERT_EQ(profile.size(), 160u);
  EXPECT_FALSE(profile.front().master_bound);
  EXPECT_TRUE(profile.back().master_bound);
  const uint32_t crossover = MasterSaturationNodes(model, 1000000, 4000, 160);
  // Paper: "with more than 70 servers the master requires more time to
  // send the requests than the database would need to serve them". Our
  // calibrated constants put the crossover in the same few-dozen-to-~150
  // band; the exact value depends on t_result and F7.
  EXPECT_GT(crossover, 30u);
  EXPECT_LT(crossover, 160u);
}

TEST(ArchitectureTest, QueryTimeFlattensAfterCrossover) {
  const QueryModel model = PaperModel(KryoLikeProfile());
  const auto profile = ScalingProfile(model, 1000000, 4000, 150);
  const uint32_t crossover = MasterSaturationNodes(model, 1000000, 4000, 150);
  ASSERT_GT(crossover, 0u);
  // After the crossover the total time is pinned at the master's time.
  for (uint32_t n = crossover; n <= 150; ++n) {
    EXPECT_NEAR(profile[n - 1].query_time, profile[crossover - 1].master_time,
                profile[crossover - 1].master_time * 0.01);
  }
}

TEST(ArchitectureTest, ReplicaSelectionPaperExample) {
  // Section VII: 32 nodes x 16 in-flight = 512 requests; sending them takes
  // ~9.7 ms of an ~11 ms round, "leaving almost no time for the algorithm".
  const QueryModel model = PaperModel(KryoLikeProfile());
  const auto analysis = AnalyzeReplicaSelection(model, 250, 16, 32);
  EXPECT_DOUBLE_EQ(analysis.requests_in_flight, 512.0);
  EXPECT_NEAR(analysis.send_time_per_round / kMillisecond, 9.7, 0.1);
  EXPECT_NEAR(analysis.round_length / kMillisecond, 10.8, 0.2);
  // "leaving almost no time for the algorithm to run".
  EXPECT_LT(analysis.budget_per_message, 4.0);
  EXPECT_TRUE(analysis.feasible);
}

TEST(ArchitectureTest, ReplicaSelectionLimitShrinksWithLogicCost) {
  // "it is likely that with more than 32 nodes the master will start to be
  // the major performance bottleneck" (Section VII).
  const QueryModel model = PaperModel(KryoLikeProfile());
  const uint32_t cheap = ReplicaSelectionLimit(model, 250, 16, 1.0, 256);
  const uint32_t costly = ReplicaSelectionLimit(model, 250, 16, 50.0, 256);
  EXPECT_GT(cheap, costly);
  EXPECT_GT(cheap, 20u);
  EXPECT_LT(cheap, 64u);
}

// ---------------------------------------------------------------------------
// Monte-Carlo prediction bands
// ---------------------------------------------------------------------------

TEST(MonteCarloTest, BandsBracketTheFormulaForManyKeys) {
  Rng rng(3);
  const QueryModel model = PaperModel(KryoLikeProfile());
  const auto bands = PredictDistribution(model, 1000000, 10000, 16, 500, rng);
  // With 10k keys the placement is tight: the bands hug the formula.
  EXPECT_NEAR(bands.p50 / bands.formula_point, 1.0, 0.1);
  EXPECT_LE(bands.p10, bands.p50);
  EXPECT_LE(bands.p50, bands.p90);
  EXPECT_LE(bands.p90, bands.p99);
}

TEST(MonteCarloTest, CoarseWorkloadMedianExceedsSmoothFormula) {
  // The effect behind the Figure 8 residual at coarse/16: the realised
  // max load typically beats Formula 5's smooth expectation.
  Rng rng(5);
  const QueryModel model = PaperModel(KryoLikeProfile());
  const auto bands = PredictDistribution(model, 1000000, 100, 16, 1000, rng);
  EXPECT_GT(bands.p50, bands.formula_point * 0.95);
  EXPECT_GT(bands.p90, bands.formula_point * 1.05);
  // The band is wide: the p99/p10 spread reflects real run-to-run
  // variance the paper observed.
  EXPECT_GT(bands.p99 / bands.p10, 1.15);
}

TEST(MonteCarloTest, MasterBoundCollapsesTheBands) {
  // When the master dominates, placement noise cannot matter.
  Rng rng(7);
  const QueryModel model = PaperModel(JavaLikeProfile());
  const auto bands = PredictDistribution(model, 1000000, 10000, 16, 300, rng);
  EXPECT_NEAR(bands.p99 / bands.p10, 1.0, 0.02);
  EXPECT_NEAR(bands.p50, model.master().IssueTime(10000), 1e-6);
}

TEST(MonteCarloTest, ZeroNoiseStillSamplesPlacement) {
  Rng rng(9);
  DbModelParams params;
  params.noise_sigma = 0.0;
  const QueryModel model(DbModel(params),
                         MasterModel::FromSerializer(KryoLikeProfile()));
  const auto bands = PredictDistribution(model, 1000000, 100, 16, 300, rng);
  EXPECT_GT(bands.p90, bands.p10);  // placement variance remains
}

// ---------------------------------------------------------------------------
// Calibration
// ---------------------------------------------------------------------------

TEST(CalibratorTest, RecoversPlantedDbModel) {
  // Formula 6's two pieces are nearly collinear (38.7 vs 43.9 us/element),
  // so the breakpoint is only identifiable with modest noise — which is
  // why the paper used stratified sampling with repetitions. 3% noise
  // stands in for the median over repetitions.
  Rng rng(11);
  std::vector<CalibrationSample> query_samples;
  for (int i = 0; i < 600; ++i) {
    const double keysize = rng.Uniform(50, 10000);
    const DbModel truth;
    query_samples.push_back(CalibrationSample{
        keysize, truth.QueryTime(keysize) * rng.LogNormal(0.0, 0.03)});
  }
  std::vector<SpeedupSample> speedup_samples;
  for (int i = 0; i < 60; ++i) {
    const double keysize = rng.Uniform(100, 10000);
    const ParallelismModel truth;
    speedup_samples.push_back(SpeedupSample{
        keysize, truth.MaxSpeedup(keysize) + rng.Normal(0, 0.15), 16});
  }
  const DbModel calibrated =
      CalibrateDbModel(query_samples, speedup_samples);
  EXPECT_NEAR(calibrated.params().breakpoint_elements, 1425, 500);
  EXPECT_NEAR(calibrated.QueryTime(500) / DbModel().QueryTime(500), 1.0, 0.1);
  EXPECT_NEAR(calibrated.QueryTime(5000) / DbModel().QueryTime(5000), 1.0,
              0.1);
  EXPECT_NEAR(calibrated.parallelism().MaxSpeedup(1000),
              ParallelismModel().MaxSpeedup(1000), 0.5);
}

}  // namespace
}  // namespace kvscale
