// Tests for the metrics recorder (trace/metrics.hpp).
#include <gtest/gtest.h>

#include "sim/resource.hpp"
#include "trace/metrics.hpp"
#include "trace/telemetry_bridge.hpp"

namespace kvscale {
namespace {

TEST(TimeSeriesTest, SummariesAndLookup) {
  TimeSeries series;
  series.Add(0, 1.0);
  series.Add(10, 5.0);
  series.Add(20, 3.0);
  EXPECT_DOUBLE_EQ(series.MaxValue(), 5.0);
  EXPECT_DOUBLE_EQ(series.MeanValue(), 3.0);
  EXPECT_DOUBLE_EQ(series.ValueAt(15), 5.0);
  EXPECT_DOUBLE_EQ(series.ValueAt(-1), 0.0);
  EXPECT_DOUBLE_EQ(series.FirstTimeAbove(4.0), 10.0);
  EXPECT_DOUBLE_EQ(series.FirstTimeAbove(100.0), -1.0);
}

TEST(TimeSeriesTest, SparklineShapesFollowValues) {
  TimeSeries series;
  for (int i = 0; i <= 100; ++i) {
    series.Add(i, i < 50 ? 0.0 : 10.0);  // step up at t=50
  }
  const std::string spark = series.Sparkline(20);
  ASSERT_EQ(spark.size(), 20u);
  EXPECT_EQ(spark.front(), ' ');
  EXPECT_EQ(spark.back(), '@');
}

TEST(TimeSeriesTest, EmptySeriesIsSafe) {
  TimeSeries series;
  EXPECT_DOUBLE_EQ(series.MaxValue(), 0.0);
  EXPECT_DOUBLE_EQ(series.MeanValue(), 0.0);
  EXPECT_EQ(series.Sparkline(10), "");
}

TEST(MetricsRecorderTest, SamplesGaugesOnTheInterval) {
  Simulator sim;
  Resource cpu(sim, 1, "cpu");
  for (int i = 0; i < 10; ++i) {
    cpu.Submit(100.0, [](SimTime, SimTime, SimTime) {});
  }
  MetricsRecorder metrics(sim, 50.0);
  metrics.AddGauge("queue", [&] { return static_cast<double>(cpu.queue_depth()); });
  metrics.AddGauge("active", [&] { return static_cast<double>(cpu.active()); });
  metrics.Start();
  sim.Run();

  // 10 jobs x 100 us each = 1000 us of work sampled every 50 us.
  EXPECT_GE(metrics.ticks(), 20u);
  const TimeSeries& queue = metrics.series("queue");
  EXPECT_DOUBLE_EQ(queue.samples().front().second, 9.0);  // 1 active, 9 queued
  EXPECT_DOUBLE_EQ(queue.ValueAt(1000.0), 0.0);           // drained by the end
  // Queue length decreases monotonically for FIFO constant-service jobs.
  double prev = 1e9;
  for (const auto& [t, v] : queue.samples()) {
    EXPECT_LE(v, prev);
    prev = v;
  }
  EXPECT_DOUBLE_EQ(metrics.series("active").MaxValue(), 1.0);
}

TEST(MetricsRecorderTest, StopsWhenSimulationDrains) {
  Simulator sim;
  MetricsRecorder metrics(sim, 10.0);
  metrics.AddGauge("constant", [] { return 1.0; });
  sim.Schedule(35.0, [] {});  // a single event
  metrics.Start();
  sim.Run();
  // Ticks at 0,10,20,30,40(last: queue empty afterwards) — bounded.
  EXPECT_LE(metrics.ticks(), 6u);
  EXPECT_TRUE(sim.empty());
}

TEST(MetricsRecorderTest, ReportListsEveryGauge) {
  Simulator sim;
  MetricsRecorder metrics(sim, 10.0);
  metrics.AddGauge("alpha", [] { return 1.0; });
  metrics.AddGauge("beta", [] { return 2.0; });
  sim.Schedule(30.0, [] {});
  metrics.Start();
  sim.Run();
  const std::string report = metrics.Report(20);
  EXPECT_NE(report.find("alpha"), std::string::npos);
  EXPECT_NE(report.find("beta"), std::string::npos);
  EXPECT_EQ(metrics.gauge_names().size(), 2u);
}

TEST(MetricsRecorderTest, MirrorsIntoTelemetryRegistry) {
  Simulator sim;
  MetricsRecorder metrics(sim, 10.0);
  double level = 0.0;
  metrics.AddGauge("queue", [&] { return level; });
  sim.Schedule(5.0, [&] { level = 4.0; });
  sim.Schedule(25.0, [&] { level = 2.0; });
  sim.Schedule(45.0, [] {});
  metrics.Start();
  sim.Run();

  MetricsRegistry registry;
  MirrorRecorderToRegistry(metrics, registry);
  // Last sample wins for the gauge; every sample lands in the histogram.
  EXPECT_DOUBLE_EQ(registry.GetGauge("sim.gauge.queue").Value(), 2.0);
  LatencyHistogram& histogram = registry.GetHistogram("sim.gauge.queue");
  EXPECT_EQ(histogram.Count(), metrics.series("queue").size());
  EXPECT_DOUBLE_EQ(histogram.Max(), 4.0);
}

}  // namespace
}  // namespace kvscale
