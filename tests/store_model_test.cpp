// Randomized reference-model test: the Table must behave exactly like a
// simple in-memory oracle (map of maps) under arbitrary interleavings of
// Put / Delete / Flush / Compact / GetPartition / Slice / CountByType.
// This is the strongest correctness net over the storage engine: any
// divergence in merge order, tombstone shadowing, block packing, caching
// or compaction shows up as an oracle mismatch.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "store/local_store.hpp"

namespace kvscale {
namespace {

/// The oracle: partition -> clustering -> column (no tombstones; deletes
/// erase directly).
using Oracle = std::map<std::string, std::map<uint64_t, Column>>;

Column RandomColumn(Rng& rng, uint64_t clustering) {
  Column c;
  c.clustering = clustering;
  c.type_id = static_cast<uint32_t>(rng.Below(6));
  c.payload = MakePayload(rng.Next(), clustering, 8 + rng.Below(60));
  return c;
}

std::string RandomPartition(Rng& rng, size_t partitions) {
  return "p" + std::to_string(rng.Below(partitions));
}

void CheckPartition(const Table& table, const Oracle& oracle,
                    const std::string& key) {
  auto it = oracle.find(key);
  auto stored = table.GetPartition(key);
  if (it == oracle.end()) {
    // Never written at all -> NotFound. (Written-then-fully-deleted
    // partitions legitimately return an empty vector before compaction.)
    if (stored.ok()) {
      EXPECT_TRUE(stored.value().empty()) << key;
    }
    return;
  }
  // Fully-deleted partitions may be NotFound (after compaction) or empty.
  if (it->second.empty()) {
    if (stored.ok()) {
      EXPECT_TRUE(stored.value().empty()) << key;
    }
    return;
  }
  ASSERT_TRUE(stored.ok()) << key;
  const auto& cols = stored.value();
  ASSERT_EQ(cols.size(), it->second.size()) << key;
  size_t i = 0;
  for (const auto& [clustering, expected] : it->second) {
    EXPECT_EQ(cols[i], expected) << key << " @ " << clustering;
    ++i;
  }
}

void CheckSlice(const Table& table, const Oracle& oracle,
                const std::string& key, uint64_t lo, uint64_t hi) {
  auto it = oracle.find(key);
  auto stored = table.Slice(key, lo, hi);
  std::vector<Column> expected;
  if (it != oracle.end()) {
    for (auto cit = it->second.lower_bound(lo);
         cit != it->second.end() && cit->first <= hi; ++cit) {
      expected.push_back(cit->second);
    }
  }
  if (!stored.ok()) {
    EXPECT_TRUE(expected.empty()) << key;
    return;
  }
  EXPECT_EQ(stored.value(), expected) << key << " [" << lo << "," << hi << "]";
}

void CheckCounts(const Table& table, const Oracle& oracle,
                 const std::string& key) {
  auto it = oracle.find(key);
  auto stored = table.CountByType(key);
  TypeCounts expected;
  if (it != oracle.end()) {
    for (const auto& [clustering, column] : it->second) {
      ++expected[column.type_id];
    }
  }
  if (!stored.ok()) {
    EXPECT_TRUE(expected.empty()) << key;
    return;
  }
  EXPECT_EQ(stored.value(), expected) << key;
}

class StoreModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StoreModelTest, RandomOperationsMatchOracle) {
  Rng rng(GetParam());
  // Small blocks + low thresholds exercise multi-block partitions and the
  // column-index path even with modest data.
  TableOptions options;
  options.segment.block_size = 1 + rng.Below(3000);
  options.segment.column_index_threshold = 1 + rng.Below(8000);
  options.memtable_flush_bytes = 1 + rng.Below(32 * 1024);
  options.auto_flush = rng.Chance(0.5);
  BlockCache cache(rng.Chance(0.5) ? 256 * 1024 : 1024);
  Table table("t", options, rng.Chance(0.7) ? &cache : nullptr);

  Oracle oracle;
  constexpr size_t kPartitions = 6;
  constexpr uint64_t kClusterings = 64;
  constexpr int kOperations = 1500;

  for (int op = 0; op < kOperations; ++op) {
    const uint64_t dice = rng.Below(100);
    if (dice < 45) {  // Put
      const std::string key = RandomPartition(rng, kPartitions);
      const Column column = RandomColumn(rng, rng.Below(kClusterings));
      oracle[key][column.clustering] = column;
      table.Put(key, column);
    } else if (dice < 60) {  // Delete
      const std::string key = RandomPartition(rng, kPartitions);
      const uint64_t clustering = rng.Below(kClusterings);
      oracle[key].erase(clustering);
      table.Delete(key, clustering);
    } else if (dice < 65) {  // Flush
      table.Flush();
    } else if (dice < 68) {  // Compact
      table.Compact();
    } else if (dice < 80) {  // GetPartition check
      CheckPartition(table, oracle, RandomPartition(rng, kPartitions));
    } else if (dice < 92) {  // Slice check
      const uint64_t lo = rng.Below(kClusterings);
      const uint64_t hi = lo + rng.Below(kClusterings - lo + 1);
      CheckSlice(table, oracle, RandomPartition(rng, kPartitions), lo, hi);
    } else {  // CountByType check
      CheckCounts(table, oracle, RandomPartition(rng, kPartitions));
    }
  }

  // Final full verification across every partition and a few slices.
  for (size_t p = 0; p < kPartitions; ++p) {
    const std::string key = "p" + std::to_string(p);
    CheckPartition(table, oracle, key);
    CheckCounts(table, oracle, key);
    CheckSlice(table, oracle, key, 0, kClusterings);
    CheckSlice(table, oracle, key, kClusterings / 4, kClusterings / 2);
  }
  // And once more after a final compaction.
  table.Compact();
  for (size_t p = 0; p < kPartitions; ++p) {
    CheckPartition(table, oracle, "p" + std::to_string(p));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreModelTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace kvscale
