// Trace-context propagation over the wire: the envelope carries
// {query_id, sub_id, attempt, trace_flags}, node-side worker spans are
// sampled iff the decoded wire context asks for it, and master/node
// spans join into causal flows. Tracing must be an observer: every
// gather result is bit-identical with tracing on, off, or detached,
// across codecs, batching, retries, and hedges.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster/in_process_cluster.hpp"
#include "fault/fault_injector.hpp"
#include "store/row.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/span_tracer.hpp"
#include "wire/envelope.hpp"
#include "workload/granularity.hpp"

namespace kvscale {
namespace {

WorkloadSpec LoadUniform(InProcessCluster& cluster, int partitions,
                         int columns, TypeCounts* truth = nullptr) {
  WorkloadSpec workload;
  workload.table = "t";
  for (int part = 0; part < partitions; ++part) {
    const std::string key = "p" + std::to_string(part);
    for (int i = 0; i < columns; ++i) {
      Column c;
      c.clustering = i;
      c.type_id = i % 5;
      c.payload = MakePayload(part, i, 24);
      EXPECT_TRUE(cluster.Put("t", key, std::move(c)).ok());
      if (truth != nullptr) ++(*truth)[i % 5];
    }
    workload.partitions.push_back(
        PartitionRef{key, static_cast<uint32_t>(columns)});
  }
  return workload;
}

/// The observable outcome of a gather — everything that must not change
/// when tracing is toggled.
void ExpectIdenticalOutcome(const GatherResult& a, const GatherResult& b,
                            const std::string& label) {
  EXPECT_EQ(a.totals, b.totals) << label;
  EXPECT_EQ(a.subqueries, b.subqueries) << label;
  EXPECT_EQ(a.completed, b.completed) << label;
  EXPECT_EQ(a.failed, b.failed) << label;
  EXPECT_EQ(a.retries, b.retries) << label;
  EXPECT_EQ(a.hedged, b.hedged) << label;
  EXPECT_EQ(a.partial, b.partial) << label;
  EXPECT_EQ(a.partitions_missing, b.partitions_missing) << label;
  EXPECT_EQ(a.requests_per_node, b.requests_per_node) << label;
  EXPECT_EQ(a.errors_per_node, b.errors_per_node) << label;
  EXPECT_EQ(a.lost_partitions, b.lost_partitions) << label;
}

TEST(TraceFlowIdTest, NonZeroDeterministicAndDistinct) {
  std::set<uint64_t> seen;
  for (uint64_t query = 1; query <= 8; ++query) {
    for (uint32_t sub = 0; sub < 8; ++sub) {
      for (uint32_t attempt = 0; attempt < 3; ++attempt) {
        const uint64_t id = TraceFlowId(query, sub, attempt);
        EXPECT_NE(id, 0u);  // 0 means "no flow" in the exporter
        EXPECT_EQ(id, TraceFlowId(query, sub, attempt));
        seen.insert(id);
      }
    }
  }
  // Distinct coordinates virtually never collide (8*8*3 = 192 ids).
  EXPECT_EQ(seen.size(), 192u);
}

TEST(TracePropagationTest, ResultsAreBitIdenticalAcrossCodecAndBatch) {
  InProcessCluster cluster(4, PlacementKind::kDhtRandom, StoreOptions{}, 7);
  TypeCounts truth;
  const WorkloadSpec workload = LoadUniform(cluster, 40, 10, &truth);
  cluster.FlushAll();

  for (const WireCodecKind codec :
       {WireCodecKind::kTagged, WireCodecKind::kCompact}) {
    for (const bool batch : {false, true}) {
      GatherOptions options;
      options.transport = GatherTransport::kMessage;
      options.codec = codec;
      options.batch = batch;
      options.workers_per_node = 2;

      cluster.AttachTelemetry(nullptr, nullptr);
      const GatherResult untraced = cluster.CountByTypeAll(workload, options);
      ASSERT_EQ(untraced.totals, truth);

      SpanTracer spans;
      MetricsRegistry registry;
      cluster.AttachTelemetry(&spans, &registry);
      const GatherResult traced = cluster.CountByTypeAll(workload, options);
      cluster.AttachTelemetry(nullptr, nullptr);

      const std::string label = std::string(WireCodecName(codec)) +
                                (batch ? "/batch" : "/single");
      ExpectIdenticalOutcome(traced, untraced, label);
      EXPECT_GT(spans.size(), 0u) << label;
    }
  }
}

TEST(TracePropagationTest, NodeSpansFlowLinkUnderTheQuery) {
  InProcessCluster cluster(4, PlacementKind::kDhtRandom, StoreOptions{}, 7);
  const WorkloadSpec workload = LoadUniform(cluster, 30, 6);
  cluster.FlushAll();

  SpanTracer spans;
  MetricsRegistry registry;
  cluster.AttachTelemetry(&spans, &registry);

  GatherOptions options;
  options.transport = GatherTransport::kMessage;
  options.codec = WireCodecKind::kCompact;
  options.batch = true;
  options.workers_per_node = 2;
  const GatherResult result = cluster.CountByTypeAll(workload, options);
  cluster.AttachTelemetry(nullptr, nullptr);
  ASSERT_EQ(result.failed, 0u);

  std::set<uint64_t> starts;
  std::set<uint64_t> steps;
  std::set<uint64_t> finishes;
  std::set<std::string> step_names;
  for (const Span& span : spans.snapshot()) {
    switch (span.flow_phase) {
      case FlowPhase::kStart:
        EXPECT_NE(span.flow_id, 0u);
        EXPECT_EQ(span.name, "dispatch");
        starts.insert(span.flow_id);
        break;
      case FlowPhase::kStep:
        EXPECT_NE(span.flow_id, 0u);
        steps.insert(span.flow_id);
        step_names.insert(span.name);
        break;
      case FlowPhase::kFinish:
        EXPECT_NE(span.flow_id, 0u);
        EXPECT_EQ(span.name, "reply");
        finishes.insert(span.flow_id);
        break;
      case FlowPhase::kNone:
        break;
    }
  }

  // One flow per sub-query: every dispatch has a terminating reply and
  // node-side work in between, under the same flow id.
  EXPECT_EQ(starts.size(), result.subqueries);
  EXPECT_EQ(starts, finishes);
  for (const uint64_t id : steps) {
    EXPECT_TRUE(starts.count(id) > 0) << "orphan step flow " << id;
  }
  // The node-side stages reached by the propagated context.
  EXPECT_TRUE(step_names.count("store-read") > 0);
  EXPECT_TRUE(step_names.count("encode") > 0);
}

TEST(TracePropagationTest, RetriesAndHedgesKeepParityAndDistinctFlows) {
  InProcessCluster cluster(4, PlacementKind::kDhtRandom, StoreOptions{}, 7,
                           2);
  TypeCounts truth;
  const WorkloadSpec workload = LoadUniform(cluster, 48, 8, &truth);
  cluster.FlushAll();

  FaultConfig config;
  config.seed = 11;
  config.read_error_rate = 0.2;
  config.latency_spike_rate = 0.2;
  config.latency_spike_us = 10.0 * kMillisecond;
  FaultInjector injector(config);
  cluster.AttachFaultInjector(&injector);

  GatherOptions options;
  options.transport = GatherTransport::kMessage;
  options.codec = WireCodecKind::kCompact;
  options.batch = true;
  options.max_attempts = 4;
  options.hedge = true;
  options.hedge_threshold_us = 1.0 * kMillisecond;
  options.workers_per_node = 2;

  cluster.AttachTelemetry(nullptr, nullptr);
  const GatherResult untraced = cluster.CountByTypeAll(workload, options);
  ASSERT_EQ(untraced.totals, truth);
  ASSERT_GT(untraced.retries, 0u);

  SpanTracer spans;
  MetricsRegistry registry;
  cluster.AttachTelemetry(&spans, &registry);
  const GatherResult traced = cluster.CountByTypeAll(workload, options);
  cluster.AttachTelemetry(nullptr, nullptr);

  ExpectIdenticalOutcome(traced, untraced, "retry/hedge");

  // Fault decisions happen at dispatch time, so only the winning attempt
  // of each sub-query ever travels: exactly one flow per sub-query, and
  // retried sub-queries dispatch under their later attempt number (the
  // attempt is part of the propagated context and the flow id).
  std::set<uint64_t> starts;
  std::set<uint64_t> finishes;
  bool saw_retried_attempt = false;
  for (const Span& span : spans.snapshot()) {
    if (span.flow_phase == FlowPhase::kStart) {
      starts.insert(span.flow_id);
      for (const auto& [key, value] : span.attributes) {
        if (key == "attempt" && value != "0") saw_retried_attempt = true;
      }
    } else if (span.flow_phase == FlowPhase::kFinish) {
      finishes.insert(span.flow_id);
    }
  }
  EXPECT_EQ(starts.size(), static_cast<size_t>(traced.subqueries));
  EXPECT_EQ(starts, finishes);
  EXPECT_TRUE(saw_retried_attempt);
}

TEST(TracePropagationTest, DisabledTracerSuppressesNodeSpansViaWireBit) {
  InProcessCluster cluster(3, PlacementKind::kDhtRandom, StoreOptions{}, 7);
  const WorkloadSpec workload = LoadUniform(cluster, 20, 5);
  cluster.FlushAll();

  SpanTracer spans;
  spans.set_enabled(false);
  MetricsRegistry registry;
  cluster.AttachTelemetry(&spans, &registry);

  GatherOptions options;
  options.transport = GatherTransport::kMessage;
  options.codec = WireCodecKind::kCompact;
  options.batch = true;
  const GatherResult result = cluster.CountByTypeAll(workload, options);
  cluster.AttachTelemetry(nullptr, nullptr);

  EXPECT_EQ(result.failed, 0u);
  // A disabled tracer means the wire carries trace_flags = 0, so the
  // nodes do not record worker spans either.
  EXPECT_EQ(spans.size(), 0u);
}

}  // namespace
}  // namespace kvscale
