// Fixture: a textbook lock-order inversion. Alpha::Lead locks its own
// mutex and calls into Beta, whose Lead does the mirror image — the
// analyzer must prove {Alpha::mu_, Beta::mu_} form a cycle. Never
// compiled; parsed by tests/analysis_test.cpp.
#pragma once

class Beta;

class Alpha {
 public:
  void Lead();
  void Grab();

 private:
  Beta* peer_ = nullptr;
  Mutex mu_;
};

class Beta {
 public:
  void Lead();
  void Grab();

 private:
  Alpha* peer_ = nullptr;
  Mutex mu_;
};

/// Waits on one capability while holding a second: the wait releases
/// only wait_mu_, so the thread that would signal blocks on extra_mu_.
class Gamma {
 public:
  void Stall();

 private:
  Mutex wait_mu_;
  Mutex extra_mu_;
  CondVar cv_;
};
