// Fixture bodies for pair.hpp (see there). Never compiled.
#include "pair.hpp"

void Alpha::Lead() {
  MutexLock lock(mu_);
  peer_->Grab();
}

void Alpha::Grab() {
  MutexLock lock(mu_);
}

void Beta::Lead() {
  MutexLock lock(mu_);
  peer_->Grab();
}

void Beta::Grab() {
  MutexLock lock(mu_);
}

void Gamma::Stall() {
  MutexLock outer(wait_mu_);
  MutexLock inner(extra_mu_);
  cv_.Wait(wait_mu_);
}
