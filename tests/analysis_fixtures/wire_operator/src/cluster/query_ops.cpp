// Fixture operator switch with two seeded gaps: kOpScan has no case and
// there is no default arm rejecting unknown ids. Never compiled.
#include "query_ops.hpp"

Status ExecuteSubQuery(QueryOp op) {
  switch (op) {
    case kOpPing:
      return Pong();
  }
  return Status::Ok();
}
