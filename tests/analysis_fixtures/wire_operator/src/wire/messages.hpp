// Fixture: the QueryOp enum gained an operator (kOpScan) and a wrong
// count, but the execution switch and the decode gate never followed.
// Never compiled.
#pragma once

enum QueryOp : uint32_t {
  kOpPing = 0,
  kOpScan = 1,
};

inline constexpr uint32_t kQueryOpCount = 3;
