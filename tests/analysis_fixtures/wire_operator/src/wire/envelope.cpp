// Fixture decode path with a seeded gap: the operator id is decoded
// straight into the sub-query with no IsKnownQueryOp gate. Never
// compiled.
#include "envelope.hpp"

Status DecodeSubQuery(WireReader& r, SubQuery& out) {
  out.op = r.ReadU32();
  return Status::Ok();
}
