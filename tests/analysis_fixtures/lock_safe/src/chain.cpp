// Fixture bodies for chain.hpp (see there). Never compiled.
#include "chain.hpp"

void Back::Touch() {
  MutexLock lock(mu_);
}

void Front::Lead() {
  MutexLock lock(mu_);
  back_->Touch();
  RefreshLocked();
}

void Front::Refresh() {
  MutexLock lock(mu_);
  RefreshLocked();
}

void Front::RefreshLocked() {
  back_->Touch();
}
