// Fixture: the same two-class shape as lock_deadlock, but the lock
// order is a strict hierarchy (Front::mu_ before Back::mu_, never the
// reverse), plus a KV_REQUIRES helper that must NOT count as a
// re-acquisition. The analyzer must report nothing. Never compiled.
#pragma once

class Back {
 public:
  void Touch();

 private:
  Mutex mu_;
};

class Front {
 public:
  void Lead();
  void Refresh();

 private:
  void RefreshLocked() KV_REQUIRES(mu_);

  Back* back_ = nullptr;
  Mutex mu_;
};
