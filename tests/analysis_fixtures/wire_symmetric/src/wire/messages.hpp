// Fixture: one wire message whose Visit is perfectly symmetric with its
// declaration (every member visited once, in order, under its own
// name), and a QueryOp enum whose count matches. The wire-drift pass
// must report nothing. Never compiled.
#pragma once

struct PingRequest {
  static constexpr std::string_view kTypeName = "ping_request";

  uint32_t sequence = 0;
  std::string payload;

  template <typename V>
  void Visit(V& v) {
    v.Field("sequence", sequence);
    v.Field("payload", payload);
  }
};

enum QueryOp : uint32_t {
  kOpPing = 0,
};

inline constexpr uint32_t kQueryOpCount = 1;
