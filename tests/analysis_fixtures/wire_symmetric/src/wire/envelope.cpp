// Fixture decode gate: the sub-query decode path rejects unknown
// operator ids before they reach execution. Never compiled.
#include "envelope.hpp"

Status DecodeSubQuery(WireReader& r, SubQuery& out) {
  out.op = r.ReadU32();
  if (!IsKnownQueryOp(out.op)) {
    return Status::Corruption("unknown query op");
  }
  return Status::Ok();
}
