// Fixture codecs: the four Field-overload sets (tagged/compact x
// writer/reader) all support the same two types, and the tagged pair
// agrees on every FieldTag. Never compiled.
#pragma once

class TaggedCodec {
 public:
  struct Writer {
    void Field(std::string_view name, uint32_t& v) {
      Head(name, FieldTag::kU32);
      out.WriteU32(v);
    }
    void Field(std::string_view name, std::string& v) {
      Head(name, FieldTag::kString);
      out.WriteString(v);
    }
  };

  struct Reader {
    void Field(std::string_view name, uint32_t& v) {
      Head(name, FieldTag::kU32);
      v = in.ReadU32();
    }
    void Field(std::string_view name, std::string& v) {
      Head(name, FieldTag::kString);
      v = in.ReadString();
    }
  };
};

class CompactCodec {
 public:
  struct Writer {
    void Field(std::string_view, uint32_t& v) { out.WriteVarint(v); }
    void Field(std::string_view, std::string& v) { out.WriteString(v); }
  };

  struct Reader {
    void Field(std::string_view, uint32_t& v) { v = in.ReadVarint(); }
    void Field(std::string_view, std::string& v) { v = in.ReadString(); }
  };
};
