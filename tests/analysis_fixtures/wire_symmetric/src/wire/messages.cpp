// Fixture registration: every message struct is registered. Never
// compiled.
#include "messages.hpp"

void RegisterClusterMessages(CompactCodec& codec) {
  codec.Register<PingRequest>();
}
