// Fixture operator switch: every QueryOp enumerator has a case and the
// default arm rejects unknown ids. Never compiled.
#include "query_ops.hpp"

Status ExecuteSubQuery(QueryOp op) {
  switch (op) {
    case kOpPing:
      return Pong();
    default:
      return Status::Corruption("unknown operator");
  }
}
