// Fixture codecs with two seeded asymmetries: CompactCodec::Reader has
// no std::string overload (encodes on one side, cannot decode on the
// other), and the tagged pair disagrees on uint32_t's FieldTag. Never
// compiled.
#pragma once

class TaggedCodec {
 public:
  struct Writer {
    void Field(std::string_view name, uint32_t& v) {
      Head(name, FieldTag::kU32);
      out.WriteU32(v);
    }
    void Field(std::string_view name, std::string& v) {
      Head(name, FieldTag::kString);
      out.WriteString(v);
    }
  };

  struct Reader {
    void Field(std::string_view name, uint32_t& v) {
      Head(name, FieldTag::kU64);
      v = in.ReadU32();
    }
    void Field(std::string_view name, std::string& v) {
      Head(name, FieldTag::kString);
      v = in.ReadString();
    }
  };
};

class CompactCodec {
 public:
  struct Writer {
    void Field(std::string_view, uint32_t& v) { out.WriteVarint(v); }
    void Field(std::string_view, std::string& v) { out.WriteString(v); }
  };

  struct Reader {
    void Field(std::string_view, uint32_t& v) { v = in.ReadVarint(); }
  };
};
