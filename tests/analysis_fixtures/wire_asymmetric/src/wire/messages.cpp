// Fixture registration with a seeded gap: OrderRequest is never
// registered with the compact codec. Never compiled.
#include "messages.hpp"

void RegisterClusterMessages(CompactCodec& codec) {
  codec.Register<DriftRequest>();
}
