// Fixture: every way a message's Visit can drift from its declaration.
// DriftRequest skips a member, visits one twice, references a ghost,
// mislabels another, and declares an unencodable type; OrderRequest
// visits in reverse declaration order. Never compiled.
#pragma once

struct DriftRequest {
  static constexpr std::string_view kTypeName = "drift_request";

  uint32_t sequence = 0;
  std::string payload;
  uint64_t skipped = 0;
  uint64_t renamed_member = 0;
  std::map<uint32_t, uint32_t> weird;

  template <typename V>
  void Visit(V& v) {
    v.Field("sequence", sequence);
    v.Field("payload", payload);
    v.Field("payload", payload);
    v.Field("ghost", ghost);
    v.Field("renamed", renamed_member);
  }
};

struct OrderRequest {
  static constexpr std::string_view kTypeName = "order_request";

  uint32_t first = 0;
  uint32_t second = 0;

  template <typename V>
  void Visit(V& v) {
    v.Field("second", second);
    v.Field("first", first);
  }
};
