// Fixture: three seeded metric-registry defects — a near-collision pair
// (one trailing 's'), one name registered as two instrument kinds, and
// one undocumented name — plus a documented dynamic family that must
// stay clean. Never compiled.
#include "instruments.hpp"

void TouchInstruments(MetricsRegistry& registry, const std::string& label) {
  registry.GetCounter("fixture.read.errors").Increment();
  registry.GetCounter("fixture.read.error").Increment();
  registry.GetGauge("fixture.queue.depth").Set(1.0);
  registry.GetHistogram("fixture.queue.depth").Record(2.0);
  registry.GetCounter("fixture.undocumented.total").Increment();
  registry.GetHistogram("fixture.stage." + label).Record(3.0);
}
