// Drives the kvscale_lint rule engine (tools/lint/lint_rules.hpp)
// against the fixtures in tests/lint_fixtures/. Each fixture is linted
// under a synthetic repo-relative path because rule scoping keys off the
// path prefix.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint_rules.hpp"

namespace kvscale::lint {
namespace {

namespace fs = std::filesystem;

std::string ReadFixture(const std::string& name) {
  const fs::path path = fs::path(KVSCALE_LINT_FIXTURE_DIR) / name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> RulesOf(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const Finding& f : findings) rules.push_back(f.rule);
  return rules;
}

std::vector<int> LinesOf(const std::vector<Finding>& findings) {
  std::vector<int> lines;
  lines.reserve(findings.size());
  for (const Finding& f : findings) lines.push_back(f.line);
  return lines;
}

TEST(LintCatalogueTest, SixRulesEachDescribed) {
  const std::vector<std::string_view> ids = RuleIds();
  ASSERT_EQ(ids.size(), 6u);
  for (std::string_view id : ids) {
    EXPECT_FALSE(RuleDescription(id).empty()) << id;
  }
  EXPECT_TRUE(RuleDescription("no-such-rule").empty());
}

TEST(SimWallclockRuleTest, FlagsWallClockAndRandInSimCode) {
  const auto findings = LintFileContent(
      "src/sim/fixture.cpp", ReadFixture("sim_wallclock_violating.cpp"));
  EXPECT_EQ(RulesOf(findings),
            (std::vector<std::string>{"sim-wallclock", "sim-wallclock"}));
  EXPECT_EQ(LinesOf(findings), (std::vector<int>{8, 12}));
}

TEST(SimWallclockRuleTest, ScopedToSimModelClusterOnly) {
  const std::string content = ReadFixture("sim_wallclock_violating.cpp");
  EXPECT_TRUE(LintFileContent("src/store/fixture.cpp", content).empty());
  EXPECT_TRUE(LintFileContent("bench/fixture.cpp", content).empty());
  EXPECT_FALSE(LintFileContent("src/model/fixture.cpp", content).empty());
  EXPECT_FALSE(LintFileContent("src/cluster/fixture.cpp", content).empty());
}

TEST(SimWallclockRuleTest, CommentsStringsAndSubstringsAreClean) {
  const auto findings = LintFileContent(
      "src/sim/fixture.cpp", ReadFixture("sim_wallclock_clean.cpp"));
  EXPECT_TRUE(findings.empty()) << FormatFinding(findings.front());
}

TEST(DiscardedStatusRuleTest, FlagsVoidCastOfCallResult) {
  const auto findings = LintFileContent(
      "src/store/fixture.cpp", ReadFixture("discarded_status_violating.cpp"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "discarded-status");
  EXPECT_EQ(findings[0].line, 9);
}

TEST(DiscardedStatusRuleTest, VariableDiscardsAndParameterListsAreClean) {
  const auto findings = LintFileContent(
      "src/store/fixture.cpp", ReadFixture("discarded_status_clean.cpp"));
  EXPECT_TRUE(findings.empty()) << FormatFinding(findings.front());
}

TEST(StdoutInLibRuleTest, FlagsCoutAndPrintfUnderSrc) {
  const auto findings = LintFileContent(
      "src/net/fixture.cpp", ReadFixture("stdout_in_lib_violating.cpp"));
  EXPECT_EQ(RulesOf(findings),
            (std::vector<std::string>{"stdout-in-lib", "stdout-in-lib"}));
  EXPECT_EQ(LinesOf(findings), (std::vector<int>{8, 9}));
}

TEST(StdoutInLibRuleTest, BenchAndToolsAreExempt) {
  const std::string content = ReadFixture("stdout_in_lib_violating.cpp");
  EXPECT_TRUE(LintFileContent("bench/fixture.cpp", content).empty());
  EXPECT_TRUE(LintFileContent("tools/fixture.cpp", content).empty());
}

TEST(StdoutInLibRuleTest, StderrAndSnprintfAreClean) {
  const auto findings = LintFileContent(
      "src/net/fixture.cpp", ReadFixture("stdout_in_lib_clean.cpp"));
  EXPECT_TRUE(findings.empty()) << FormatFinding(findings.front());
}

TEST(RawMutexRuleTest, FlagsPrimitivesAndHeaders) {
  const auto findings = LintFileContent(
      "src/store/fixture.cpp", ReadFixture("raw_mutex_violating.cpp"));
  EXPECT_EQ(RulesOf(findings),
            (std::vector<std::string>{"raw-mutex", "raw-mutex", "raw-mutex"}));
  EXPECT_EQ(LinesOf(findings), (std::vector<int>{3, 10, 15}));
}

TEST(RawMutexRuleTest, AnnotatedWrappersAreClean) {
  const auto findings = LintFileContent(
      "src/store/fixture.cpp", ReadFixture("raw_mutex_clean.cpp"));
  EXPECT_TRUE(findings.empty()) << FormatFinding(findings.front());
}

TEST(IncludeOrderRuleTest, OwnHeaderMustComeFirst) {
  const auto findings = LintFileContent(
      "src/store/order.cpp", ReadFixture("include_order_violating.cpp"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-order");
  EXPECT_EQ(findings[0].line, 5);
}

TEST(IncludeOrderRuleTest, CleanOrderAndNonSrcFilesPass) {
  EXPECT_TRUE(LintFileContent("src/store/order.cpp",
                              ReadFixture("include_order_clean.cpp"))
                  .empty());
  // Outside src/ the rule does not apply at all.
  EXPECT_TRUE(LintFileContent("tests/order.cpp",
                              ReadFixture("include_order_violating.cpp"))
                  .empty());
}

TEST(MetricNameRuleTest, FlagsFlatAndMalformedNames) {
  const auto findings = LintFileContent(
      "src/telemetry/fixture.cpp", ReadFixture("metric_name_violating.cpp"));
  EXPECT_EQ(RulesOf(findings),
            (std::vector<std::string>{"metric-name", "metric-name",
                                      "metric-name", "metric-name",
                                      "metric-name"}));
  EXPECT_EQ(LinesOf(findings), (std::vector<int>{7, 8, 9, 10, 11}));
}

TEST(MetricNameRuleTest, NamespacedConcatenatedDynamicAndAllowedAreClean) {
  const auto findings = LintFileContent(
      "src/telemetry/fixture.cpp", ReadFixture("metric_name_clean.cpp"));
  EXPECT_TRUE(findings.empty()) << FormatFinding(findings.front());
}

TEST(MetricNameRuleTest, AppliesOutsideSrcToo) {
  // Tests and benches register metrics into the same dashboards, so the
  // namespace rule is tree-wide (unlike stdout-in-lib).
  const auto findings = LintFileContent(
      "tests/fixture.cpp", ReadFixture("metric_name_violating.cpp"));
  EXPECT_EQ(findings.size(), 5u);
}

TEST(SuppressionTest, JustifiedAllowsSilenceFindings) {
  const auto findings = LintFileContent("src/sim/fixture.cpp",
                                        ReadFixture("suppressed.cpp"));
  EXPECT_TRUE(findings.empty()) << FormatFinding(findings.front());
}

TEST(SuppressionTest, DefectiveMarkersAreThemselvesFindings) {
  const auto findings = LintFileContent("src/sim/fixture.cpp",
                                        ReadFixture("bad_suppression.cpp"));
  // Each defective marker is reported AND fails to suppress the
  // violation on the next line.
  EXPECT_EQ(RulesOf(findings),
            (std::vector<std::string>{"lint-suppression", "sim-wallclock",
                                      "lint-suppression", "sim-wallclock",
                                      "lint-suppression", "sim-wallclock"}));
  EXPECT_EQ(LinesOf(findings), (std::vector<int>{9, 10, 15, 16, 21, 22}));
}

TEST(SuppressionTest, StaleMarkersAreReported) {
  const auto findings = LintFileContent("src/sim/fixture.cpp",
                                        ReadFixture("stale_suppression.cpp"));
  // Three dead markers (line allow, trailing allow, allow-file) are
  // stale; the live stdout-in-lib marker at the bottom is not.
  EXPECT_EQ(RulesOf(findings),
            (std::vector<std::string>{"stale-suppression",
                                      "stale-suppression",
                                      "stale-suppression"}));
  EXPECT_EQ(LinesOf(findings), (std::vector<int>{8, 12, 15}));
  for (const Finding& f : findings) {
    EXPECT_NE(f.message.find("remove the stale"), std::string::npos)
        << FormatFinding(f);
  }
}

TEST(SuppressionTest, MarkerInsideStringLiteralIsInert) {
  // The marker text lives in a string literal, so it must neither
  // suppress the violation on the next line nor count as a marker.
  const std::string content =
      "const char* s = \"// kvscale-lint: allow(sim-wallclock) x\";\n"
      "const auto t = std::chrono::steady_clock::now();\n";
  const auto findings = LintFileContent("src/sim/fixture.cpp", content);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "sim-wallclock");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintTreeTest, WalksSourceDirsAndSkipsFixtures) {
  const fs::path root = fs::path(::testing::TempDir()) / "lint_tree_root";
  fs::create_directories(root / "src" / "sim");
  fs::create_directories(root / "tests" / "lint_fixtures");
  const std::string bad =
      "const auto t = std::chrono::steady_clock::now();\n";
  std::ofstream(root / "src" / "sim" / "bad.cpp") << bad;
  std::ofstream(root / "tests" / "lint_fixtures" / "bad.cpp") << bad;

  const auto findings = LintTree(root);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/sim/bad.cpp");
  EXPECT_EQ(findings[0].rule, "sim-wallclock");
  fs::remove_all(root);
}

TEST(FormatFindingTest, RendersFileLineRuleMessage) {
  const Finding finding{"src/a.cpp", 7, "raw-mutex", "no"};
  EXPECT_EQ(FormatFinding(finding), "src/a.cpp:7: [raw-mutex] no");
}

}  // namespace
}  // namespace kvscale::lint
