// Tests for the query-stream simulator.
#include <gtest/gtest.h>

#include "cluster/stream_sim.hpp"

namespace kvscale {
namespace {

StreamConfig FastConfig() {
  StreamConfig config;
  config.base.nodes = 8;
  config.base.seed = 77;
  config.base.gc.quadratic_us_per_element2 = 0.0;
  config.elements_per_query = 50000;
  config.keys_per_query = 200;
  config.queries = 30;
  return config;
}

TEST(StreamSimTest, AllQueriesCompleteWithPositiveLatency) {
  StreamConfig config = FastConfig();
  config.arrival_qps = 2.0;
  const auto result = RunQueryStream(config);
  EXPECT_EQ(result.completed, 30u);
  ASSERT_EQ(result.latencies.size(), 30u);
  for (Micros latency : result.latencies) EXPECT_GT(latency, 0.0);
  EXPECT_LE(result.latency_p50, result.latency_p90);
  EXPECT_LE(result.latency_p90, result.latency_p99);
  EXPECT_GT(result.makespan, 0.0);
}

TEST(StreamSimTest, DeterministicForSameSeed) {
  StreamConfig config = FastConfig();
  config.arrival_qps = 3.0;
  const auto a = RunQueryStream(config);
  const auto b = RunQueryStream(config);
  EXPECT_EQ(a.latencies, b.latencies);
}

TEST(StreamSimTest, LightLoadLatencyMatchesSingleQueryTime) {
  // Far below capacity, queries rarely overlap: latency ~ one isolated
  // query's makespan.
  StreamConfig config = FastConfig();
  const double capacity = EstimatedCapacityQps(config);
  config.arrival_qps = capacity * 0.05;
  const auto result = RunQueryStream(config);
  const Micros isolated = kSecond / capacity;
  EXPECT_NEAR(result.latency_p50 / isolated, 1.0, 0.5);
}

TEST(StreamSimTest, SaturationKneeRaisesTailLatency) {
  StreamConfig config = FastConfig();
  const double capacity = EstimatedCapacityQps(config);

  config.arrival_qps = capacity * 0.3;
  const auto light = RunQueryStream(config);
  config.arrival_qps = capacity * 1.5;  // overloaded
  const auto heavy = RunQueryStream(config);

  // Overload: queries queue behind each other and the tail explodes.
  EXPECT_GT(heavy.latency_p99, light.latency_p99 * 2.0);
  EXPECT_GT(heavy.latency_mean, light.latency_mean);
  // Achieved throughput saturates near capacity despite higher offer.
  EXPECT_LT(heavy.achieved_qps, capacity * 1.3);
}

TEST(StreamSimTest, MoreNodesSustainHigherLoad) {
  StreamConfig small = FastConfig();
  small.base.nodes = 4;
  StreamConfig large = FastConfig();
  large.base.nodes = 16;
  const double rate = EstimatedCapacityQps(small) * 0.9;
  small.arrival_qps = rate;
  large.arrival_qps = rate;  // same offered load, 4x the hardware
  const auto a = RunQueryStream(small);
  const auto b = RunQueryStream(large);
  EXPECT_LT(b.latency_p90, a.latency_p90);
}

TEST(StreamSimTest, MetricsGaugesTrackTheRun) {
  StreamConfig config = FastConfig();
  config.arrival_qps = EstimatedCapacityQps(config) * 1.2;
  config.metrics_interval = 10.0 * kMillisecond;
  const auto result = RunQueryStream(config);
  EXPECT_FALSE(result.metrics_report.empty());
  EXPECT_NE(result.metrics_report.find("db active"), std::string::npos);
  // Overloaded run: the master queue was observed non-empty at least once.
  EXPECT_GT(result.peak_master_queue, 0.0);
  // Disabled by default: no report.
  config.metrics_interval = 0.0;
  EXPECT_TRUE(RunQueryStream(config).metrics_report.empty());
}

TEST(StreamSimTest, CapacityEstimateIsPlausible) {
  StreamConfig config = FastConfig();
  const double capacity = EstimatedCapacityQps(config);
  EXPECT_GT(capacity, 0.1);
  EXPECT_LT(capacity, 10000.0);
}

}  // namespace
}  // namespace kvscale
