// Quickstart: the five-minute tour of the kvscale public API.
//
//  1. Store data in the wide-column engine and read it back.
//  2. Predict a distributed query's time with the analytical model.
//  3. Find the optimal partition count for your cluster.
//  4. Cross-check the prediction against the cluster simulator.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "cluster/cluster_sim.hpp"
#include "model/optimizer.hpp"
#include "model/query_model.hpp"
#include "store/local_store.hpp"

using namespace kvscale;

int main() {
  // -- 1. The storage engine ------------------------------------------------
  LocalStore store;
  Table& table = store.GetOrCreateTable("quickstart");
  for (uint64_t i = 0; i < 1000; ++i) {
    Column column;
    column.clustering = i;          // sorted within the partition
    column.type_id = i % 4;         // the label count-by-type aggregates
    column.payload = MakePayload(/*seed=*/7, i, /*payload_bytes=*/43);
    table.Put("sensor:42", std::move(column));
  }
  table.Flush();  // memtable -> immutable segment (bloom + block index)

  auto counts = table.CountByType("sensor:42");
  std::printf("stored 1000 columns; count-by-type:");
  for (const auto& [type, count] : counts.value()) {
    std::printf(" t%u=%llu", type, static_cast<unsigned long long>(count));
  }
  std::printf("\n\n");

  // -- 2. The analytical model (Formulas 1-8) -------------------------------
  // Paper-calibrated database model + a Kryo-grade master (19 us/message).
  const QueryModel model(DbModel{},
                         MasterModel::FromSerializer(KryoLikeProfile()));
  const uint64_t elements = 1000000;
  for (uint64_t keys : {100ULL, 1000ULL, 10000ULL}) {
    const QueryPrediction p = model.Predict(elements, keys, /*nodes=*/16);
    std::printf(
        "1M elements in %5llu partitions on 16 nodes -> %s "
        "(bottleneck: %s, max-loaded node holds %.1f partitions)\n",
        static_cast<unsigned long long>(keys),
        FormatMicros(p.total).c_str(), p.BottleneckName().c_str(),
        p.key_max);
  }

  // -- 3. The optimizer (Figure 9) ------------------------------------------
  PartitionOptimizer optimizer(model);
  const OptimalPartitioning best = optimizer.Optimize(elements, 16);
  std::printf(
      "\noptimal partitioning for 16 nodes: %llu partitions (%0.f "
      "elements each) -> %s\n",
      static_cast<unsigned long long>(best.keys), best.prediction.keysize,
      FormatMicros(best.prediction.total).c_str());

  // -- 4. The cluster simulator ---------------------------------------------
  ClusterConfig config;
  config.nodes = 16;
  const QueryRunResult run =
      RunDistributedQuery(config, UniformWorkload(elements, best.keys));
  std::printf(
      "simulated the same query: %s makespan, %.0f%% request imbalance, "
      "%llu messages\n",
      FormatMicros(run.makespan).c_str(), run.RequestImbalance() * 100,
      static_cast<unsigned long long>(run.network_messages));
  std::printf("model vs simulator: %.0f%% apart\n",
              (run.makespan / best.prediction.total - 1.0) * 100.0);
  return 0;
}
