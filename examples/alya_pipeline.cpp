// The paper's case study, end to end (Section III / V):
//
//  1. generate a synthetic Alya bronchi-inhalation particle cloud;
//  2. index it with the D8tree (denormalized octree over KV partitions);
//  3. shard the cubes over a real in-process cluster and run the
//     count-by-type aggregation against real bytes;
//  4. select coarse/medium/fine workloads in the pre-query phase and
//     compare their simulated scaling, like Figures 1 and 5.
//
// Run: ./build/examples/alya_pipeline [--particles=200000] [--nodes=8]
#include <cstdio>

#include "cluster/cluster_sim.hpp"
#include "cluster/in_process_cluster.hpp"
#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/table_printer.hpp"
#include "workload/alya.hpp"
#include "workload/d8tree.hpp"
#include "workload/granularity.hpp"

using namespace kvscale;

int main(int argc, char** argv) {
  int64_t particles = 200000;
  int64_t nodes = 8;
  int64_t level = 5;
  CliFlags flags;
  flags.Add("particles", &particles, "particles to simulate");
  flags.Add("nodes", &nodes, "cluster size");
  flags.Add("level", &level, "D8tree level to shard (<= 8)");
  if (!flags.Parse(argc, argv)) return 1;

  // -- 1. Dataset ------------------------------------------------------------
  AlyaParams params;
  params.particles = static_cast<uint64_t>(particles);
  std::printf("generating %lld particles in the bronchi geometry...\n",
              static_cast<long long>(particles));
  const auto cloud = GenerateAlyaParticles(params);

  // -- 2. D8tree index ---------------------------------------------------------
  const auto max_level = static_cast<uint32_t>(level);
  const D8Tree tree(cloud, max_level);
  std::printf("D8tree: %llu entries across levels 0..%u "
              "(denormalization factor %.1fx)\n",
              static_cast<unsigned long long>(tree.TotalEntries()), max_level,
              static_cast<double>(tree.TotalEntries()) /
                  static_cast<double>(cloud.size()));
  for (uint32_t l = 0; l <= max_level; ++l) {
    std::printf("  level %u: %zu cubes\n", l, tree.CubeCount(l));
  }

  // -- 3. Real sharded aggregation -------------------------------------------
  std::printf("\nsharding level-%u cubes over %lld nodes and aggregating "
              "for real...\n", max_level, static_cast<long long>(nodes));
  InProcessCluster cluster(static_cast<uint32_t>(nodes),
                           PlacementKind::kDhtRandom, StoreOptions{}, 11);
  WorkloadSpec all_cubes;
  all_cubes.table = "alya.cubes";
  for (const auto& [morton, count] : tree.CubeSizes(max_level)) {
    const std::string key = CubeKey(max_level, morton);
    for (uint64_t id : tree.CubeParticles(max_level, morton)) {
      const Particle& p = cloud[id];
      Column column;
      column.clustering = p.id;
      column.type_id = p.type;
      column.payload = MakePayload(morton, p.id, kParticlePayloadBytes);
      KV_CHECK(cluster.Put(all_cubes.table, key, std::move(column)).ok());
    }
    all_cubes.partitions.push_back(PartitionRef{key, count});
  }
  cluster.FlushAll();

  const GatherResult gathered = cluster.CountByTypeAll(all_cubes);
  uint64_t total = 0;
  std::printf("count-by-type over %zu cubes:", all_cubes.partitions.size());
  for (const auto& [type, count] : gathered.totals) {
    std::printf(" t%u=%llu", type, static_cast<unsigned long long>(count));
    total += count;
  }
  std::printf("\n=> %llu elements aggregated (%llu expected), %llu missing "
              "partitions\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(cloud.size()),
              static_cast<unsigned long long>(gathered.partitions_missing));

  TablePrinter storage({"node", "requests", "blocks decoded", "cache hits"});
  for (uint32_t n = 0; n < cluster.node_count(); ++n) {
    storage.AddRow({TablePrinter::Cell(static_cast<int64_t>(n)),
                    TablePrinter::Cell(gathered.requests_per_node[n]),
                    TablePrinter::Cell(
                        gathered.probes_per_node[n].blocks_decoded),
                    TablePrinter::Cell(
                        gathered.probes_per_node[n].blocks_from_cache)});
  }
  storage.Print();

  // -- 4. Pre-query phase + simulated scaling ---------------------------------
  std::printf("\npre-query phase: selecting cubes whose size matches each "
              "workload (tolerance 50%%)...\n");
  Rng rng(3);
  TablePrinter scaling({"workload", "cubes", "elements", "1 node", "4 nodes",
                        std::to_string(nodes) + " nodes"});
  for (uint32_t target : {10000u, 1000u, 100u}) {
    const WorkloadSpec workload = WorkloadFromD8Tree(
        tree, target, cloud.size() / 2, 0.5, rng, all_cubes.table);
    if (workload.partitions.size() < 4) {
      std::printf("  (no cubes near %u elements in this dataset)\n", target);
      continue;
    }
    std::vector<std::string> row = {
        "~" + std::to_string(target) + " el/cube",
        TablePrinter::Cell(
            static_cast<uint64_t>(workload.partitions.size())),
        TablePrinter::Cell(workload.TotalElements())};
    for (uint32_t n : {1u, 4u, static_cast<uint32_t>(nodes)}) {
      ClusterConfig config;
      config.nodes = n;
      row.push_back(
          FormatMicros(RunDistributedQuery(config, workload).makespan));
    }
    scaling.AddRow(std::move(row));
  }
  scaling.Print();
  std::printf(
      "\nthe D8tree lets the *same* query read coarse or fine cubes — the "
      "choice that\nSection V shows dominates scalability.\n");

  // -- 5. Spatial range query (what the D8tree exists for) --------------------
  std::printf(
      "\nspatial query: particles in the lower-left lung region "
      "[0.2,0.6)x[0.1,0.5)x[0.3,0.7)\n");
  D8Tree::Box region{0.2f, 0.1f, 0.3f, 0.6f, 0.5f, 0.7f};
  TablePrinter spatial({"target cube size", "plan cubes", "interior",
                        "boundary", "simulated time (" +
                            std::to_string(nodes) + " nodes)"});
  const auto in_region = tree.BoxQueryBruteForce(region);
  for (uint32_t target : {5000u, 500u, 50u}) {
    const auto plan = tree.BoxQueryPlan(region, target);
    uint64_t interior = 0;
    WorkloadSpec plan_workload;
    plan_workload.table = all_cubes.table;
    for (const auto& entry : plan) {
      interior += entry.fully_inside;
      plan_workload.partitions.push_back(PartitionRef{
          CubeKey(entry.cube.level, entry.cube.morton), entry.cube.elements});
    }
    ClusterConfig config;
    config.nodes = static_cast<uint32_t>(nodes);
    const auto run = RunDistributedQuery(config, plan_workload);
    spatial.AddRow({TablePrinter::Cell(static_cast<int64_t>(target)),
                    TablePrinter::Cell(static_cast<uint64_t>(plan.size())),
                    TablePrinter::Cell(interior),
                    TablePrinter::Cell(
                        static_cast<uint64_t>(plan.size()) - interior),
                    FormatMicros(run.makespan)});
    // Correctness: the plan covers exactly the region's particles.
    if (tree.BoxQueryExecute(region, target) != in_region) {
      std::fprintf(stderr, "box query mismatch!\n");
      return 1;
    }
  }
  spatial.Print();
  std::printf(
      "%zu particles in the region; every plan returns exactly that set — "
      "the\ngranularity knob changes *cost*, never the answer.\n",
      in_region.size());
  return 0;
}
