// The Section II design exercise: indexing every phone number on Earth.
//
// Walks the paper's worked example with the library: three candidate data
// models (partition by country / by city / by user), their Formula 1 key
// imbalance, the hidden Zipf-load problem of the by-city model, and what
// each choice means for an actual query via the simulator.
//
// Run: ./build/examples/phonebook_design [--nodes=10]
#include <cstdio>

#include "cluster/cluster_sim.hpp"
#include "common/cli.hpp"
#include "common/table_printer.hpp"
#include "model/balls_into_bins.hpp"
#include "workload/phonebook.hpp"

using namespace kvscale;

int main(int argc, char** argv) {
  int64_t nodes = 10;
  CliFlags flags;
  flags.Add("nodes", &nodes, "cluster size");
  if (!flags.Parse(argc, argv)) return 1;

  std::printf("designing a phonebook index for %lld nodes "
              "(the paper's Section II exercise)\n\n",
              static_cast<long long>(nodes));

  // -- Key-count imbalance (Formula 1) ---------------------------------------
  Rng rng(5);
  TablePrinter table({"data model", "keys", "key imbalance (F1)",
                      "load imbalance (simulated)"});
  for (const auto& model : PhonebookModels()) {
    const double f1 = PhonebookKeyImbalance(model, nodes);
    const double load = PhonebookLoadImbalance(
        model, static_cast<uint64_t>(nodes), 10000000, 20000, 30, rng);
    table.AddRow({model.name, TablePrinter::Cell(model.keys),
                  FormatPercent(f1), FormatPercent(load)});
  }
  table.Print();

  std::printf(
      "\nby-country: 200 keys cannot spread over %lld nodes — ~34%% extra "
      "load on the\n  hottest node at 10 nodes, and it grows with the "
      "cluster.\nby-city: a million keys spread fine (0.5%%), but half the "
      "load lives in the 500\n  biggest cities, so the *load* imbalance "
      "stays in the tens of percent.\nby-user: billions of keys, "
      "imbalance negligible — but now a per-country query\n  must read "
      "millions of partitions.\n\n",
      static_cast<long long>(nodes));

  // -- What it means for a query (the trade-off of Section V) ----------------
  // A "count subscribers per country" query under each model, simulated.
  std::printf("query: aggregate 1M records on %lld nodes under each "
              "model's granularity\n",
              static_cast<long long>(nodes));
  TablePrinter query_table({"data model", "partitions touched", "makespan",
                            "master share"});
  struct Case {
    const char* name;
    uint64_t keys;
  };
  for (const Case& c : {Case{"by-country (200 partitions)", 200},
                        Case{"by-city (10k partitions)", 10000},
                        Case{"by-user (1 per record)", 1000000}}) {
    ClusterConfig config;
    config.nodes = static_cast<uint32_t>(nodes);
    const auto run =
        RunDistributedQuery(config, UniformWorkload(1000000, c.keys));
    query_table.AddRow(
        {c.name, TablePrinter::Cell(c.keys), FormatMicros(run.makespan),
         FormatPercent(run.master_issue_done / run.makespan)});
  }
  query_table.Print();

  std::printf(
      "\nno one-size-fits-all: the by-user layout balances perfectly but "
      "drowns the\nmaster in messages; by-country starves all but a few "
      "nodes. The model's job is\nfinding the partitioning in between — "
      "see examples/capacity_planner.\n");
  return 0;
}
