// Capacity planner: the model as a design tool (Sections VI-VII).
//
// Given a dataset size, a response-time SLA and a hardware description
// (per-message master cost, storage tier), answer the questions the paper
// poses in its introduction:
//   - how should I partition the data?
//   - how many nodes do I need — and will adding nodes keep helping?
//   - when does a single master stop scaling (master-slave vs P2P)?
//
// Run: ./build/examples/capacity_planner --elements=1000000 --sla-ms=500
#include <cstdio>

#include "common/cli.hpp"
#include "common/table_printer.hpp"
#include "model/architecture.hpp"
#include "model/optimizer.hpp"

using namespace kvscale;

int main(int argc, char** argv) {
  int64_t elements = 1000000;
  double sla_ms = 500.0;
  double t_msg_us = 19.0;
  std::string device_name = "dram";
  int64_t max_nodes = 256;
  CliFlags flags;
  flags.Add("elements", &elements, "elements the query must aggregate");
  flags.Add("sla-ms", &sla_ms, "target query latency in milliseconds");
  flags.Add("t-msg-us", &t_msg_us, "master cost per message (us)");
  flags.Add("device", &device_name, "working-set tier: dram|hbm|nvm|ssd|hdd");
  flags.Add("max-nodes", &max_nodes, "largest cluster considered");
  if (!flags.Parse(argc, argv)) return 1;

  DeviceModel device = DramDevice();
  if (device_name == "hbm") device = HbmDevice();
  else if (device_name == "nvm") device = NvmDevice();
  else if (device_name == "ssd") device = SataSsdDevice();
  else if (device_name == "hdd") device = HddDevice();
  else if (device_name != "dram") {
    std::fprintf(stderr, "unknown device '%s'\n", device_name.c_str());
    return 1;
  }

  MasterModel::Params master_params;
  master_params.time_per_message = t_msg_us;
  master_params.time_per_result = t_msg_us * 0.25;
  const QueryModel model =
      QueryModel(DbModel{}, MasterModel(master_params)).WithDevice(device);
  PartitionOptimizer optimizer(model);

  std::printf("capacity plan for %lld elements, %.0f ms SLA, %.0f us/msg "
              "master, %s working set\n\n",
              static_cast<long long>(elements), sla_ms, t_msg_us,
              device.name.c_str());

  // Scaling table at per-node-count optimal partitioning.
  TablePrinter table({"nodes", "optimal partitions", "predicted time",
                      "bottleneck", "meets SLA"});
  uint32_t nodes_needed = 0;
  Micros best_time = -1;
  uint32_t best_nodes = 0;
  for (uint32_t n = 1; n <= static_cast<uint32_t>(max_nodes); n *= 2) {
    const auto opt = optimizer.Optimize(static_cast<uint64_t>(elements), n);
    const bool meets = opt.prediction.total <= sla_ms * kMillisecond;
    if (meets && nodes_needed == 0) nodes_needed = n;
    if (best_time < 0 || opt.prediction.total < best_time) {
      best_time = opt.prediction.total;
      best_nodes = n;
    }
    table.AddRow({TablePrinter::Cell(static_cast<int64_t>(n)),
                  TablePrinter::Cell(opt.keys),
                  FormatMicros(opt.prediction.total),
                  opt.prediction.BottleneckName(), meets ? "yes" : "no"});
  }
  table.Print();

  if (nodes_needed > 0) {
    const auto opt =
        optimizer.Optimize(static_cast<uint64_t>(elements), nodes_needed);
    std::printf(
        "\nrecommendation: %u nodes, %llu partitions of ~%.0f elements -> "
        "%s (SLA %.0f ms)\n",
        nodes_needed, static_cast<unsigned long long>(opt.keys),
        opt.prediction.keysize, FormatMicros(opt.prediction.total).c_str(),
        sla_ms);
  } else {
    std::printf(
        "\nno cluster size up to %lld meets the %.0f ms SLA; best is %s at "
        "%u nodes.\n",
        static_cast<long long>(max_nodes), sla_ms,
        FormatMicros(best_time).c_str(), best_nodes);
  }

  // Master architecture advice (Section VII).
  const auto opt16 = optimizer.Optimize(static_cast<uint64_t>(elements),
                                        best_nodes);
  const uint32_t crossover =
      MasterSaturationNodes(model, static_cast<uint64_t>(elements),
                            opt16.keys, static_cast<uint32_t>(max_nodes));
  if (crossover > 0) {
    std::printf(
        "master-slave limit: beyond ~%u nodes the single master's send "
        "time exceeds the\nDB time at this partitioning — shard the master "
        "or go peer-to-peer past that.\n",
        crossover);
  } else {
    std::printf(
        "the single master keeps up at every cluster size considered "
        "(<= %lld nodes).\n",
        static_cast<long long>(max_nodes));
  }
  const auto replica = AnalyzeReplicaSelection(model, opt16.prediction.keysize,
                                               16.0, best_nodes);
  std::printf(
      "replica-selection budget at %u nodes: %.1f us of master CPU per "
      "message%s\n",
      best_nodes, replica.budget_per_message,
      replica.feasible ? "" : "  (INFEASIBLE: master cannot keep nodes fed)");
  return 0;
}
