// Molecular-dynamics trajectories on the wide-column store.
//
// The authors' earlier work ("Experiences of Using Cassandra for Molecular
// Dynamics Simulations", PDP 2015 — reference [8] of the paper) stores MD
// trajectories in exactly the layout this example builds: one partition
// per atom, clustering key = frame number, so "atom 17, frames
// 5000..6000" is a clustering-range slice. It shows the other face of the
// 64 KB column-index threshold: *slices* into long trajectories are cheap
// once the row is indexed, while short trajectories pay whole-row reads —
// and how the data-model choice (atoms/row vs frames/row) maps onto the
// paper's partitioning trade-off.
//
// Run: ./build/examples/md_trajectory [--atoms=64] [--frames=20000]
#include <cstdio>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table_printer.hpp"
#include "store/local_store.hpp"

using namespace kvscale;

namespace {

/// 3x float positions + velocity magnitude, packed like a real frame row.
std::vector<std::byte> FrameRecord(Rng& rng) {
  std::vector<std::byte> bytes(16);
  for (size_t i = 0; i < bytes.size(); i += 8) {
    const uint64_t word = rng.Next();
    for (size_t j = 0; j < 8 && i + j < bytes.size(); ++j) {
      bytes[i + j] = static_cast<std::byte>((word >> (8 * j)) & 0xff);
    }
  }
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t atoms = 64;
  int64_t frames = 20000;
  CliFlags flags;
  flags.Add("atoms", &atoms, "atoms in the system");
  flags.Add("frames", &frames, "trajectory length in frames");
  if (!flags.Parse(argc, argv)) return 1;

  std::printf("loading a %lld-atom, %lld-frame trajectory "
              "(partition = atom, clustering = frame)...\n",
              static_cast<long long>(atoms),
              static_cast<long long>(frames));

  LocalStore store;
  Table& table = store.GetOrCreateTable("md.trajectory");
  Rng rng(2015);
  for (int64_t atom = 0; atom < atoms; ++atom) {
    const std::string key = "atom:" + std::to_string(atom);
    for (int64_t frame = 0; frame < frames; ++frame) {
      Column column;
      column.clustering = static_cast<uint64_t>(frame);
      column.type_id = static_cast<uint32_t>(atom % 4);  // element species
      column.payload = FrameRecord(rng);
      table.Put(key, std::move(column));
    }
  }
  table.Flush();
  std::printf("row footprint per atom: %s (%s the 64 KiB index threshold)\n\n",
              FormatBytes(table.PartitionEncodedBytes("atom:0")).c_str(),
              table.PartitionEncodedBytes("atom:0") > 64 * kKiB ? "above"
                                                                : "below");

  // Typical analysis access patterns and what they cost in block decodes.
  struct Query {
    const char* what;
    uint64_t lo, hi;
  };
  const uint64_t f = static_cast<uint64_t>(frames);
  TablePrinter report({"access pattern", "frames", "blocks decoded",
                       "columns returned"});
  for (const Query& q :
       {Query{"single frame", f / 2, f / 2},
        Query{"1%-window around an event", f / 2, f / 2 + f / 100},
        Query{"equilibration prefix (10%)", 0, f / 10},
        Query{"whole trajectory", 0, f - 1}}) {
    ReadProbe probe;
    auto slice = table.Slice("atom:7", q.lo, q.hi, &probe);
    if (!slice.ok()) {
      std::fprintf(stderr, "slice failed: %s\n",
                   slice.status().ToString().c_str());
      return 1;
    }
    report.AddRow({q.what, TablePrinter::Cell(q.hi - q.lo + 1),
                   TablePrinter::Cell(probe.blocks_decoded +
                                      probe.blocks_from_cache),
                   TablePrinter::Cell(probe.columns_returned)});
  }
  report.Print();

  std::printf(
      "\nlong trajectories cross the column-index threshold, so narrow "
      "frame windows\ndecode only the overlapping blocks — the same "
      "mechanism that creates the paper's\nFigure 6 step also makes this "
      "layout efficient for MD analysis.\n\n");

  // The alternative layout (frames as partitions) and its trade-off.
  Table& by_frame = store.GetOrCreateTable("md.by_frame");
  for (int64_t frame = 0; frame < std::min<int64_t>(frames, 2000); ++frame) {
    const std::string key = "frame:" + std::to_string(frame);
    for (int64_t atom = 0; atom < atoms; ++atom) {
      Column column;
      column.clustering = static_cast<uint64_t>(atom);
      column.type_id = static_cast<uint32_t>(atom % 4);
      column.payload = FrameRecord(rng);
      by_frame.Put(key, std::move(column));
    }
  }
  by_frame.Flush();
  ReadProbe snapshot_probe;
  KV_CHECK(by_frame.GetPartition("frame:1000", &snapshot_probe).ok());
  ReadProbe series_probe;
  for (int64_t frame = 900; frame < 1100; ++frame) {
    KV_CHECK(by_frame
                 .Slice("frame:" + std::to_string(frame), 7, 7, &series_probe)
                 .ok());
  }
  std::printf(
      "layout trade-off (the paper's Section II choice, in MD terms):\n"
      "  partition-per-atom : one atom's 200-frame window  -> few block "
      "decodes (above)\n"
      "  partition-per-frame: whole-system snapshot        -> %llu block "
      "decode(s)\n"
      "  partition-per-frame: one atom across 200 frames   -> %llu block "
      "decodes (one per frame!)\n"
      "choose the partition key for the query you must serve — and check "
      "the\ncardinality it leaves for the DHT (200 frames/s of simulation "
      "makes millions of\nkeys; per-atom keys may be only thousands).\n",
      static_cast<unsigned long long>(snapshot_probe.blocks_decoded +
                                      snapshot_probe.blocks_from_cache),
      static_cast<unsigned long long>(series_probe.blocks_decoded +
                                      series_probe.blocks_from_cache));
  return 0;
}
