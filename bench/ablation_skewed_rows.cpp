// Ablation — heterogeneous (Zipf-sized) partitions.
//
// Formula 4 plugs the *mean* row size into the DB model: "all of them
// differ in the number of elements per partition" is true of the paper's
// workloads only on average. Real D8tree cubes (and the Section II city
// partitions) are heavy-tailed; this bench runs the same totals with
// uniform vs Zipf-sized partitions and shows where the mean-keysize model
// starts to miss — a model limitation the paper's uniform workloads never
// exposed.
#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"

namespace kvscale {
namespace {

int Run(int argc, char** argv) {
  int64_t elements = 1000000;
  int64_t keys = 1000;
  int64_t nodes = 16;
  int64_t repeats = 5;
  CliFlags flags;
  flags.Add("elements", &elements, "total elements");
  flags.Add("keys", &keys, "partitions");
  flags.Add("nodes", &nodes, "cluster size");
  flags.Add("repeats", &repeats, "seeds per configuration");
  if (!flags.Parse(argc, argv)) return 1;

  bench::Banner(
      "Ablation: uniform vs Zipf-sized partitions (same totals)",
      "Formula 4 uses the mean row size; heavy-tailed partition sizes add "
      "a load imbalance the key-count analysis cannot see (Section II's "
      "city example at the query level)",
      std::to_string(keys) + " partitions, " + std::to_string(nodes) +
          " nodes");

  const QueryModel model = bench::PaperQueryModel(true);
  const Micros predicted = model.Predict(static_cast<uint64_t>(elements),
                                         static_cast<uint64_t>(keys),
                                         static_cast<uint32_t>(nodes))
                               .total;

  TablePrinter table({"partition sizes", "largest partition", "makespan",
                      "vs model", "req imbalance"});
  struct Shape {
    const char* name;
    double exponent;  // < 0 = uniform
  };
  for (const Shape& shape :
       {Shape{"uniform", -1.0}, Shape{"zipf s=0.5", 0.5},
        Shape{"zipf s=0.8", 0.8}, Shape{"zipf s=1.0", 1.0}}) {
    RunningSummary makespan, imbalance;
    uint32_t largest = 0;
    for (int64_t r = 0; r < repeats; ++r) {
      const WorkloadSpec workload =
          shape.exponent < 0
              ? UniformWorkload(static_cast<uint64_t>(elements),
                                static_cast<uint64_t>(keys))
              : ZipfWorkload(static_cast<uint64_t>(elements),
                             static_cast<uint64_t>(keys), shape.exponent,
                             static_cast<uint64_t>(r + 1));
      for (const auto& p : workload.partitions) {
        largest = std::max(largest, p.elements);
      }
      ClusterConfig config = bench::PaperClusterConfig(
          static_cast<uint32_t>(nodes), true, static_cast<uint64_t>(r + 1));
      // The quadratic GC-churn term is calibrated for the paper's row
      // sizes (<= 10k elements); switch it off so giant Zipf-head rows
      // show the *database* effect, not an extrapolated GC artefact.
      config.gc.quadratic_us_per_element2 = 0.0;
      // Heterogeneous sizes: don't charge a giant row the executor-wide
      // interference of unrelated small requests.
      config.cap_inflation_at_optimal = true;
      const auto run = RunDistributedQuery(config, workload);
      makespan.Add(run.makespan);
      imbalance.Add(run.RequestImbalance());
    }
    table.AddRow({shape.name, TablePrinter::Cell(static_cast<int64_t>(largest)),
                  FormatMicros(makespan.mean()),
                  FormatPercent(makespan.mean() / predicted - 1.0),
                  FormatPercent(imbalance.mean())});
  }
  table.Print();

  std::printf(
      "\nreading: the model's mean-keysize prediction (%s here) holds for "
      "uniform\npartitions; as the size distribution's tail grows, single "
      "giant rows dominate\nthe slowest node and the gap opens — when "
      "your cubes are heavy-tailed, feed\nkey_max the *load* imbalance "
      "(SimulateWeightedImbalance), not the key count.\n",
      FormatMicros(predicted).c_str());
  return 0;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Run(argc, argv); }
