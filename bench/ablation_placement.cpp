// Ablation — placement policy (the Section VIII design space).
//
// Runs the coarse workload (the imbalance-dominated one) under every
// placement policy and reports makespan and request imbalance: DHT-random
// (single-choice balls-into-bins), token ring (Cassandra), round-robin
// (central directory), least-loaded replica selection, and
// power-of-two-choices (Mitzenmacher / Kinesis).
#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "workload/granularity.hpp"

namespace kvscale {
namespace {

int Run(int argc, char** argv) {
  int64_t elements = 1000000;
  int64_t nodes = 16;
  int64_t repeats = 10;
  CliFlags flags;
  flags.Add("elements", &elements, "total elements");
  flags.Add("nodes", &nodes, "cluster size");
  flags.Add("repeats", &repeats, "seeds per policy");
  if (!flags.Parse(argc, argv)) return 1;

  bench::Banner(
      "Ablation: placement policy on the coarse workload (100 keys)",
      "single-choice random placement pays the full balls-into-bins "
      "imbalance; load-aware policies recover most of it (Section VIII)",
      std::to_string(nodes) + " nodes, " + std::to_string(repeats) +
          " seeds");

  const WorkloadSpec workload =
      MakeUniformWorkload(Granularity::kCoarse, elements);

  TablePrinter table({"policy", "mean makespan", "req imbalance",
                      "vs dht-random"});
  Micros baseline = 0.0;
  for (PlacementKind kind :
       {PlacementKind::kDhtRandom, PlacementKind::kTokenRing,
        PlacementKind::kJumpHash, PlacementKind::kPowerOfTwo,
        PlacementKind::kRoundRobin, PlacementKind::kLeastLoaded}) {
    ClusterConfig config =
        bench::PaperClusterConfig(static_cast<uint32_t>(nodes), true, 1);
    config.placement = kind;
    const auto run = bench::RunRepeated(config, workload,
                                        static_cast<uint32_t>(repeats));
    if (kind == PlacementKind::kDhtRandom) baseline = run.mean_makespan;
    table.AddRow({std::string(PlacementKindName(kind)),
                  FormatMicros(run.mean_makespan),
                  FormatPercent(run.mean_request_imbalance),
                  FormatPercent(run.mean_makespan / baseline - 1.0)});
  }
  table.Print();

  std::printf(
      "\ncaveats the paper raises for the load-aware policies: reads must "
      "query replicas\n(CPU multiplied), caches lose affinity, and the "
      "master needs real-time load data\n— none of which the makespan "
      "column charges here.\n");
  return 0;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Run(argc, argv); }
