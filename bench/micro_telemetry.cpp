// Telemetry hot-path micro-benchmark — counter increments under
// contention.
//
// Every sub-query on the message path bumps several counters
// (dispatched, replies, wire bytes), so with N client threads sharing
// one MetricsRegistry the counters are the most contended words in the
// process. A single shared atomic serializes those increments through
// one cache line; the striped Counter (16 cache-line-padded stripes,
// threads assigned round-robin) keeps the hot path a local fetch_add
// and only folds the stripes on read. The two cases below measure that
// difference directly: identical single-threaded cost, and a widening
// gap as threads pile onto the shared line.
#include <benchmark/benchmark.h>

#include <atomic>

#include "telemetry/metrics_registry.hpp"

namespace kvscale {
namespace {

/// The pre-striping implementation: all threads hit one cache line.
std::atomic<uint64_t> shared_counter{0};

void BM_SharedAtomicCounter(benchmark::State& state) {
  if (state.thread_index() == 0) shared_counter.store(0);
  for (auto _ : state) {
    shared_counter.fetch_add(1, std::memory_order_relaxed);
  }
}
BENCHMARK(BM_SharedAtomicCounter)->Threads(1)->Threads(4)->Threads(8);

/// The striped registry Counter: per-thread stripe, fold on read.
Counter striped_counter;

void BM_StripedCounter(benchmark::State& state) {
  if (state.thread_index() == 0) striped_counter.Reset();
  for (auto _ : state) {
    striped_counter.Increment();
  }
  if (state.thread_index() == 0) {
    benchmark::DoNotOptimize(striped_counter.Value());
  }
}
BENCHMARK(BM_StripedCounter)->Threads(1)->Threads(4)->Threads(8);

/// Registry lookup + increment, the full hot-path as the cluster calls
/// it when a counter pointer is not cached.
void BM_RegistryLookupIncrement(benchmark::State& state) {
  static MetricsRegistry registry;
  for (auto _ : state) {
    registry.GetCounter("bench.lookup.increment").Increment();
  }
}
BENCHMARK(BM_RegistryLookupIncrement)->Threads(1)->Threads(4);

}  // namespace
}  // namespace kvscale

BENCHMARK_MAIN();
