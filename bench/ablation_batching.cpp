// Ablation — request batching at the master.
//
// The paper fixed the master by making each message cheaper (Kryo). The
// complementary fix is sending *fewer* messages: coalescing sub-queries
// for the same node amortises the fixed per-message CPU cost (dispatch,
// allocation, syscall) across the batch. This bench sweeps the batch size
// for both serializer profiles on the master-bound fine-grained workload
// and reports where the bottleneck flips back to the slaves.
#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "workload/granularity.hpp"

namespace kvscale {
namespace {

int Run(int argc, char** argv) {
  int64_t elements = 1000000;
  int64_t nodes = 16;
  int64_t repeats = 3;
  CliFlags flags;
  flags.Add("elements", &elements, "total elements");
  flags.Add("nodes", &nodes, "cluster size");
  flags.Add("repeats", &repeats, "seeds per configuration");
  if (!flags.Parse(argc, argv)) return 1;

  bench::Banner(
      "Ablation: master message batching (fine-grained, 10k sub-queries)",
      "the paper cut the per-message cost 150 -> 19 us; batching divides "
      "the fixed share of it by the batch size",
      std::to_string(nodes) + " nodes, batch in {1,4,16,64}");

  const WorkloadSpec workload =
      MakeUniformWorkload(Granularity::kFine, elements);

  for (bool optimized : {false, true}) {
    bench::Header(std::string(optimized ? "kryo-like (19 us fixed+marginal)"
                                        : "java-default (150 us)"));
    TablePrinter table({"batch size", "master issue", "makespan",
                        "vs batch 1"});
    Micros baseline = 0.0;
    for (uint32_t batch : {1u, 4u, 16u, 64u}) {
      ClusterConfig config = bench::PaperClusterConfig(
          static_cast<uint32_t>(nodes), optimized, 1);
      config.send_batch_size = batch;
      const auto run = bench::RunRepeated(config, workload,
                                          static_cast<uint32_t>(repeats));
      if (batch == 1) baseline = run.mean_makespan;
      table.AddRow({TablePrinter::Cell(static_cast<int64_t>(batch)),
                    FormatMicros(run.mean_master_done),
                    FormatMicros(run.mean_makespan),
                    FormatPercent(run.mean_makespan / baseline - 1.0)});
    }
    table.Print();
  }

  std::printf(
      "\nreading: with the slow serializer, batching recovers most of what "
      "the Kryo\nswitch bought — the two optimizations attack the same "
      "term of Formula 3\n(keys x t_msg) from different directions. Past "
      "the point where the slaves\nbecome the bottleneck, bigger batches "
      "stop helping.\n");
  return 0;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Run(argc, argv); }
