// Storage-engine micro-benchmarks: put/read/slice/count paths and the
// cache effect. These are host-dependent numbers (not paper figures); they
// document the real engine's costs and back the calibration path.
#include <benchmark/benchmark.h>

#include "common/check.hpp"
#include "store/local_store.hpp"
#include "store/row.hpp"
#include "telemetry/metrics_registry.hpp"

namespace kvscale {
namespace {

Column MakeColumn(uint64_t clustering) {
  Column c;
  c.clustering = clustering;
  c.type_id = static_cast<uint32_t>(clustering % 8);
  c.payload = MakePayload(1, clustering, 43);
  return c;
}

/// Builds a flushed table with one partition of `elements` columns.
/// `metrics` non-null wires the table into a registry (the telemetry-on
/// configuration; null is the default no-telemetry path).
std::unique_ptr<Table> BuildRow(uint64_t elements, BlockCache* cache,
                                MetricsRegistry* metrics = nullptr) {
  TableOptions options;
  options.metrics = metrics;
  auto table = std::make_unique<Table>("bench", options, cache);
  for (uint64_t i = 0; i < elements; ++i) table->Put("row", MakeColumn(i));
  table->Flush();
  return table;
}

void BM_Put(benchmark::State& state) {
  Table table("bench", TableOptions{}, nullptr);
  uint64_t i = 0;
  for (auto _ : state) {
    table.Put("row-" + std::to_string(i % 64), MakeColumn(i));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_Put);

void BM_CountByTypeCold(benchmark::State& state) {
  const auto elements = static_cast<uint64_t>(state.range(0));
  auto table = BuildRow(elements, nullptr);
  for (auto _ : state) {
    auto counts = table->CountByType("row");
    benchmark::DoNotOptimize(counts);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(elements));
}
BENCHMARK(BM_CountByTypeCold)->Arg(100)->Arg(1000)->Arg(1425)->Arg(10000);

void BM_CountByTypeCached(benchmark::State& state) {
  const auto elements = static_cast<uint64_t>(state.range(0));
  BlockCache cache(256 * kMiB);
  auto table = BuildRow(elements, &cache);
  KV_CHECK(table->CountByType("row").ok());  // warm the cache
  for (auto _ : state) {
    auto counts = table->CountByType("row");
    benchmark::DoNotOptimize(counts);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(elements));
}
BENCHMARK(BM_CountByTypeCached)->Arg(100)->Arg(1000)->Arg(10000);

// Same cached read with full metrics recording (counters + latency
// histogram per read). Compare against BM_CountByTypeCached to see the
// telemetry cost; BM_CountByTypeCached itself measures the disabled
// path (a single null-pointer branch).
void BM_CountByTypeCachedTelemetry(benchmark::State& state) {
  const auto elements = static_cast<uint64_t>(state.range(0));
  MetricsRegistry registry;
  BlockCache cache(256 * kMiB);
  auto table = BuildRow(elements, &cache, &registry);
  KV_CHECK(table->CountByType("row").ok());  // warm the cache
  for (auto _ : state) {
    auto counts = table->CountByType("row");
    benchmark::DoNotOptimize(counts);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(elements));
}
BENCHMARK(BM_CountByTypeCachedTelemetry)->Arg(100)->Arg(1000)->Arg(10000);

void BM_SliceIndexedRow(benchmark::State& state) {
  // 10k elements: well above the 64 KB threshold, so the column index
  // narrows a 10-element slice to one block.
  auto table = BuildRow(10000, nullptr);
  uint64_t lo = 0;
  for (auto _ : state) {
    auto cols = table->Slice("row", lo, lo + 9);
    benchmark::DoNotOptimize(cols);
    lo = (lo + 97) % 9900;
  }
}
BENCHMARK(BM_SliceIndexedRow);

void BM_SliceUnindexedRow(benchmark::State& state) {
  // 1000 elements (< 64 KB): every slice decodes the whole row.
  auto table = BuildRow(1000, nullptr);
  uint64_t lo = 0;
  for (auto _ : state) {
    auto cols = table->Slice("row", lo, lo + 9);
    benchmark::DoNotOptimize(cols);
    lo = (lo + 97) % 900;
  }
}
BENCHMARK(BM_SliceUnindexedRow);

void BM_BloomNegativeLookup(benchmark::State& state) {
  auto table = std::make_unique<Table>("bench", TableOptions{}, nullptr);
  for (int p = 0; p < 1000; ++p) {
    table->Put("part-" + std::to_string(p), MakeColumn(1));
  }
  table->Flush();
  uint64_t i = 0;
  for (auto _ : state) {
    auto missing = table->GetPartition("absent-" + std::to_string(i++));
    benchmark::DoNotOptimize(missing);
  }
}
BENCHMARK(BM_BloomNegativeLookup);

void BM_Compaction(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Table table("bench", TableOptions{}, nullptr);
    for (int round = 0; round < 4; ++round) {
      for (uint64_t i = 0; i < 500; ++i) {
        table.Put("p" + std::to_string(i % 16), MakeColumn(round * 1000 + i));
      }
      table.Flush();
    }
    state.ResumeTiming();
    table.Compact();
  }
}
BENCHMARK(BM_Compaction);

}  // namespace
}  // namespace kvscale

BENCHMARK_MAIN();
