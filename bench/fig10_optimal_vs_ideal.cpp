// Figure 10 — Optimal settings versus ideal scalability.
//
// Paper setup: the optimum of Figure 9 compared against linear scaling of
// the single-node optimum; the residual loss decomposed into the part the
// imbalance causes and the database efficiency the optimizer sacrificed.
// Paper result: ~10% residual loss at 16 nodes even at the optimum.
#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "model/optimizer.hpp"

namespace kvscale {
namespace {

int Run(int argc, char** argv) {
  int64_t elements = 1000000;
  CliFlags flags;
  flags.Add("elements", &elements, "total elements");
  if (!flags.Parse(argc, argv)) return 1;

  bench::Banner(
      "Figure 10: loss vs ideal scalability at the optimal configuration",
      "~10% loss at 16 nodes; split between imbalance and sacrificed DB "
      "efficiency",
      "PartitionOptimizer sweep, losses vs linear scaling of the 1-node "
      "optimum");

  PartitionOptimizer optimizer(bench::PaperQueryModel(true));
  const auto sweep = optimizer.Sweep(static_cast<uint64_t>(elements),
                                     {1, 2, 4, 8, 16, 32});

  TablePrinter table({"nodes", "total loss", "imbalance part",
                      "efficiency part", "optimal rows"});
  for (const auto& opt : sweep) {
    table.AddRow({TablePrinter::Cell(static_cast<int64_t>(opt.nodes)),
                  FormatPercent(opt.total_loss),
                  FormatPercent(opt.imbalance_loss),
                  FormatPercent(opt.efficiency_loss),
                  TablePrinter::Cell(opt.keys)});
  }
  table.Print();

  const auto& at16 = sweep[4];
  std::printf(
      "\nat 16 nodes: %.1f%% total loss (paper: ~10%%), of which %.1f "
      "points are\nimbalance and %.1f points sacrificed DB efficiency + "
      "master overhead.\n",
      at16.total_loss * 100.0, at16.imbalance_loss * 100.0,
      at16.efficiency_loss * 100.0);
  std::printf(
      "interpretation (paper): \"we have to mediate between two "
      "conflicting aspects:\nthe database efficiency and the workload "
      "distribution.\"\n");
  return 0;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Run(argc, argv); }
