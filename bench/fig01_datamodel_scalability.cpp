// Figure 1 — Data model influence on scalability.
//
// Paper setup: 1M elements aggregated by count-by-type under three data
// models (coarse 100x10000, medium 1000x1000, fine 10000x100) on clusters
// of 1..16 nodes, with the *unoptimised* (Java-serialization) master.
// Paper result: none of the models scale linearly; at 16 nodes the gap to
// ideal is 108% (coarse), 62% (medium) and 180% (fine); for coarse/medium
// the "balanced" line overlaps ideal (imbalance explains the loss) while
// fine diverges (the master is the real bottleneck).
#include <cinttypes>
#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "workload/granularity.hpp"

namespace kvscale {
namespace {

struct PaperReference {
  Granularity granularity;
  // Relative gap vs ideal at 16 nodes reported in the paper's labels.
  double gap_vs_ideal_16;
};

int Run(int argc, char** argv) {
  int64_t elements = 1000000;
  int64_t repeats = 5;
  CliFlags flags;
  flags.Add("elements", &elements, "total elements to aggregate");
  flags.Add("repeats", &repeats, "seeds averaged per configuration");
  if (!flags.Parse(argc, argv)) return 1;

  bench::Banner(
      "Figure 1: data model influence on scalability (slow master, 150 us/msg)",
      "at 16 nodes: coarse +108%, medium +62%, fine +180% vs ideal; "
      "balanced==ideal for coarse/medium, diverges for fine",
      "simulator, " + std::to_string(elements) + " elements, " +
          std::to_string(repeats) + " seeds/config");

  const std::vector<PaperReference> references = {
      {Granularity::kCoarse, 1.08},
      {Granularity::kMedium, 0.62},
      {Granularity::kFine, 1.80},
  };

  for (const auto& ref : references) {
    const WorkloadSpec workload =
        MakeUniformWorkload(ref.granularity, elements);
    bench::Header(std::string(GranularityName(ref.granularity)) + " (" +
                  std::to_string(workload.partitions.size()) +
                  " partitions)");

    // Anchor the ideal line the way the paper does: measured single-node
    // time scaled by 1/n.
    const auto single = bench::RunRepeated(
        bench::PaperClusterConfig(1, /*optimized_master=*/false, 1),
        workload, static_cast<uint32_t>(repeats));

    TablePrinter table({"nodes", "time", "ideal", "balanced", "vs ideal",
                        "req imbalance"});
    double gap16 = 0.0;
    for (uint32_t nodes : bench::PaperNodeCounts()) {
      const auto run = bench::RunRepeated(
          bench::PaperClusterConfig(nodes, false, 1), workload,
          static_cast<uint32_t>(repeats));
      const Micros ideal = single.mean_makespan / nodes;
      // The paper's "balanced" line: what the run would have cost with the
      // observed per-node work spread perfectly.
      const Micros balanced =
          run.mean_makespan / (1.0 + run.mean_request_imbalance);
      const double gap = run.mean_makespan / ideal - 1.0;
      if (nodes == 16) gap16 = gap;
      table.AddRow({TablePrinter::Cell(static_cast<int64_t>(nodes)),
                    FormatMicros(run.mean_makespan), FormatMicros(ideal),
                    FormatMicros(balanced), FormatPercent(gap),
                    FormatPercent(run.mean_request_imbalance)});
    }
    table.Print();
    std::printf("paper gap at 16 nodes: %s | measured: %s\n",
                FormatPercent(ref.gap_vs_ideal_16).c_str(),
                FormatPercent(gap16).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Run(argc, argv); }
