// Figure 4 — Profile patterns: medium-grained vs fine-grained stage Gantt.
//
// Paper setup: 16 nodes, slow (Java-serialization) master; per-request
// timelines split into master-to-slave / in-queue / in-db / slave-to-master.
// Paper result: medium-grained saturates Cassandra (long in-queue bands,
// dense in-db, master done in ~300 ms; the run ends when slave F drains);
// fine-grained inverts the pattern: the master takes ~1.5 s to send, the
// in-queue stage is empty and the in-db lanes show idle gaps — the master
// starves the database.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/span_tracer.hpp"
#include "trace/gantt.hpp"
#include "trace/telemetry_bridge.hpp"
#include "workload/granularity.hpp"

namespace kvscale {
namespace {

void Profile(Granularity granularity, uint64_t elements, uint32_t nodes,
             uint64_t seed, uint32_t track_base, SpanTracer& spans,
             MetricsRegistry& registry) {
  ClusterConfig config = bench::PaperClusterConfig(nodes, false, seed);
  // Pin the DB executor width so the utilisation numbers of the two
  // workloads are directly comparable.
  config.db_concurrency = 16;
  const WorkloadSpec workload = MakeUniformWorkload(granularity, elements);
  const QueryRunResult run = RunDistributedQuery(config, workload);

  // Each profile gets its own band of span tracks and its own histogram
  // prefix, so both land side by side in one Perfetto view / JSONL file.
  const std::string label(GranularityName(granularity));
  AppendStageSpans(run.tracer, spans, track_base, label);
  RecordStageHistograms(run.tracer, registry,
                        "fig04." + label + ".stage.");
  registry.GetGauge("fig04." + label + ".makespan_us").Set(run.makespan);

  bench::Header(std::string(GranularityName(granularity)) + " on " +
                std::to_string(nodes) + " nodes (slow master)");
  std::printf("makespan %s | master finished sending at %s\n",
              FormatMicros(run.makespan).c_str(),
              FormatMicros(run.master_issue_done).c_str());
  std::printf("%s\n", run.tracer.SummaryReport().c_str());

  GanttOptions options;
  options.width = 100;
  // Per-stage (cluster-wide) lanes keep the output readable at 16 nodes.
  options.per_node = false;
  std::printf("%s", RenderGantt(run.tracer, options).c_str());

  const RunningSummary queue = run.tracer.StageSummary(Stage::kInQueue);
  const RunningSummary latency = [&] {
    RunningSummary s;
    for (const auto& t : run.tracer.traces()) s.Add(t.TotalLatency());
    return s;
  }();
  std::printf("mean in-queue %s (%.0f%% of mean request latency %s)\n",
              FormatMicros(queue.mean()).c_str(),
              latency.mean() > 0 ? queue.mean() / latency.mean() * 100.0 : 0.0,
              FormatMicros(latency.mean()).c_str());

  // The paper's "white spots": how busy the database actually was.
  // Utilisation = total in-db service time / (window * nodes * executors).
  const RunningSummary in_db = run.tracer.StageSummary(Stage::kInDb);
  const double db_utilisation =
      in_db.sum() / (run.makespan * nodes * 16.0);
  std::printf("database utilisation over the run: %.0f%%%s\n",
              db_utilisation * 100.0,
              db_utilisation < 0.4
                  ? "  <- the DB sits idle waiting for the master"
                  : "");
}

int Run(int argc, char** argv) {
  int64_t elements = 1000000;
  int64_t nodes = 16;
  int64_t seed = 7;
  std::string trace_out;
  std::string metrics_out;
  CliFlags flags;
  flags.Add("elements", &elements, "total elements");
  flags.Add("nodes", &nodes, "cluster size");
  flags.Add("seed", &seed, "run seed");
  flags.Add("trace-out", &trace_out,
            "write both profiles' stage spans as Chrome trace JSON");
  flags.Add("metrics-out", &metrics_out,
            "write stage histograms as a JSONL snapshot");
  if (!flags.Parse(argc, argv)) return 1;

  bench::Banner(
      "Figure 4: stage profiles, medium vs fine (slow master, 16 nodes)",
      "medium: long in-queue bands, master done ~300 ms, DB is the "
      "bottleneck; fine: empty in-queue, idle in-db gaps, master needs "
      "~1.5 s to send",
      "simulated stage traces, ASCII Gantt");

  SpanTracer spans;
  MetricsRegistry registry;
  Profile(Granularity::kMedium, elements, static_cast<uint32_t>(nodes),
          static_cast<uint64_t>(seed), /*track_base=*/0, spans, registry);
  Profile(Granularity::kFine, elements, static_cast<uint32_t>(nodes),
          static_cast<uint64_t>(seed), /*track_base=*/100, spans, registry);

  std::printf(
      "\nreading: in medium the in-queue lane is dense (requests wait for "
      "the DB);\nin fine the in-queue lane is nearly empty and in-db shows "
      "white gaps (the DB waits\nfor the master), matching the paper's "
      "diagnosis.\n");

  if (!trace_out.empty()) {
    const Status status = WriteChromeTrace(spans, trace_out);
    if (!status.ok()) {
      std::fprintf(stderr, "--trace-out: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu spans to %s\n", spans.size(), trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    const Status status = WriteMetricsJsonl(registry, metrics_out);
    if (!status.ok()) {
      std::fprintf(stderr, "--metrics-out: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote stage metrics to %s\n", metrics_out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Run(argc, argv); }
