// Stream bench — latency vs offered load.
//
// The paper's opening question: "Should a system that aims to few
// milliseconds response time have the same infrastructure of a
// batch-oriented one?" One-query-at-a-time numbers (Figures 1/5) measure
// *capacity*; an interactive system lives on the latency-vs-load curve.
// This bench sweeps a Poisson query stream from 10% to 150% of the
// single-query capacity and prints the saturation knee.
#include <cstdio>

#include "bench_util.hpp"
#include "cluster/stream_sim.hpp"
#include "common/cli.hpp"

namespace kvscale {
namespace {

int Run(int argc, char** argv) {
  int64_t nodes = 16;
  int64_t queries = 60;
  int64_t elements = 100000;
  int64_t keys = 400;
  CliFlags flags;
  flags.Add("nodes", &nodes, "cluster size");
  flags.Add("queries", &queries, "queries per load point");
  flags.Add("elements", &elements, "elements per query");
  flags.Add("keys", &keys, "partitions per query");
  if (!flags.Parse(argc, argv)) return 1;

  StreamConfig config;
  config.base.nodes = static_cast<uint32_t>(nodes);
  config.base.seed = 2017;
  config.base.gc.quadratic_us_per_element2 = 0.0;
  config.queries = static_cast<uint32_t>(queries);
  config.elements_per_query = static_cast<uint64_t>(elements);
  config.keys_per_query = static_cast<uint64_t>(keys);
  const double capacity = EstimatedCapacityQps(config);

  bench::Banner(
      "Stream: query latency vs offered load (beyond the paper's single "
      "query)",
      "\"should a system that aims to few milliseconds response time have "
      "the same infrastructure of a batch-oriented one?\" (Section I)",
      std::to_string(nodes) + " nodes, " + std::to_string(queries) +
          " queries/point, capacity ~" +
          TablePrinter::Cell(capacity, 1) + " qps");

  TablePrinter table({"offered load", "qps", "achieved", "p50", "p90",
                      "p99", "p99/p50"});
  for (double fraction : {0.1, 0.3, 0.5, 0.7, 0.9, 1.1, 1.5}) {
    config.arrival_qps = capacity * fraction;
    const auto result = RunQueryStream(config);
    char load[32];
    std::snprintf(load, sizeof(load), "%.0f%% capacity", fraction * 100);
    table.AddRow({load, TablePrinter::Cell(config.arrival_qps, 2),
                  TablePrinter::Cell(result.achieved_qps, 2),
                  FormatMicros(result.latency_p50),
                  FormatMicros(result.latency_p90),
                  FormatMicros(result.latency_p99),
                  TablePrinter::Cell(result.latency_p99 /
                                         result.latency_p50,
                                     2)});
  }
  table.Print();

  std::printf(
      "\nreading: below ~50%% of capacity the latency is the isolated "
      "query time; past\nthe knee queries queue behind each other and the "
      "tail detaches from the median —\nan SLA-driven deployment must be "
      "provisioned on this curve, not on Figure 5's\nthroughput numbers.\n");

  // Aeneas-style gauges (Section IV-B) for one overloaded run.
  config.arrival_qps = capacity * 1.5;
  config.metrics_interval = 20.0 * kMillisecond;
  const auto overloaded = RunQueryStream(config);
  std::printf(
      "\nhigh-resolution gauges at 150%% load (sampled every 20 ms of "
      "virtual time):\n%speak master queue: %.0f messages\n",
      overloaded.metrics_report.c_str(), overloaded.peak_master_queue);
  return 0;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Run(argc, argv); }
