// Ablation — master architecture (Section VII's master-slave vs
// peer-to-peer trade-off).
//
// Sweeps the per-message master cost (serialization quality x extra logic)
// and shows where the crossover of Figure 11 moves, plus the effect of
// sharding the master (the GFS-evolution fix of Section VIII: "multiple
// masters thus allowing lower response time").
#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "model/architecture.hpp"

namespace kvscale {
namespace {

int Run(int argc, char** argv) {
  int64_t elements = 1000000;
  int64_t keys = 4000;
  int64_t max_nodes = 512;
  CliFlags flags;
  flags.Add("elements", &elements, "total elements");
  flags.Add("keys", &keys, "partitions");
  flags.Add("max-nodes", &max_nodes, "largest cluster evaluated");
  if (!flags.Parse(argc, argv)) return 1;

  bench::Banner(
      "Ablation: master architecture — message cost and master sharding",
      "the single-master crossover scales inversely with per-message cost; "
      "sharding masters multiplies it (GFS evolution, Section VIII)",
      "model sweep over t_msg and master count");

  bench::Header("per-message cost sweep (single master)");
  TablePrinter cost_table({"t_msg", "profile", "saturation nodes"});
  struct Profile {
    const char* name;
    Micros t_msg;
  };
  for (const auto& profile :
       {Profile{"java-default (150 us)", 150.0},
        Profile{"kryo-like (19 us)", 19.0},
        Profile{"kryo + 20 us logic", 39.0},
        Profile{"zero-copy RDMA-ish (2 us)", 2.0}}) {
    MasterModel::Params params;
    params.time_per_message = profile.t_msg;
    params.time_per_result = profile.t_msg * 0.25;
    const QueryModel model(DbModel{}, MasterModel(params));
    const uint32_t crossover = MasterSaturationNodes(
        model, static_cast<uint64_t>(elements), static_cast<uint64_t>(keys),
        static_cast<uint32_t>(max_nodes));
    cost_table.AddRow({FormatMicros(profile.t_msg), profile.name,
                       crossover == 0 ? std::string("> ") +
                                            std::to_string(max_nodes)
                                      : std::to_string(crossover)});
  }
  cost_table.Print();

  bench::Header("master sharding sweep (19 us/message each)");
  TablePrinter shard_table({"masters", "effective t_msg", "saturation nodes"});
  for (uint32_t masters : {1u, 2u, 4u, 8u}) {
    // Sharding the key space over m masters divides the per-master send
    // rate: equivalent to t_msg / m in Formula 3.
    MasterModel::Params params;
    params.time_per_message = 19.0 / masters;
    params.time_per_result = 5.0 / masters;
    const QueryModel model(DbModel{}, MasterModel(params));
    const uint32_t crossover = MasterSaturationNodes(
        model, static_cast<uint64_t>(elements), static_cast<uint64_t>(keys),
        static_cast<uint32_t>(max_nodes));
    shard_table.AddRow(
        {TablePrinter::Cell(static_cast<int64_t>(masters)),
         FormatMicros(19.0 / masters),
         crossover == 0 ? std::string("> ") + std::to_string(max_nodes)
                        : std::to_string(crossover)});
  }
  shard_table.Print();

  std::printf(
      "\nreading: a slow master caps the cluster in the tens of nodes; "
      "each 2x in\nmessage efficiency or master count roughly doubles the "
      "usable cluster size —\nthe quantitative form of the paper's "
      "master-slave vs peer-to-peer guidance.\n");
  return 0;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Run(argc, argv); }
