// Query-mix throughput: the four query plans (count, scan, top-k, box)
// through the one shared gather engine, over the message transport.
//
// The engine refactor's promise is that new query types ride the same
// retry/hedge/admission loop the paper's count-by-type aggregation
// always used — so they should all sustain comparable gather rates, and
// the D8tree box plan should do *less* work than a full scatter (its
// partitions-pruned column is the index's payoff). This bench measures
// queries/s and latency percentiles per kind on one loaded cluster, and
// reports the box plan's touched-vs-pruned partition split.
//
// Run: ./build/bench/query_mix [--elements=8000] [--keys=48] [--nodes=4]
//      [--replication=2] [--repeats=30] [--particles=20000] [--level=4]
//
// Scoreboard mode: --json-out=FILE writes the measured points as JSON;
// --check-against=BASELINE compares against a committed scoreboard and
// fails (exit 1) when any kind's queries/s regresses past
// --tolerance-pct or the configs differ. The gate is lower-bound-only:
// only slowdowns fail, latency is reported but not gated.
// tools/bench_check.sh wraps the quick-config flow.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "cluster/in_process_cluster.hpp"
#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/table_printer.hpp"
#include "stats/summary.hpp"
#include "store/row.hpp"
#include "workload/alya.hpp"
#include "workload/box_query.hpp"
#include "workload/d8tree.hpp"

namespace kvscale {
namespace {

/// One query kind's measured throughput. `kind` is numeric (the QueryKind
/// enum value) so the baseline check can scan it with the targeted-key
/// parser the other scoreboards use.
struct KindPoint {
  uint32_t kind = 0;
  uint64_t repeats = 0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  uint64_t touched = 0;  ///< partitions the scatter targeted (last run)
  uint64_t pruned = 0;   ///< candidates the selector skipped (box only)
};

/// The knobs that shape the measurement; a baseline is only comparable
/// against a run with the identical config.
struct BenchConfig {
  int64_t elements = 0;
  int64_t keys = 0;
  int64_t nodes = 0;
  int64_t replication = 0;
  int64_t repeats = 0;
  int64_t particles = 0;
  int64_t level = 0;
};

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string ScoreboardJson(const BenchConfig& config,
                           const std::vector<KindPoint>& points) {
  std::string out = "{\"bench\":\"query_mix\",\"config\":{";
  out += "\"elements\":" + std::to_string(config.elements);
  out += ",\"keys\":" + std::to_string(config.keys);
  out += ",\"nodes\":" + std::to_string(config.nodes);
  out += ",\"replication\":" + std::to_string(config.replication);
  out += ",\"repeats\":" + std::to_string(config.repeats);
  out += ",\"particles\":" + std::to_string(config.particles);
  out += ",\"level\":" + std::to_string(config.level);
  out += "},\"points\":[";
  for (size_t i = 0; i < points.size(); ++i) {
    const KindPoint& p = points[i];
    if (i > 0) out += ',';
    out += "\n  {\"kind\":" + std::to_string(p.kind);
    out += ",\"qps\":" + FormatDouble(p.qps);
    out += ",\"p50_us\":" + FormatDouble(p.p50_us);
    out += ",\"p99_us\":" + FormatDouble(p.p99_us);
    out += ",\"touched\":" + std::to_string(p.touched);
    out += ",\"pruned\":" + std::to_string(p.pruned);
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

/// Every number following an exact `"key":` occurrence, in document
/// order — the scoreboard's keys are chosen so no key is a quoted prefix
/// of another (see master_throughput.cpp).
std::vector<double> JsonNumbers(const std::string& json,
                                const std::string& key) {
  std::vector<double> out;
  const std::string needle = "\"" + key + "\":";
  size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    out.push_back(std::strtod(json.c_str() + pos, nullptr));
  }
  return out;
}

bool ConfigMatches(const std::string& baseline, const char* key,
                   int64_t current) {
  const std::vector<double> values = JsonNumbers(baseline, key);
  if (values.size() != 1 || static_cast<int64_t>(values[0]) != current) {
    std::fprintf(stderr,
                 "bench-check: config mismatch on \"%s\" (baseline %s, "
                 "current %lld) — regenerate the baseline with "
                 "tools/bench_check.sh --update\n",
                 key,
                 values.empty() ? "missing" : FormatDouble(values[0]).c_str(),
                 static_cast<long long>(current));
    return false;
  }
  return true;
}

/// Lower-bound throughput gate: each baseline kind must be matched by the
/// same kind in the current run whose queries/s is at least
/// (1 - tolerance) of the recorded value. Only slowdowns fail.
int CheckAgainstBaseline(const std::string& path, const BenchConfig& config,
                         const std::vector<KindPoint>& points,
                         double tolerance_pct) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "bench-check: cannot open baseline %s\n",
                 path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string baseline = buffer.str();

  bool ok = true;
  ok &= ConfigMatches(baseline, "elements", config.elements);
  ok &= ConfigMatches(baseline, "keys", config.keys);
  ok &= ConfigMatches(baseline, "nodes", config.nodes);
  ok &= ConfigMatches(baseline, "replication", config.replication);
  ok &= ConfigMatches(baseline, "repeats", config.repeats);
  ok &= ConfigMatches(baseline, "particles", config.particles);
  ok &= ConfigMatches(baseline, "level", config.level);
  if (!ok) return 1;

  const std::vector<double> base_kinds = JsonNumbers(baseline, "kind");
  const std::vector<double> base_qps = JsonNumbers(baseline, "qps");
  if (base_kinds.empty() || base_kinds.size() != base_qps.size()) {
    std::fprintf(stderr, "bench-check: malformed baseline %s\n", path.c_str());
    return 1;
  }

  const double floor_fraction = 1.0 - tolerance_pct / 100.0;
  int failures = 0;
  for (size_t i = 0; i < base_kinds.size(); ++i) {
    const uint32_t kind = static_cast<uint32_t>(base_kinds[i]);
    const KindPoint* current = nullptr;
    for (const KindPoint& p : points) {
      if (p.kind == kind) current = &p;
    }
    const std::string_view name = QueryKindName(static_cast<QueryKind>(kind));
    if (current == nullptr) {
      std::fprintf(stderr,
                   "bench-check: FAIL kind=%.*s missing from the current "
                   "run\n",
                   static_cast<int>(name.size()), name.data());
      ++failures;
      continue;
    }
    const double floor = base_qps[i] * floor_fraction;
    const bool pass = current->qps >= floor;
    std::printf("bench-check: %s kind=%-6.*s %.1f queries/s (baseline %.1f, "
                "floor %.1f)\n",
                pass ? "ok  " : "FAIL", static_cast<int>(name.size()),
                name.data(), current->qps, base_qps[i], floor);
    if (!pass) ++failures;
  }
  if (failures > 0) {
    std::fprintf(stderr,
                 "bench-check: %d kind(s) regressed past %.0f%% tolerance\n",
                 failures, tolerance_pct);
    return 1;
  }
  std::printf("bench-check: all %zu kinds within %.0f%% of the baseline\n",
              base_kinds.size(), tolerance_pct);
  return 0;
}

/// Runs one plan `repeats` times over the message transport and folds the
/// wall-clock latencies into a KindPoint. Every gather must stay
/// balanced; the last result's selector accounting is recorded.
KindPoint MeasureKind(InProcessCluster& cluster, const QueryPlan& plan,
                      uint64_t repeats) {
  GatherOptions options;
  options.transport = GatherTransport::kMessage;
  options.codec = WireCodecKind::kCompact;
  options.max_attempts = 3;
  std::vector<double> latencies;
  latencies.reserve(repeats);
  KindPoint point;
  point.kind = static_cast<uint32_t>(plan.kind);
  point.repeats = repeats;
  double total_us = 0.0;
  for (uint64_t i = 0; i < repeats; ++i) {
    const GatherResult r = cluster.Gather(plan, options);
    KV_CHECK(r.completed + r.failed == r.subqueries);
    KV_CHECK(!r.partial);
    latencies.push_back(r.wall_us);
    total_us += r.wall_us;
    point.touched = r.partitions_touched;
    point.pruned = r.partitions_pruned;
  }
  point.qps = total_us > 0.0 ? static_cast<double>(repeats) * 1e6 / total_us
                             : 0.0;
  point.p50_us = Percentile(latencies, 0.50);
  point.p99_us = Percentile(latencies, 0.99);
  return point;
}

int Run(int argc, char** argv) {
  int64_t elements = 8000;
  int64_t keys = 48;
  int64_t nodes = 4;
  int64_t replication = 2;
  int64_t repeats = 30;
  int64_t particles = 20000;
  int64_t level = 4;
  std::string json_out;
  std::string check_against;
  double tolerance_pct = 60.0;
  CliFlags flags;
  flags.Add("elements", &elements, "total elements in the uniform table");
  flags.Add("keys", &keys, "partitions in the uniform table");
  flags.Add("nodes", &nodes, "cluster size");
  flags.Add("replication", &replication, "copies of every partition");
  flags.Add("repeats", &repeats, "gathers per query kind");
  flags.Add("particles", &particles, "particle count behind the box query");
  flags.Add("level", &level, "D8tree depth for the box query");
  flags.Add("json-out", &json_out, "write the scoreboard as JSON to FILE");
  flags.Add("check-against", &check_against,
            "compare this run against a baseline scoreboard JSON");
  flags.Add("tolerance-pct", &tolerance_pct,
            "allowed queries/s drop vs the baseline before failing");
  if (!flags.Parse(argc, argv)) return 1;
  if (tolerance_pct < 0.0 || tolerance_pct >= 100.0) {
    std::fprintf(stderr, "--tolerance-pct must be in [0, 100)\n");
    return 1;
  }
  if (replication < 1 || replication > nodes) {
    std::fprintf(stderr, "--replication must be in [1, nodes]\n");
    return 1;
  }
  if (level < 1 || level > 8) {
    std::fprintf(stderr, "--level must be in [1, 8]\n");
    return 1;
  }

  bench::Banner(
      "Query mix: four plans, one gather engine",
      "the generic engine serves range scans, top-k, and D8tree box "
      "queries at rates comparable to the paper's count-by-type "
      "aggregation, and the box plan's pruning touches a fraction of "
      "the candidate partitions",
      std::to_string(keys) + " partitions x " + std::to_string(elements) +
          " elements + " + std::to_string(particles) + " particles, " +
          std::to_string(nodes) + " nodes, replication " +
          std::to_string(replication));

  InProcessCluster cluster(static_cast<uint32_t>(nodes),
                           PlacementKind::kDhtRandom, StoreOptions{}, 7,
                           static_cast<uint32_t>(replication));

  // The uniform table behind count/scan/topk.
  const WorkloadSpec workload = UniformWorkload(
      static_cast<uint64_t>(elements), static_cast<uint64_t>(keys));
  uint64_t part_seed = 0;
  for (const PartitionRef& part : workload.partitions) {
    for (uint32_t j = 0; j < part.elements; ++j) {
      Column column;
      column.clustering = j;
      column.type_id = j % 8;
      column.payload = MakePayload(part_seed, j, 24);
      KV_CHECK(cluster.Put(workload.table, part.key, std::move(column)).ok());
    }
    ++part_seed;
  }

  // The denormalized D8tree behind the box query: every non-empty cube of
  // every level becomes one partition of "cubes".
  AlyaParams params;
  params.particles = static_cast<uint64_t>(particles);
  params.seed = 17;
  const std::vector<Particle> cloud = GenerateAlyaParticles(params);
  const D8Tree tree(cloud, static_cast<uint32_t>(level));
  for (const D8Tree::CubeRef& cube : tree.AllCubes()) {
    const std::string key = CubeKey(cube.level, cube.morton);
    for (const uint64_t id : tree.CubeParticles(cube.level, cube.morton)) {
      Column column;
      column.clustering = id;
      column.type_id = cloud[id].type;
      column.payload = MakePayload(cube.morton, id, kParticlePayloadBytes);
      KV_CHECK(cluster.Put("cubes", key, std::move(column)).ok());
    }
  }
  cluster.FlushAll();

  const uint32_t per_part = workload.partitions.front().elements;
  ScanSpec scan;
  scan.start = per_part / 4;
  scan.end = (3 * per_part) / 4;
  scan.limit = 256;
  TopKSpec topk;
  topk.k = 32;
  D8Tree::Box box;
  box.min_x = 0.3f;
  box.min_y = 0.3f;
  box.min_z = 0.3f;
  box.max_x = 0.7f;
  box.max_y = 0.7f;
  box.max_z = 0.7f;
  const uint32_t target_keysize = static_cast<uint32_t>(
      std::max<uint64_t>(1, tree.particle_count() >>
                                (3 * static_cast<uint32_t>(level))));

  const std::vector<QueryPlan> plans = {
      MakeCountPlan(workload),
      MakeScanPlan(workload, scan),
      MakeTopKPlan(workload, topk),
      MakeBoxPlan(tree, "cubes", box, target_keysize),
  };
  std::vector<KindPoint> points;
  points.reserve(plans.size());
  for (const QueryPlan& plan : plans) {
    points.push_back(
        MeasureKind(cluster, plan, static_cast<uint64_t>(repeats)));
  }

  TablePrinter table(
      {"kind", "gathers", "queries/s", "p50", "p99", "touched", "pruned"});
  for (const KindPoint& p : points) {
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.0f", p.qps);
    table.AddRow({std::string(QueryKindName(static_cast<QueryKind>(p.kind))),
                  TablePrinter::Cell(static_cast<int64_t>(p.repeats)),
                  std::string(rate), FormatMicros(p.p50_us),
                  FormatMicros(p.p99_us),
                  TablePrinter::Cell(static_cast<int64_t>(p.touched)),
                  TablePrinter::Cell(static_cast<int64_t>(p.pruned))});
  }
  table.Print();
  const KindPoint& box_point = points.back();
  std::printf(
      "\nall four kinds rode the same message-transport gather loop; the "
      "box plan touched %llu of %llu candidate cubes (%llu pruned by the "
      "D8tree index)\n",
      static_cast<unsigned long long>(box_point.touched),
      static_cast<unsigned long long>(box_point.touched + box_point.pruned),
      static_cast<unsigned long long>(box_point.pruned));

  const BenchConfig config{elements, keys,      nodes, replication,
                           repeats,  particles, level};
  if (!json_out.empty()) {
    std::ofstream file(json_out);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", json_out.c_str());
      return 1;
    }
    file << ScoreboardJson(config, points);
    if (!file.good()) {
      std::fprintf(stderr, "write failed: %s\n", json_out.c_str());
      return 1;
    }
    std::printf("scoreboard written to %s\n", json_out.c_str());
  }
  if (!check_against.empty()) {
    return CheckAgainstBaseline(check_against, config, points, tolerance_pct);
  }
  return 0;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Run(argc, argv); }
