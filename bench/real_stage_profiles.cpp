// Real-path stage profiles and codec cost (Section V-B on real data).
//
// Paper setup: the prototype's master initially serialized messages with
// Java's default serialization — ~150 us of CPU per message and ~7.5 MB
// of wire traffic for a fine-grained query — and dropping in Kryo cut
// that to ~19 us and ~0.9 MB, an ~8x reduction that moved the master
// saturation point.
//
// This bench replays that axis on the real data path: the same
// fine-grained scatter/gather runs once per codec (tagged frames carry
// type and field names like Java serialization; compact frames carry
// registered ids like Kryo), measuring actual encoded bytes on the wire
// and actual serialization CPU, plus the real four-stage breakdown
// (master-to-slave / in-queue / in-db / slave-to-master) that only the
// message transport can time.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/in_process_cluster.hpp"
#include "common/check.hpp"
#include "common/cli.hpp"
#include "store/row.hpp"
#include "trace/stage_trace.hpp"

namespace kvscale {
namespace {

struct CodecRun {
  std::string label;
  GatherResult result;
  Micros makespan = 0.0;
};

CodecRun RunOnce(InProcessCluster& cluster, const WorkloadSpec& workload,
                 WireCodecKind codec, bool batch, uint32_t workers,
                 bool print_stages) {
  StageTracer stages;
  cluster.AttachStageTracer(&stages);
  GatherOptions options;
  options.transport = GatherTransport::kMessage;
  options.codec = codec;
  options.batch = batch;
  options.workers_per_node = workers;
  CodecRun run;
  run.label = std::string(WireCodecName(codec)) +
              (batch ? " batched" : " per-message");
  run.result = cluster.CountByTypeAll(workload, options);
  run.makespan = stages.Makespan();
  cluster.AttachStageTracer(nullptr);

  if (print_stages) {
    bench::Header("four real stages, " + run.label);
    std::printf("%s", stages.SummaryReport().c_str());
    std::printf("makespan %s over %zu sub-queries\n",
                FormatMicros(run.makespan).c_str(), stages.size());
  }
  return run;
}

int Run(int argc, char** argv) {
  int64_t nodes = 4;
  int64_t partitions = 2000;
  int64_t columns = 2;
  int64_t workers = 2;
  int64_t seed = 7;
  CliFlags flags;
  flags.Add("nodes", &nodes, "cluster size");
  flags.Add("partitions", &partitions,
            "fine-grained partitions (one sub-query each)");
  flags.Add("columns", &columns, "columns per partition");
  flags.Add("workers", &workers, "worker threads per node");
  flags.Add("seed", &seed, "placement seed");
  if (!flags.Parse(argc, argv)) return 1;

  bench::Banner(
      "Real-path stage profiles + codec cost (Section V-B)",
      "default Java serialization cost ~150 us/message and ~7.5 MB per "
      "fine-grained query; Kryo cut that to ~19 us and ~0.9 MB (~8x)",
      "real scatter/gather through encoded frames, tagged vs compact, " +
          std::to_string(partitions) + " sub-queries on " +
          std::to_string(nodes) + " nodes");

  InProcessCluster cluster(static_cast<uint32_t>(nodes),
                           PlacementKind::kDhtRandom, StoreOptions{},
                           static_cast<uint64_t>(seed));
  WorkloadSpec workload;
  workload.table = "t";
  for (int64_t p = 0; p < partitions; ++p) {
    const std::string key = "q" + std::to_string(p);
    for (int64_t c = 0; c < columns; ++c) {
      Column column;
      column.clustering = static_cast<uint64_t>(c);
      column.type_id = static_cast<uint64_t>(c % 5);
      column.payload = MakePayload(static_cast<uint64_t>(p),
                                   static_cast<uint64_t>(c), 24);
      KV_CHECK(cluster.Put(workload.table, key, std::move(column)).ok());
    }
    workload.partitions.push_back(
        PartitionRef{key, static_cast<uint32_t>(columns)});
  }
  cluster.FlushAll();
  // Warm the block cache so the in-db stage is comparable across runs.
  cluster.CountByTypeAll(workload);

  const CodecRun tagged =
      RunOnce(cluster, workload, WireCodecKind::kTagged, false,
              static_cast<uint32_t>(workers), true);
  const CodecRun compact =
      RunOnce(cluster, workload, WireCodecKind::kCompact, false,
              static_cast<uint32_t>(workers), true);
  const CodecRun compact_batched =
      RunOnce(cluster, workload, WireCodecKind::kCompact, true,
              static_cast<uint32_t>(workers), false);

  bench::Header("codec cost per fine-grained query");
  TablePrinter table({"codec", "request bytes", "B/sub-query",
                      "encode us/msg", "encode total", "frames"});
  const auto add = [&](const CodecRun& run) {
    const double subqueries = static_cast<double>(run.result.subqueries);
    // Requests and replies are each one encode; normalize per message.
    const double messages =
        static_cast<double>(run.result.wire_frames_sent) + subqueries;
    table.AddRow(
        {run.label,
         TablePrinter::Cell(static_cast<int64_t>(run.result.wire_bytes_sent)),
         TablePrinter::Cell(
             static_cast<double>(run.result.wire_bytes_sent) / subqueries, 1),
         TablePrinter::Cell(run.result.wire_encode_us / messages, 2),
         FormatMicros(run.result.wire_encode_us),
         TablePrinter::Cell(
             static_cast<int64_t>(run.result.wire_frames_sent))});
  };
  add(tagged);
  add(compact);
  add(compact_batched);
  table.Print();

  const double byte_ratio =
      static_cast<double>(tagged.result.wire_bytes_sent) /
      static_cast<double>(compact.result.wire_bytes_sent);
  const double encode_ratio =
      tagged.result.wire_encode_us / compact.result.wire_encode_us;
  std::printf(
      "\ntagged sends %.1fx the bytes of compact (paper: 7.5 MB vs 0.9 MB, "
      "8.3x)\n",
      byte_ratio);
  std::printf(
      "tagged burns %.1fx the serialization CPU of compact (paper: 150 us "
      "vs 19 us, 7.9x)\n",
      encode_ratio);
  std::printf("batching compact frames cuts %llu sends to %llu (%.1fx fewer "
              "syscalls on a real wire)\n",
              static_cast<unsigned long long>(compact.result.wire_frames_sent),
              static_cast<unsigned long long>(
                  compact_batched.result.wire_frames_sent),
              static_cast<double>(compact.result.wire_frames_sent) /
                  static_cast<double>(
                      compact_batched.result.wire_frames_sent));
  if (byte_ratio < 5.0) {
    std::printf("WARNING: byte ratio %.1fx is below the expected 5x\n",
                byte_ratio);
    return 1;
  }
  if (encode_ratio <= 1.0) {
    std::printf("WARNING: compact encode was not faster than tagged\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Run(argc, argv); }
