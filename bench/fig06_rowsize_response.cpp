// Figure 6 — Response time versus row size (Formula 6).
//
// Paper setup: stratified sampling of rows by size, single-request reads in
// random order, response time plotted against elements per row. Paper
// result: piecewise-linear with a discontinuity at ~1425 elements — the
// row size where Cassandra's column_index_size_in_kb (64 KB) starts
// building a column index. Fitted model:
//   t(ms) = 1.163 + 0.0387 k (k <= 1425) | 0.773 + 0.0439 k (k > 1425).
//
// This bench runs the experiment twice:
//  (a) against the calibrated simulator (the timing stand-in for the
//      authors' Cassandra cluster), refitting the segmented regression and
//      checking it recovers Formula 6;
//  (b) against this library's *real* storage engine, showing the same
//      structural threshold: rows <= 64 KB carry no column index (whole-row
//      decodes), larger rows do (block-granular access) — reported via read
//      probes, since absolute wall-clock depends on the host machine.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "model/calibrator.hpp"
#include "store/local_store.hpp"
#include "workload/alya.hpp"

namespace kvscale {
namespace {

void SimulatorSweep(uint64_t samples_per_stratum, uint64_t repetitions) {
  bench::Header("(a) calibrated simulator sweep + segmented refit");
  Rng rng(2017);
  std::vector<CalibrationSample> samples;
  TablePrinter table({"row size", "median time", "model (F6)"});

  // The paper: "we execute several repetitions of our test reading in
  // random order the rows we selected previously" — the median over
  // repetitions tames the heavy-tailed service noise enough for the
  // breakpoint scan to see the ~12% step at 1425 elements.
  auto median_time = [&](double keysize) {
    std::vector<double> times;
    times.reserve(repetitions);
    for (uint64_t rep = 0; rep < repetitions; ++rep) {
      ClusterConfig config;
      config.nodes = 1;
      config.db_concurrency = 1;  // isolated single requests
      config.gc.quadratic_us_per_element2 = 0.0;
      config.seed = rng.Next();
      WorkloadSpec spec;
      spec.partitions = {
          PartitionRef{"probe", static_cast<uint32_t>(keysize)}};
      const auto run = RunDistributedQuery(config, spec);
      times.push_back(run.tracer.traces()[0].StageDuration(Stage::kInDb));
    }
    std::sort(times.begin(), times.end());
    return times[times.size() / 2];
  };

  for (uint32_t stratum = 0; stratum < 20; ++stratum) {
    const double lo = stratum * 500.0 + 1.0;
    RunningSummary stratum_times;
    double mean_keysize = 0;
    for (uint64_t s = 0; s < samples_per_stratum; ++s) {
      const double keysize = rng.Uniform(lo, lo + 499.0);
      const Micros t = median_time(keysize);
      samples.push_back(CalibrationSample{keysize, t});
      stratum_times.Add(t);
      mean_keysize += keysize;
    }
    mean_keysize /= static_cast<double>(samples_per_stratum);
    table.AddRow({TablePrinter::Cell(mean_keysize, 0),
                  FormatMicros(stratum_times.mean()),
                  FormatMicros(DbModel().QueryTime(mean_keysize))});
  }
  table.Print();

  const SegmentedFit fit = FitQueryTimeModel(samples);
  std::printf("\nrefit: %s\n", fit.ToString().c_str());
  std::printf("paper Formula 6: breakpoint 1425; lower 1163+38.7k us; "
              "upper 773+43.9k us\n");
  std::printf("recovered breakpoint: %.0f elements (paper: 1425)\n",
              fit.breakpoint);
}

void RealStoreSweep() {
  bench::Header("(b) real storage engine: the 64 KB column-index threshold");
  StoreOptions options;
  LocalStore store(options);
  Table& table = store.GetOrCreateTable("probe");

  TablePrinter report({"row elements", "encoded size", "column index",
                       "blocks decoded (full read)",
                       "blocks decoded (10-element slice)"});
  for (uint32_t elements :
       {100u, 500u, 1000u, 1400u, 1500u, 2000u, 4000u, 10000u}) {
    const std::string key = "row-" + std::to_string(elements);
    for (uint32_t i = 0; i < elements; ++i) {
      Column c;
      c.clustering = i;
      c.type_id = i % 8;
      c.payload = MakePayload(elements, i, kParticlePayloadBytes);
      table.Put(key, std::move(c));
    }
    table.Flush();

    ReadProbe full;
    KV_CHECK(table.GetPartition(key, &full).ok());
    ReadProbe slice;
    KV_CHECK(table.Slice(key, elements / 2, elements / 2 + 9, &slice).ok());

    report.AddRow(
        {TablePrinter::Cell(static_cast<int64_t>(elements)),
         FormatBytes(table.PartitionEncodedBytes(key)),
         slice.index_probes > 0 ? "yes" : "no",
         TablePrinter::Cell(full.blocks_decoded + full.blocks_from_cache),
         TablePrinter::Cell(slice.blocks_decoded + slice.blocks_from_cache)});
  }
  report.Print();
  std::printf(
      "\nrows <= 64 KiB (~1425 elements at ~46 B/element) have no column "
      "index: even a\n10-element slice decodes the whole row. Above the "
      "threshold the index narrows\nthe slice to one block — the "
      "structural cause of the Figure 6 discontinuity.\n");
}

void LocalWallClockSweep() {
  bench::Header(
      "(c) wall-clock calibration of the real engine (machine-dependent)");
  StoreOptions options;
  options.block_cache_bytes = 0;  // force decode work on every read
  LocalStore store(options);
  Table& table = store.GetOrCreateTable("calibration");

  std::vector<std::string> keys;
  for (uint32_t elements = 250; elements <= 10000; elements += 500) {
    const std::string key = "row-" + std::to_string(elements);
    for (uint32_t i = 0; i < elements; ++i) {
      Column c;
      c.clustering = i;
      c.type_id = i % 8;
      c.payload = MakePayload(elements, i, kParticlePayloadBytes);
      table.Put(key, std::move(c));
    }
    keys.push_back(key);
  }
  table.Flush();

  // The paper's procedure end to end, against real hardware: repeated
  // reads, medians, segmented refit. Absolute numbers are this machine's
  // (in-memory C++ engine: microseconds, not the paper's milliseconds);
  // what transfers is the *method* and the linear-in-rowsize shape.
  const auto samples = MeasureTableQueryTimes(table, keys, 7);
  const SegmentedFit segmented = FitQueryTimeModel(samples, 3);
  std::vector<double> xs, ys;
  for (const auto& s : samples) {
    xs.push_back(s.keysize);
    ys.push_back(s.micros);
  }
  const LinearFit linear = FitLinear(xs, ys);
  std::printf("local linear fit   : %s\n", linear.ToString().c_str());
  std::printf("local segmented fit: %s\n", segmented.ToString().c_str());
  std::printf(
      "note: this in-memory C++ engine has no IO discontinuity — its "
      "wall-clock response\nis linear (~%.3f us/element here), so the "
      "breakpoint scan can only latch onto\nnoise. The paper's 64 KB step "
      "is an on-disk indexing effect; in this engine it\nshows up in "
      "*block decodes* (table (b) above), not in in-memory time. Feed "
      "your\nown cluster's samples into CalibrateDbModel to get your "
      "Formula 6.\n",
      linear.slope);
}

int Run(int argc, char** argv) {
  int64_t per_stratum = 12;
  int64_t repetitions = 9;
  CliFlags flags;
  flags.Add("samples-per-stratum", &per_stratum,
            "simulator samples per 500-element row-size stratum");
  flags.Add("repetitions", &repetitions,
            "repetitions per sample (median taken)");
  if (!flags.Parse(argc, argv)) return 1;

  bench::Banner(
      "Figure 6: response time vs row size; discontinuity at ~1425 elements",
      "piecewise linear response; 64 KB column_index_size_in_kb causes a "
      "step at ~1425 elements",
      "simulator refit + real storage-engine probe");
  SimulatorSweep(static_cast<uint64_t>(per_stratum),
                 static_cast<uint64_t>(repetitions));
  RealStoreSweep();
  LocalWallClockSweep();
  return 0;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Run(argc, argv); }
