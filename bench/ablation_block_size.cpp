// Ablation — column_index_size_in_kb (the threshold behind Figure 6).
//
// Rebuilds the same rows in the real storage engine under different
// column-index thresholds and shows where the "discontinuity" moves: the
// row size at which slices stop paying whole-row decodes.
#include <cstdio>

#include "bench_util.hpp"
#include "common/check.hpp"
#include "common/cli.hpp"
#include "store/local_store.hpp"
#include "workload/alya.hpp"

namespace kvscale {
namespace {

/// Elements at which rows cross `threshold` bytes (at ~46 B/element).
uint32_t CrossoverElements(size_t threshold_bytes) {
  return static_cast<uint32_t>(threshold_bytes / 46);
}

int Run(int argc, char** argv) {
  CliFlags flags;
  if (!flags.Parse(argc, argv)) return 1;

  bench::Banner(
      "Ablation: column-index threshold (column_index_size_in_kb)",
      "Cassandra default 64 KB puts the Figure 6 step at ~1425 elements; "
      "the step follows the threshold",
      "real storage engine, 46 B/element rows");

  TablePrinter table({"threshold", "predicted crossover (elements)",
                      "row below: slice decodes", "row above: slice decodes"});
  for (size_t threshold : {16 * kKiB, 64 * kKiB, 256 * kKiB}) {
    StoreOptions options;
    options.table.segment.column_index_threshold = threshold;
    options.table.segment.block_size = std::min<size_t>(threshold, 64 * kKiB);
    LocalStore store(options);
    Table& t = store.GetOrCreateTable("probe");

    const uint32_t crossover = CrossoverElements(threshold);
    const uint32_t below = crossover * 8 / 10;
    const uint32_t above = crossover * 13 / 10;
    auto load = [&](const std::string& key, uint32_t elements) {
      for (uint32_t i = 0; i < elements; ++i) {
        Column c;
        c.clustering = i;
        c.type_id = i % 8;
        c.payload = MakePayload(elements, i, kParticlePayloadBytes);
        t.Put(key, std::move(c));
      }
    };
    load("below", below);
    load("above", above);
    t.Flush();

    ReadProbe below_probe, above_probe;
    KV_CHECK(t.Slice("below", below / 2, below / 2 + 9, &below_probe).ok());
    KV_CHECK(t.Slice("above", above / 2, above / 2 + 9, &above_probe).ok());
    table.AddRow(
        {FormatBytes(threshold), TablePrinter::Cell(static_cast<int64_t>(crossover)),
         TablePrinter::Cell(below_probe.blocks_decoded +
                            below_probe.blocks_from_cache) +
             " blocks (no index)",
         TablePrinter::Cell(above_probe.blocks_decoded +
                            above_probe.blocks_from_cache) +
             " blocks (indexed)"});
  }
  table.Print();

  std::printf(
      "\nsmaller thresholds move the step to smaller rows (more rows get "
      "an index, at\nthe cost of index footprint); larger thresholds make "
      "more of the row-size range\npay whole-row reads — exactly the "
      "trade-off behind Formula 6's two pieces.\n");
  return 0;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Run(argc, argv); }
