// Ablation — upfront plans vs navigational (dependent) queries.
//
// Section VI models the "simpler case in which the master knows all the
// keys to visit from the beginning" and flags index navigation — where
// each result decides the next reads — as the case that squeezes the
// master's logic budget. This bench quantifies the gap on a real D8tree:
// the same leaf set read (a) as an upfront plan and (b) by drilling down
// from the root, across leaf-size thresholds and master decide costs.
#include <cstdio>

#include "bench_util.hpp"
#include "cluster/navigational_sim.hpp"
#include "common/cli.hpp"
#include "workload/alya.hpp"

namespace kvscale {
namespace {

int Run(int argc, char** argv) {
  int64_t particles = 200000;
  int64_t nodes = 8;
  CliFlags flags;
  flags.Add("particles", &particles, "dataset size");
  flags.Add("nodes", &nodes, "cluster size");
  if (!flags.Parse(argc, argv)) return 1;

  bench::Banner(
      "Ablation: upfront query plan vs D8tree drill-down (Section VI)",
      "dependent requests serialise on round trips and master logic; the "
      "upfront plan only pays Formula 3",
      std::to_string(particles) + " particles, " + std::to_string(nodes) +
          " nodes, drill-down vs pre-computed leaves");

  AlyaParams params;
  params.particles = static_cast<uint64_t>(particles);
  const auto cloud = GenerateAlyaParticles(params);
  const D8Tree tree(cloud, 6);

  TablePrinter table({"leaf threshold", "probes", "leaf reads", "depth",
                      "navigational", "upfront plan", "penalty"});
  for (uint32_t threshold : {5000u, 1000u, 200u}) {
    NavigationalConfig nav_config;
    nav_config.base.nodes = static_cast<uint32_t>(nodes);
    nav_config.base.seed = 7;
    nav_config.decide_cost = 50.0;
    const auto nav = RunNavigationalQuery(nav_config, {D8TreeRoot(tree)},
                                          D8TreeDrillDown(tree, threshold));

    // The upfront plan reads the same leaves, all known at t=0. Recover
    // the leaf set by re-walking the drill-down without the simulator.
    WorkloadSpec plan;
    plan.table = "d8.navigation";
    std::vector<PartitionRef> frontier = {D8TreeRoot(tree)};
    const ExpandFn expand = D8TreeDrillDown(tree, threshold);
    uint32_t depth = 0;
    while (!frontier.empty()) {
      std::vector<PartitionRef> next;
      for (const auto& part : frontier) {
        auto children = expand(part, depth);
        if (children.empty()) {
          plan.partitions.push_back(part);
        } else {
          next.insert(next.end(), children.begin(), children.end());
        }
      }
      frontier = std::move(next);
      ++depth;
    }
    ClusterConfig plan_config = nav_config.base;
    const auto upfront = RunDistributedQuery(plan_config, plan);

    table.AddRow(
        {TablePrinter::Cell(static_cast<int64_t>(threshold)),
         TablePrinter::Cell(nav.probes), TablePrinter::Cell(nav.leaves),
         TablePrinter::Cell(static_cast<int64_t>(nav.max_depth)),
         FormatMicros(nav.makespan), FormatMicros(upfront.makespan),
         FormatPercent(nav.makespan / upfront.makespan - 1.0)});
  }
  table.Print();

  bench::Header("master decide-cost sweep (threshold 1000)");
  TablePrinter decide({"decide cost / result", "makespan",
                       "vs 10 us"});
  Micros baseline = 0.0;
  for (Micros cost : {10.0, 100.0, 1000.0, 5000.0}) {
    NavigationalConfig config;
    config.base.nodes = static_cast<uint32_t>(nodes);
    config.base.seed = 7;
    config.decide_cost = cost;
    const auto run = RunNavigationalQuery(config, {D8TreeRoot(tree)},
                                          D8TreeDrillDown(tree, 1000));
    if (cost == 10.0) baseline = run.makespan;
    decide.AddRow({FormatMicros(cost), FormatMicros(run.makespan),
                   FormatPercent(run.makespan / baseline - 1.0)});
  }
  decide.Print();

  std::printf(
      "\nreading: the drill-down reads internal cubes too and pays one "
      "round trip per\nlevel plus the master's per-result decision time — "
      "the dependency structure the\npaper's Section VI flags as the hard "
      "case for the master-slave design.\n");
  return 0;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Run(argc, argv); }
