// Ablation — model sensitivity (the paper's closing claim).
//
// "we believe it can be employed when deciding which kind of hardware and
// technologies to use when creating a new cluster, as it is possible to
// use the formula to predict which hardware characteristics will influence
// performance the most" (Section IX). This bench perturbs each calibrated
// constant by ±20% and reports how the 16-node prediction, the optimal
// partition count and the master-saturation point move — i.e. which knob
// a hardware buyer should care about.
#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "model/architecture.hpp"
#include "model/optimizer.hpp"

namespace kvscale {
namespace {

struct Scenario {
  std::string name;
  QueryModel model;
};

void Report(const std::vector<Scenario>& scenarios, uint64_t elements,
            uint32_t nodes) {
  TablePrinter table({"perturbation", "T(16 nodes, opt rows)", "delta",
                      "optimal rows", "master limit (4k rows)"});
  Micros baseline = 0.0;
  for (const auto& scenario : scenarios) {
    PartitionOptimizer optimizer(scenario.model);
    const auto opt = optimizer.Optimize(elements, nodes);
    const uint32_t limit =
        MasterSaturationNodes(scenario.model, elements, 4000, 512);
    if (baseline == 0.0) baseline = opt.prediction.total;
    table.AddRow({scenario.name, FormatMicros(opt.prediction.total),
                  FormatPercent(opt.prediction.total / baseline - 1.0),
                  TablePrinter::Cell(opt.keys),
                  limit == 0 ? "> 512" : std::to_string(limit)});
  }
  table.Print();
}

int Run(int argc, char** argv) {
  int64_t elements = 1000000;
  int64_t nodes = 16;
  CliFlags flags;
  flags.Add("elements", &elements, "total elements");
  flags.Add("nodes", &nodes, "cluster size for the prediction");
  if (!flags.Parse(argc, argv)) return 1;

  bench::Banner(
      "Ablation: model sensitivity to the calibrated constants (Section IX)",
      "\"predict which hardware characteristics will influence performance "
      "the most\"",
      "each constant perturbed +/-20%, 16-node optimum re-derived");

  const MasterModel master = MasterModel::FromSerializer(KryoLikeProfile());

  std::vector<Scenario> scenarios;
  scenarios.push_back({"baseline (paper constants)",
                       QueryModel(DbModel{}, master)});

  // DB per-element cost (Formula 6 slopes): disk/CPU speed of the nodes.
  for (double factor : {0.8, 1.2}) {
    DbModelParams params;
    params.small_slope *= factor;
    params.large_slope *= factor;
    char name[64];
    std::snprintf(name, sizeof(name), "db slope x%.1f (node speed)", factor);
    scenarios.push_back({name, QueryModel(DbModel(params), master)});
  }
  // DB fixed per-request cost (Formula 6 intercepts): request overhead.
  for (double factor : {0.8, 1.2}) {
    DbModelParams params;
    params.small_intercept *= factor;
    params.large_intercept *= factor;
    char name[64];
    std::snprintf(name, sizeof(name), "db intercept x%.1f (req overhead)",
                  factor);
    scenarios.push_back({name, QueryModel(DbModel(params), master)});
  }
  // Parallelism headroom (Formula 7 intercept): cores / IO queue depth.
  for (double factor : {0.8, 1.2}) {
    ParallelismModel::Params params;
    params.intercept *= factor;
    char name[64];
    std::snprintf(name, sizeof(name), "speedup ceiling x%.1f (cores)",
                  factor);
    scenarios.push_back(
        {name,
         QueryModel(DbModel(DbModelParams{}, ParallelismModel(params)),
                    master)});
  }
  // Master per-message cost (Formula 3): serialization / NIC stack.
  for (double factor : {0.8, 1.2}) {
    MasterModel::Params params = master.params();
    params.time_per_message *= factor;
    params.time_per_result *= factor;
    char name[64];
    std::snprintf(name, sizeof(name), "t_msg x%.1f (serialization)", factor);
    scenarios.push_back(
        {name, QueryModel(DbModel{}, MasterModel(params))});
  }

  Report(scenarios, static_cast<uint64_t>(elements),
         static_cast<uint32_t>(nodes));

  std::printf(
      "\nreading: at this scale the query time tracks the DB constants "
      "(slope ~ linearly,\nintercept through the optimizer's row-size "
      "choice) and the parallelism ceiling,\nwhile t_msg only moves the "
      "master-saturation point — exactly the paper's advice\nthat the "
      "right hardware investment depends on which term of Formula 2 binds "
      "you.\n");
  return 0;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Run(argc, argv); }
