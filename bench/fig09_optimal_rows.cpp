// Figure 9 — Optimal number of rows and the predicted time.
//
// Paper setup: an optimizer over Formula 2 picks the partition count per
// cluster size. Paper result: Cassandra alone performs best near ~3300
// rows for the 1M-element query, but the optimizer trades database
// efficiency for balance and raises the row count as nodes are added.
#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "model/optimizer.hpp"

namespace kvscale {
namespace {

int Run(int argc, char** argv) {
  int64_t elements = 1000000;
  CliFlags flags;
  flags.Add("elements", &elements, "total elements");
  if (!flags.Parse(argc, argv)) return 1;

  bench::Banner(
      "Figure 9: optimal number of rows and predicted time per cluster size",
      "single-node optimum ~3300 rows; optimal row count grows with nodes",
      "PartitionOptimizer over Formula 2, optimised master");

  PartitionOptimizer optimizer(bench::PaperQueryModel(true));
  const auto sweep = optimizer.Sweep(static_cast<uint64_t>(elements),
                                     {1, 2, 4, 8, 16, 32});

  TablePrinter table({"nodes", "optimal rows", "elements/row",
                      "predicted time", "bottleneck"});
  for (const auto& opt : sweep) {
    table.AddRow({TablePrinter::Cell(static_cast<int64_t>(opt.nodes)),
                  TablePrinter::Cell(opt.keys),
                  TablePrinter::Cell(opt.prediction.keysize, 0),
                  FormatMicros(opt.prediction.total),
                  opt.prediction.BottleneckName()});
  }
  table.Print();

  std::printf("\nsingle-node optimum: %llu rows (paper: ~3300)\n",
              static_cast<unsigned long long>(sweep.front().keys));
  std::printf("16-node optimum: %llu rows — %.1fx the single-node count\n",
              static_cast<unsigned long long>(sweep[4].keys),
              static_cast<double>(sweep[4].keys) /
                  static_cast<double>(sweep.front().keys));
  return 0;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Run(argc, argv); }
