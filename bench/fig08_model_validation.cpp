// Figure 8 — Observed versus predicted time (model validation).
//
// Paper setup: the measured times of the three workloads across cluster
// sizes compared with Formula 2's predictions; the coarse-grained workload
// needed a GC correction ("dbModel+GC") to match. Paper result: high
// estimation precision given the run-to-run variance.
//
// Here the "observed" values come from the simulator (which includes the
// GC-churn term, noise, network and queueing that the bare model omits)
// and the two lines are the model without and with the GC correction.
#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "model/monte_carlo.hpp"
#include "workload/granularity.hpp"

namespace kvscale {
namespace {

int Run(int argc, char** argv) {
  int64_t elements = 1000000;
  int64_t repeats = 5;
  CliFlags flags;
  flags.Add("elements", &elements, "total elements");
  flags.Add("repeats", &repeats, "seeds per configuration");
  if (!flags.Parse(argc, argv)) return 1;

  bench::Banner(
      "Figure 8: observed (simulated) vs predicted time",
      "model tracks measurements closely; coarse needs the +GC correction",
      "optimised master; model = Formula 2; GC model = quadratic churn");

  const QueryModel model = bench::PaperQueryModel(true);
  // The GC correction mirrors the simulator's churn term evaluated on the
  // most loaded node: quadratic in row size.
  const double gc_quadratic = ClusterConfig{}.gc.quadratic_us_per_element2;

  RunningSummary abs_rel_error_db, abs_rel_error_gc;
  for (auto granularity : {Granularity::kCoarse, Granularity::kMedium,
                           Granularity::kFine}) {
    const WorkloadSpec workload = MakeUniformWorkload(granularity, elements);
    const uint64_t keys = workload.partitions.size();
    const double keysize = workload.MeanKeysize();
    bench::Header(std::string(GranularityName(granularity)));

    TablePrinter table({"nodes", "observed", "dbModel", "dbModel+GC",
                        "MC p50..p90", "err", "err+GC"});
    Rng mc_rng(99);
    for (uint32_t nodes : bench::PaperNodeCounts()) {
      const auto run =
          bench::RunRepeated(bench::PaperClusterConfig(nodes, true, 1),
                             workload, static_cast<uint32_t>(repeats));
      const QueryPrediction base = model.Predict(elements, keys, nodes);
      // +GC: add the churn the simulator charges the slowest slave.
      const Micros gc_per_request = gc_quadratic * keysize * keysize;
      const Micros with_gc =
          std::max(base.master_issue,
                   base.slowest_slave + gc_per_request * base.key_max);
      // Monte-Carlo bands (with the GC term) sample the placement draw the
      // smooth formula averages away.
      const QueryModel mc_model =
          model.WithGc(GcModel{gc_per_request / keysize});
      const auto bands =
          PredictDistribution(mc_model, elements, keys, nodes, 400, mc_rng);
      const double err = run.mean_makespan / base.total - 1.0;
      const double err_gc = run.mean_makespan / with_gc - 1.0;
      abs_rel_error_db.Add(std::abs(err));
      abs_rel_error_gc.Add(std::abs(err_gc));
      table.AddRow({TablePrinter::Cell(static_cast<int64_t>(nodes)),
                    FormatMicros(run.mean_makespan), FormatMicros(base.total),
                    FormatMicros(with_gc),
                    FormatMicros(bands.p50) + ".." + FormatMicros(bands.p90),
                    FormatPercent(err), FormatPercent(err_gc)});
    }
    table.Print();
  }

  std::printf(
      "\nmean |relative error|: %.1f%% without GC, %.1f%% with GC "
      "(paper: GC correction \"notably increasing the model accuracy\" for "
      "coarse)\n",
      abs_rel_error_db.mean() * 100.0, abs_rel_error_gc.mean() * 100.0);
  std::printf(
      "the MC column samples the placement draw Formula 5 averages away: "
      "where the\npoint model under-predicts (coarse at many nodes), the "
      "observed time falls\ninside the p50..p90 band.\n");
  return 0;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Run(argc, argv); }
