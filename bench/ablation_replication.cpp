// Ablation — replication and replica selection (Section VIII).
//
// The paper's related-work discussion weighs three designs:
//   * Cassandra's default: read the primary, fall back only on failure —
//     keeps caches warm but pays the full single-choice imbalance;
//   * Kinesis-style spreading (r replicas, pick per request) — flattens
//     load but multiplies cold reads ("spreading calls to different
//     servers results in a higher page fault number");
//   * least-loaded selection with real-time vs stale load statistics
//     ("approximated load statistics ... might not detect short living
//     imbalances").
// This bench quantifies each on the imbalance-prone coarse workload,
// including a re-read pass so cache affinity matters, plus the failure
// story: replication + retries surviving a mid-query node loss.
#include <cstdio>

#include "bench_util.hpp"
#include "cluster/replicated_sim.hpp"
#include "common/cli.hpp"
#include "workload/granularity.hpp"

namespace kvscale {
namespace {

int Run(int argc, char** argv) {
  int64_t elements = 1000000;
  int64_t nodes = 16;
  int64_t passes = 3;
  CliFlags flags;
  flags.Add("elements", &elements, "elements per pass");
  flags.Add("nodes", &nodes, "cluster size");
  flags.Add("passes", &passes, "read passes (re-reads exercise caches)");
  if (!flags.Parse(argc, argv)) return 1;

  bench::Banner(
      "Ablation: replication & replica selection (Section VIII)",
      "primary reads keep caches warm but inherit the balls-into-bins "
      "imbalance; spreading flattens load at the cost of cold reads; "
      "stale load info gives back part of the win",
      "coarse workload (100 keys/pass), replication 3, " +
          std::to_string(passes) + " passes, " + std::to_string(nodes) +
          " nodes");

  const WorkloadSpec workload = RepeatWorkload(
      MakeUniformWorkload(Granularity::kCoarse, elements),
      static_cast<uint32_t>(passes));

  TablePrinter table({"read policy", "makespan", "imbalance", "warm reads",
                      "vs primary"});
  Micros baseline = 0.0;
  for (ReadPolicy policy :
       {ReadPolicy::kPrimary, ReadPolicy::kRoundRobinReplica,
        ReadPolicy::kRandomReplica, ReadPolicy::kLeastLoaded,
        ReadPolicy::kStaleLeastLoaded}) {
    ReplicatedClusterConfig config;
    config.base.nodes = static_cast<uint32_t>(nodes);
    config.base.seed = 7;
    config.replication = 3;
    config.read_policy = policy;
    config.load_snapshot_interval = 50.0 * kMillisecond;
    const auto result = RunReplicatedQuery(config, workload);
    if (policy == ReadPolicy::kPrimary) baseline = result.makespan;
    table.AddRow({std::string(ReadPolicyName(policy)),
                  FormatMicros(result.makespan),
                  FormatPercent(result.RequestImbalance()),
                  FormatPercent(result.WarmFraction()),
                  FormatPercent(result.makespan / baseline - 1.0)});
  }
  table.Print();

  bench::Header(
      "multi-read fan-out (Kinesis critique: \"question all k servers\")");
  TablePrinter fanout_table({"read fanout", "makespan", "total DB reads",
                             "vs fanout 1"});
  Micros fanout_baseline = 0.0;
  const WorkloadSpec medium =
      MakeUniformWorkload(Granularity::kMedium, elements);
  for (uint32_t fanout : {1u, 2u, 3u}) {
    ReplicatedClusterConfig config;
    config.base.nodes = static_cast<uint32_t>(nodes);
    config.base.seed = 7;
    config.replication = 3;
    config.read_fanout = fanout;
    const auto result = RunReplicatedQuery(config, medium);
    uint64_t reads = 0;
    for (uint64_t r : result.reads_per_node) reads += r;
    if (fanout == 1) fanout_baseline = result.makespan;
    fanout_table.AddRow(
        {TablePrinter::Cell(static_cast<int64_t>(fanout)),
         FormatMicros(result.makespan), TablePrinter::Cell(reads),
         FormatPercent(result.makespan / fanout_baseline - 1.0)});
  }
  fanout_table.Print();
  std::printf(
      "\"this might result in reducing k times the performance as "
      "databases system are\noften limited by the CPU\" — the k-fold DB "
      "work shows up directly.\n");

  bench::Header("failure injection: node 3 dies 50 ms into the query");
  TablePrinter failure({"replication", "completed", "lost", "retries",
                        "makespan"});
  for (uint32_t replication : {1u, 2u, 3u}) {
    ReplicatedClusterConfig config;
    config.base.nodes = static_cast<uint32_t>(nodes);
    config.base.seed = 7;
    config.replication = replication;
    config.fail_node = 3;
    config.fail_at = 50.0 * kMillisecond;
    config.request_timeout = 300.0 * kMillisecond;
    config.max_attempts = 3;
    const auto result = RunReplicatedQuery(
        config, MakeUniformWorkload(Granularity::kMedium, elements));
    failure.AddRow({TablePrinter::Cell(static_cast<int64_t>(replication)),
                    TablePrinter::Cell(result.completed),
                    TablePrinter::Cell(result.failed),
                    TablePrinter::Cell(result.retries),
                    FormatMicros(result.makespan)});
  }
  failure.Print();
  std::printf(
      "\nreading: with one copy the dead node's partitions are simply "
      "lost; with\nreplication the timeout/retry path recovers them at the "
      "cost of the timeout\nwindow — Cassandra's design point (primary + "
      "failover) in action.\n");
  return 0;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Run(argc, argv); }
