// Section V-B micro-benchmark — serialization cost and size.
//
// Paper numbers (JVM): Java default serialization ~150 us/message and
// 7.5 MB for 10k messages; Kryo ~19 us/message and 0.9 MB. Our codecs are
// C++, so absolute CPU costs are far lower; what must reproduce is the
// *structure*: the self-describing tagged codec is several times larger
// and slower than the registered compact codec. The calibrated JVM costs
// live in SerializerProfile and are reported alongside.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "wire/codec.hpp"
#include "wire/messages.hpp"
#include "wire/serializer_model.hpp"

namespace kvscale {
namespace {

SubQueryRequest Request() { return MakeRepresentativeSubQuery(1, 4242, 100); }

PartialResult ResultMessage() {
  PartialResult res;
  res.query_id = 1;
  res.sub_id = 4242;
  res.node = 7;
  for (uint32_t t = 0; t < 8; ++t) {
    res.types.push_back("t" + std::to_string(t));
    res.counts.push_back(1000 + t);
  }
  res.db_micros = 5234.5;
  return res;
}

void BM_TaggedEncodeRequest(benchmark::State& state) {
  const auto msg = Request();
  WireBuffer buf;
  for (auto _ : state) {
    buf.clear();
    TaggedCodec::Encode(msg, buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.counters["bytes"] = static_cast<double>(buf.size());
}
BENCHMARK(BM_TaggedEncodeRequest);

void BM_CompactEncodeRequest(benchmark::State& state) {
  CompactCodec codec;
  RegisterClusterMessages(codec);
  const auto msg = Request();
  WireBuffer buf;
  for (auto _ : state) {
    buf.clear();
    codec.Encode(msg, buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.counters["bytes"] = static_cast<double>(buf.size());
}
BENCHMARK(BM_CompactEncodeRequest);

void BM_TaggedDecodeRequest(benchmark::State& state) {
  WireBuffer buf;
  TaggedCodec::Encode(Request(), buf);
  for (auto _ : state) {
    auto decoded = TaggedCodec::Decode<SubQueryRequest>(buf.data());
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_TaggedDecodeRequest);

void BM_CompactDecodeRequest(benchmark::State& state) {
  CompactCodec codec;
  RegisterClusterMessages(codec);
  WireBuffer buf;
  codec.Encode(Request(), buf);
  for (auto _ : state) {
    auto decoded = codec.Decode<SubQueryRequest>(buf.data());
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_CompactDecodeRequest);

void BM_TaggedEncodeResult(benchmark::State& state) {
  const auto msg = ResultMessage();
  WireBuffer buf;
  for (auto _ : state) {
    buf.clear();
    TaggedCodec::Encode(msg, buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.counters["bytes"] = static_cast<double>(buf.size());
}
BENCHMARK(BM_TaggedEncodeResult);

void BM_CompactEncodeResult(benchmark::State& state) {
  CompactCodec codec;
  RegisterClusterMessages(codec);
  const auto msg = ResultMessage();
  WireBuffer buf;
  for (auto _ : state) {
    buf.clear();
    codec.Encode(msg, buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.counters["bytes"] = static_cast<double>(buf.size());
}
BENCHMARK(BM_CompactEncodeResult);

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) {
  std::printf(
      "--------------------------------------------------------------\n"
      "Section V-B: serialization (paper: Java 150 us & 750 B/msg vs "
      "Kryo 19 us & 90 B/msg)\n");
  {
    using namespace kvscale;
    CompactCodec codec;
    RegisterClusterMessages(codec);
    const auto req = MakeRepresentativeSubQuery(1, 4242, 100);
    const size_t tagged = TaggedEncodedSize(req);
    const size_t compact = CompactEncodedSize(codec, req);
    std::printf("encoded SubQueryRequest: tagged=%zu B, compact=%zu B "
                "(%.1fx smaller; paper ratio ~8.3x)\n",
                tagged, compact,
                static_cast<double>(tagged) / static_cast<double>(compact));
    std::printf("10k messages on the wire: tagged=%s, compact=%s "
                "(paper: 7.5 MB -> 0.9 MB incl. JVM metadata)\n",
                FormatBytes(tagged * 10000).c_str(),
                FormatBytes(compact * 10000).c_str());
    std::printf("calibrated JVM cost models: java-default %.0f us/msg, "
                "kryo-like %.0f us/msg\n",
                JavaLikeProfile().TypicalCost(),
                KryoLikeProfile().TypicalCost());
  }
  std::printf(
      "--------------------------------------------------------------\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
