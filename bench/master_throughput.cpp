// Master query throughput under concurrent clients (the real-data
// counterpart of Figure 11's saturation argument).
//
// Paper setup: Figure 11 evaluates the model until the master's send
// time exceeds the per-query database time — past that point adding
// resources stops helping because the master is the bottleneck. Here the
// same saturation is measured on the real data path: N client threads
// issue gathers through the one shared message runtime, and the table
// reports aggregate queries/s as the client count grows, for each
// replication factor. Throughput climbs while the worker pools have
// headroom and flattens once the master-side scatter/collect loop (one
// core per client, shared queues) saturates — the knee of the curve is
// this build's "single master limit". An optional admission limit caps
// the in-flight queries; shed counts then show how much offered load the
// controller refused rather than queued.
//
// Run: ./build/bench/master_throughput [--elements=40000] [--keys=100]
//      [--nodes=4] [--max-clients=16] [--queries=4] [--max-inflight=0]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/in_process_cluster.hpp"
#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/table_printer.hpp"
#include "store/row.hpp"
#include "workload/granularity.hpp"

namespace kvscale {
namespace {

int Run(int argc, char** argv) {
  int64_t elements = 40000;
  int64_t keys = 100;
  int64_t nodes = 4;
  int64_t max_clients = 16;
  int64_t queries = 4;
  int64_t workers_per_node = 2;
  int64_t max_inflight = 0;
  CliFlags flags;
  flags.Add("elements", &elements, "total elements per query");
  flags.Add("keys", &keys, "partitions per query");
  flags.Add("nodes", &nodes, "cluster size");
  flags.Add("max-clients", &max_clients, "largest client count to evaluate");
  flags.Add("queries", &queries, "queries each client issues per point");
  flags.Add("workers-per-node", &workers_per_node,
            "worker threads draining each node's queue");
  flags.Add("max-inflight", &max_inflight,
            "admission limit on concurrent queries (0 = unlimited)");
  if (!flags.Parse(argc, argv)) return 1;

  bench::Banner(
      "Master throughput: queries/s vs concurrent clients x replication",
      "Fig. 11 argues the master saturates once its per-query send work "
      "exceeds the database time; the real shared runtime shows the same "
      "knee in aggregate queries/s",
      std::to_string(keys) + " partitions x " + std::to_string(elements) +
          " elements, " + std::to_string(nodes) + " nodes, compact codec, "
          "batched scatter");

  std::vector<uint32_t> client_counts;
  for (int64_t c = 1; c <= max_clients; c *= 2) {
    client_counts.push_back(static_cast<uint32_t>(c));
  }

  TablePrinter table({"replication", "clients", "queries/s", "speedup",
                      "admitted", "shed", "queue wait"});
  for (const uint32_t replication : {1u, 2u}) {
    if (replication > static_cast<uint32_t>(nodes)) break;
    InProcessCluster cluster(static_cast<uint32_t>(nodes),
                             PlacementKind::kDhtRandom, StoreOptions{}, 7,
                             replication);
    const WorkloadSpec workload = UniformWorkload(
        static_cast<uint64_t>(elements), static_cast<uint64_t>(keys));
    uint64_t part_seed = 0;
    for (const PartitionRef& part : workload.partitions) {
      for (uint32_t j = 0; j < part.elements; ++j) {
        Column column;
        column.clustering = j;
        column.type_id = j % 8;
        column.payload = MakePayload(part_seed, j, 24);
        KV_CHECK(cluster.Put(workload.table, part.key, std::move(column)).ok());
      }
      ++part_seed;
    }
    cluster.FlushAll();

    GatherOptions options;
    options.transport = GatherTransport::kMessage;
    options.codec = WireCodecKind::kCompact;
    options.batch = true;
    options.workers_per_node = static_cast<uint32_t>(workers_per_node);
    options.max_inflight = static_cast<uint32_t>(max_inflight);

    double single_client_qps = 0.0;
    for (const uint32_t clients : client_counts) {
      const ConcurrentGatherReport report = cluster.CountByTypeAllConcurrent(
          workload, clients, static_cast<uint32_t>(queries), options);
      if (clients == 1) single_client_qps = report.queries_per_sec;
      double queue_wait_us = 0.0;
      for (const GatherResult& r : report.results) {
        queue_wait_us += r.queue_wait_us;
      }
      const uint64_t served = report.admitted > 0 ? report.admitted : 1;
      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.2fx",
                    single_client_qps > 0.0
                        ? report.queries_per_sec / single_client_qps
                        : 0.0);
      char qps[32];
      std::snprintf(qps, sizeof(qps), "%.1f", report.queries_per_sec);
      table.AddRow({TablePrinter::Cell(static_cast<int64_t>(replication)),
                    TablePrinter::Cell(static_cast<int64_t>(clients)),
                    std::string(qps), std::string(speedup),
                    TablePrinter::Cell(static_cast<int64_t>(report.admitted)),
                    TablePrinter::Cell(static_cast<int64_t>(report.shed)),
                    FormatMicros(queue_wait_us /
                                 static_cast<double>(served))});
    }
  }
  table.Print();
  std::printf(
      "\nthe knee (speedup flattening below the client count) marks where "
      "the shared master runtime saturates; replication multiplies the "
      "write volume but the gather still reads one replica per "
      "partition\n");
  return 0;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Run(argc, argv); }
