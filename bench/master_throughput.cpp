// Master query throughput under concurrent clients (the real-data
// counterpart of Figure 11's saturation argument).
//
// Paper setup: Figure 11 evaluates the model until the master's send
// time exceeds the per-query database time — past that point adding
// resources stops helping because the master is the bottleneck. Here the
// same saturation is measured on the real data path: N client threads
// issue gathers through the one shared message runtime, and the table
// reports aggregate queries/s as the client count grows, for each
// replication factor. Throughput climbs while the worker pools have
// headroom and flattens once the master-side scatter/collect loop (one
// core per client, shared queues) saturates — the knee of the curve is
// this build's "single master limit". An optional admission limit caps
// the in-flight queries; shed counts then show how much offered load the
// controller refused rather than queued.
//
// Run: ./build/bench/master_throughput [--elements=40000] [--keys=100]
//      [--nodes=4] [--max-clients=16] [--queries=4] [--max-inflight=0]
//
// Scoreboard mode: --json-out=FILE writes the measured points as JSON;
// --check-against=BASELINE compares the current run against a committed
// scoreboard and fails (exit 1) when throughput regresses past
// --tolerance-pct or the configs differ. tools/bench_check.sh wraps the
// quick-config flow.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "cluster/in_process_cluster.hpp"
#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/table_printer.hpp"
#include "stats/summary.hpp"
#include "store/row.hpp"
#include "workload/granularity.hpp"

namespace kvscale {
namespace {

/// One measured (replication, clients) cell of the scoreboard.
struct BenchPoint {
  uint32_t replication = 0;
  uint32_t clients = 0;
  double queries_per_sec = 0.0;
  double speedup = 0.0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

/// The knobs that shape the measurement; a baseline is only comparable
/// against a run with the identical config.
struct BenchConfig {
  int64_t elements = 0;
  int64_t keys = 0;
  int64_t nodes = 0;
  int64_t max_clients = 0;
  int64_t queries = 0;
  int64_t workers_per_node = 0;
  int64_t max_inflight = 0;
};

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string ScoreboardJson(const BenchConfig& config,
                           const std::vector<BenchPoint>& points) {
  std::string out = "{\"bench\":\"master_throughput\",\"config\":{";
  out += "\"elements\":" + std::to_string(config.elements);
  out += ",\"keys\":" + std::to_string(config.keys);
  out += ",\"nodes\":" + std::to_string(config.nodes);
  out += ",\"max_clients\":" + std::to_string(config.max_clients);
  out += ",\"queries\":" + std::to_string(config.queries);
  out += ",\"workers_per_node\":" + std::to_string(config.workers_per_node);
  out += ",\"max_inflight\":" + std::to_string(config.max_inflight);
  out += "},\"points\":[";
  for (size_t i = 0; i < points.size(); ++i) {
    const BenchPoint& p = points[i];
    if (i > 0) out += ',';
    out += "\n  {\"replication\":" + std::to_string(p.replication);
    out += ",\"clients\":" + std::to_string(p.clients);
    out += ",\"queries_per_sec\":" + FormatDouble(p.queries_per_sec);
    out += ",\"speedup\":" + FormatDouble(p.speedup);
    out += ",\"admitted\":" + std::to_string(p.admitted);
    out += ",\"shed\":" + std::to_string(p.shed);
    out += ",\"p50_us\":" + FormatDouble(p.p50_us);
    out += ",\"p95_us\":" + FormatDouble(p.p95_us);
    out += ",\"p99_us\":" + FormatDouble(p.p99_us);
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

/// Every number following an exact `"key":` occurrence, in document
/// order. The scoreboard's keys are chosen so no key is a quoted prefix
/// of another, which makes this targeted scan unambiguous without a
/// full JSON parser.
std::vector<double> JsonNumbers(const std::string& json,
                                const std::string& key) {
  std::vector<double> out;
  const std::string needle = "\"" + key + "\":";
  size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    out.push_back(std::strtod(json.c_str() + pos, nullptr));
  }
  return out;
}

bool ConfigMatches(const std::string& baseline, const char* key,
                   int64_t current) {
  const std::vector<double> values = JsonNumbers(baseline, key);
  if (values.size() != 1 ||
      static_cast<int64_t>(values[0]) != current) {
    std::fprintf(stderr,
                 "bench-check: config mismatch on \"%s\" (baseline %s, "
                 "current %lld) — regenerate the baseline with "
                 "tools/bench_check.sh --update\n",
                 key,
                 values.empty() ? "missing" : FormatDouble(values[0]).c_str(),
                 static_cast<long long>(current));
    return false;
  }
  return true;
}

/// Lower-bound throughput gate: each baseline point must be matched by a
/// current point at the same (replication, clients) whose queries/s is
/// at least (1 - tolerance) of the recorded value. Only slowdowns fail —
/// a faster run always passes, the baseline is refreshed explicitly.
int CheckAgainstBaseline(const std::string& path, const BenchConfig& config,
                         const std::vector<BenchPoint>& points,
                         double tolerance_pct) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "bench-check: cannot open baseline %s\n",
                 path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string baseline = buffer.str();

  bool ok = true;
  ok &= ConfigMatches(baseline, "elements", config.elements);
  ok &= ConfigMatches(baseline, "keys", config.keys);
  ok &= ConfigMatches(baseline, "nodes", config.nodes);
  ok &= ConfigMatches(baseline, "max_clients", config.max_clients);
  ok &= ConfigMatches(baseline, "queries", config.queries);
  ok &= ConfigMatches(baseline, "workers_per_node", config.workers_per_node);
  ok &= ConfigMatches(baseline, "max_inflight", config.max_inflight);
  if (!ok) return 1;

  const std::vector<double> reps = JsonNumbers(baseline, "replication");
  const std::vector<double> clients = JsonNumbers(baseline, "clients");
  const std::vector<double> qps = JsonNumbers(baseline, "queries_per_sec");
  if (reps.empty() || reps.size() != clients.size() ||
      reps.size() != qps.size()) {
    std::fprintf(stderr, "bench-check: malformed baseline %s\n", path.c_str());
    return 1;
  }

  std::map<std::pair<uint32_t, uint32_t>, double> current;
  for (const BenchPoint& p : points) {
    current[{p.replication, p.clients}] = p.queries_per_sec;
  }

  const double floor_fraction = 1.0 - tolerance_pct / 100.0;
  int failures = 0;
  for (size_t i = 0; i < reps.size(); ++i) {
    const auto key = std::make_pair(static_cast<uint32_t>(reps[i]),
                                    static_cast<uint32_t>(clients[i]));
    const auto it = current.find(key);
    if (it == current.end()) {
      std::fprintf(stderr,
                   "bench-check: FAIL replication=%u clients=%u missing from "
                   "the current run\n",
                   key.first, key.second);
      ++failures;
      continue;
    }
    const double floor = qps[i] * floor_fraction;
    const bool pass = it->second >= floor;
    std::printf("bench-check: %s replication=%u clients=%u %.1f qps "
                "(baseline %.1f, floor %.1f)\n",
                pass ? "ok  " : "FAIL", key.first, key.second, it->second,
                qps[i], floor);
    if (!pass) ++failures;
  }
  if (failures > 0) {
    std::fprintf(stderr,
                 "bench-check: %d point(s) regressed past %.0f%% tolerance\n",
                 failures, tolerance_pct);
    return 1;
  }
  std::printf("bench-check: all %zu points within %.0f%% of the baseline\n",
              reps.size(), tolerance_pct);
  return 0;
}

int Run(int argc, char** argv) {
  int64_t elements = 40000;
  int64_t keys = 100;
  int64_t nodes = 4;
  int64_t max_clients = 16;
  int64_t queries = 4;
  int64_t workers_per_node = 2;
  int64_t max_inflight = 0;
  std::string json_out;
  std::string check_against;
  double tolerance_pct = 50.0;
  CliFlags flags;
  flags.Add("elements", &elements, "total elements per query");
  flags.Add("keys", &keys, "partitions per query");
  flags.Add("nodes", &nodes, "cluster size");
  flags.Add("max-clients", &max_clients, "largest client count to evaluate");
  flags.Add("queries", &queries, "queries each client issues per point");
  flags.Add("workers-per-node", &workers_per_node,
            "worker threads draining each node's queue");
  flags.Add("max-inflight", &max_inflight,
            "admission limit on concurrent queries (0 = unlimited)");
  flags.Add("json-out", &json_out, "write the scoreboard as JSON to FILE");
  flags.Add("check-against", &check_against,
            "compare this run against a baseline scoreboard JSON");
  flags.Add("tolerance-pct", &tolerance_pct,
            "allowed throughput drop vs the baseline before failing");
  if (!flags.Parse(argc, argv)) return 1;
  if (tolerance_pct < 0.0 || tolerance_pct >= 100.0) {
    std::fprintf(stderr, "--tolerance-pct must be in [0, 100)\n");
    return 1;
  }

  bench::Banner(
      "Master throughput: queries/s vs concurrent clients x replication",
      "Fig. 11 argues the master saturates once its per-query send work "
      "exceeds the database time; the real shared runtime shows the same "
      "knee in aggregate queries/s",
      std::to_string(keys) + " partitions x " + std::to_string(elements) +
          " elements, " + std::to_string(nodes) + " nodes, compact codec, "
          "batched scatter");

  std::vector<uint32_t> client_counts;
  for (int64_t c = 1; c <= max_clients; c *= 2) {
    client_counts.push_back(static_cast<uint32_t>(c));
  }

  const BenchConfig config{elements, keys,          nodes,      max_clients,
                           queries,  workers_per_node, max_inflight};
  std::vector<BenchPoint> points;

  TablePrinter table({"replication", "clients", "queries/s", "speedup",
                      "admitted", "shed", "queue wait", "p95"});
  for (const uint32_t replication : {1u, 2u}) {
    if (replication > static_cast<uint32_t>(nodes)) break;
    InProcessCluster cluster(static_cast<uint32_t>(nodes),
                             PlacementKind::kDhtRandom, StoreOptions{}, 7,
                             replication);
    const WorkloadSpec workload = UniformWorkload(
        static_cast<uint64_t>(elements), static_cast<uint64_t>(keys));
    uint64_t part_seed = 0;
    for (const PartitionRef& part : workload.partitions) {
      for (uint32_t j = 0; j < part.elements; ++j) {
        Column column;
        column.clustering = j;
        column.type_id = j % 8;
        column.payload = MakePayload(part_seed, j, 24);
        KV_CHECK(cluster.Put(workload.table, part.key, std::move(column)).ok());
      }
      ++part_seed;
    }
    cluster.FlushAll();

    GatherOptions options;
    options.transport = GatherTransport::kMessage;
    options.codec = WireCodecKind::kCompact;
    options.batch = true;
    options.workers_per_node = static_cast<uint32_t>(workers_per_node);
    options.max_inflight = static_cast<uint32_t>(max_inflight);

    double single_client_qps = 0.0;
    for (const uint32_t clients : client_counts) {
      const ConcurrentGatherReport report = cluster.CountByTypeAllConcurrent(
          workload, clients, static_cast<uint32_t>(queries), options);
      if (clients == 1) single_client_qps = report.queries_per_sec;
      double queue_wait_us = 0.0;
      std::vector<double> latencies;
      latencies.reserve(report.results.size());
      for (const GatherResult& r : report.results) {
        queue_wait_us += r.queue_wait_us;
        if (!r.shed_by_admission) latencies.push_back(r.wall_us);
      }
      const uint64_t served = report.admitted > 0 ? report.admitted : 1;

      BenchPoint point;
      point.replication = replication;
      point.clients = clients;
      point.queries_per_sec = report.queries_per_sec;
      point.speedup = single_client_qps > 0.0
                          ? report.queries_per_sec / single_client_qps
                          : 0.0;
      point.admitted = report.admitted;
      point.shed = report.shed;
      if (!latencies.empty()) {
        point.p50_us = Percentile(latencies, 0.50);
        point.p95_us = Percentile(latencies, 0.95);
        point.p99_us = Percentile(latencies, 0.99);
      }
      points.push_back(point);

      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.2fx", point.speedup);
      char qps[32];
      std::snprintf(qps, sizeof(qps), "%.1f", report.queries_per_sec);
      table.AddRow({TablePrinter::Cell(static_cast<int64_t>(replication)),
                    TablePrinter::Cell(static_cast<int64_t>(clients)),
                    std::string(qps), std::string(speedup),
                    TablePrinter::Cell(static_cast<int64_t>(report.admitted)),
                    TablePrinter::Cell(static_cast<int64_t>(report.shed)),
                    FormatMicros(queue_wait_us / static_cast<double>(served)),
                    FormatMicros(point.p95_us)});
    }
  }
  table.Print();
  std::printf(
      "\nthe knee (speedup flattening below the client count) marks where "
      "the shared master runtime saturates; replication multiplies the "
      "write volume but the gather still reads one replica per "
      "partition\n");

  if (!json_out.empty()) {
    std::ofstream file(json_out);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", json_out.c_str());
      return 1;
    }
    file << ScoreboardJson(config, points);
    if (!file.good()) {
      std::fprintf(stderr, "write failed: %s\n", json_out.c_str());
      return 1;
    }
    std::printf("scoreboard written to %s\n", json_out.c_str());
  }
  if (!check_against.empty()) {
    return CheckAgainstBaseline(check_against, config, points, tolerance_pct);
  }
  return 0;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Run(argc, argv); }
