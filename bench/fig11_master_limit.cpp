// Figure 11 — Load distribution limits for a single master.
//
// Paper setup: the model evaluated at growing cluster sizes for a 4000-row
// query with random (DHT) distribution. Paper result: query time falls
// with nodes until the master's send time exceeds what the database needs
// to serve the requests — beyond ~70 servers (their constants) the master
// is the bottleneck and the system stops scaling. The replica-selection
// variant saturates earlier (~32 nodes), because keeping every node fed
// leaves the master almost no CPU per message.
#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "model/architecture.hpp"

namespace kvscale {
namespace {

int Run(int argc, char** argv) {
  int64_t elements = 1000000;
  int64_t keys = 4000;
  int64_t max_nodes = 128;
  CliFlags flags;
  flags.Add("elements", &elements, "total elements");
  flags.Add("keys", &keys, "partitions (paper: ~4000)");
  flags.Add("max-nodes", &max_nodes, "largest cluster to evaluate");
  if (!flags.Parse(argc, argv)) return 1;

  bench::Banner(
      "Figure 11: single-master limit under random distribution",
      "query time decreases with nodes until the master's send time "
      "crosses the DB time (paper: ~70 servers); replica selection "
      "saturates earlier (~32)",
      "model sweep, 4000 rows, 19 us/message");

  const QueryModel model = bench::PaperQueryModel(true);
  const auto profile =
      ScalingProfile(model, static_cast<uint64_t>(elements),
                     static_cast<uint64_t>(keys),
                     static_cast<uint32_t>(max_nodes));

  TablePrinter table({"nodes", "query time", "master time", "slave time",
                      "bound by"});
  for (uint32_t n : {1u, 2u, 4u, 8u, 16u, 32u, 48u, 64u, 80u, 96u, 112u,
                     128u}) {
    if (n > profile.size()) break;
    const auto& p = profile[n - 1];
    table.AddRow({TablePrinter::Cell(static_cast<int64_t>(p.nodes)),
                  FormatMicros(p.query_time), FormatMicros(p.master_time),
                  FormatMicros(p.slave_time),
                  p.master_bound ? "master" : "slaves"});
  }
  table.Print();

  const uint32_t crossover =
      MasterSaturationNodes(model, static_cast<uint64_t>(elements),
                            static_cast<uint64_t>(keys),
                            static_cast<uint32_t>(max_nodes));
  std::printf(
      "\nmaster saturation crossover: %u nodes (paper: ~70 with their "
      "constants;\nthe crossover scales with t_msg and the DB request "
      "time, see EXPERIMENTS.md)\n",
      crossover);

  // The replica-selection variant of Section VII.
  const uint32_t replica_limit =
      ReplicaSelectionLimit(model, 250.0, 16.0, 1.0,
                            static_cast<uint32_t>(max_nodes));
  std::printf(
      "replica-selection master limit (16 in flight/node, 1 us logic): %u "
      "nodes (paper: ~32)\n",
      replica_limit);
  return 0;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Run(argc, argv); }
