// Ingest throughput vs write-batch size, and what background
// maintenance does to concurrent read latency.
//
// Paper setup: Section III observes that the sequential insertion time
// dominates experiment turnaround once the cluster scales, so the
// store's ingest path has to amortize its durability cost. Here the
// real write path measures exactly that: every point streams the same
// workload through PutBatch, but with a different batch size — each
// batch pays ONE group-commit WAL Sync(), so batch=1 is the per-key
// fsync baseline and larger batches show the amortization win as
// columns/s. A second phase pins read-side interference: the same
// count-gather is timed against an idle cluster and again while a
// writer thread streams batches with the flush watermark armed, so
// background maintenance competes with reads for the node workers.
//
// Run: ./build/bench/ingest [--elements=20000] [--keys=100] [--nodes=4]
//      [--replication=2] [--workers-per-node=2] [--read-rounds=32]
//      [--wal=/tmp/kvscale_ingest.wal]
//
// Scoreboard mode: --json-out=FILE writes the measured points as JSON;
// --check-against=BASELINE compares the current run against a committed
// scoreboard and fails (exit 1) when throughput regresses past
// --tolerance-pct or the configs differ. tools/bench_check.sh wraps the
// quick-config flow.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "cluster/in_process_cluster.hpp"
#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/table_printer.hpp"
#include "stats/summary.hpp"
#include "store/row.hpp"
#include "telemetry/metrics_registry.hpp"
#include "workload/granularity.hpp"

namespace kvscale {
namespace {

/// One measured batch-size cell of the scoreboard (batch 0 = everything
/// bound for a node in a single batch).
struct BenchPoint {
  uint32_t batch = 0;
  double columns_per_sec = 0.0;
  double speedup = 0.0;  ///< vs the batch=1 per-key-sync baseline
  uint64_t batches = 0;
  uint64_t group_syncs = 0;
  uint64_t wal_appends = 0;
};

/// Read latency idle vs under ingest+maintenance (phase 2). Reported in
/// the scoreboard for the record but not gated: tail latencies on a
/// shared CI box are too noisy for a hard floor.
struct Interference {
  double read_p50_idle_us = 0.0;
  double read_p95_idle_us = 0.0;
  double read_p50_ingest_us = 0.0;
  double read_p95_ingest_us = 0.0;
  uint64_t maintenance_runs = 0;
};

/// The knobs that shape the measurement; a baseline is only comparable
/// against a run with the identical config.
struct BenchConfig {
  int64_t elements = 0;
  int64_t keys = 0;
  int64_t nodes = 0;
  int64_t replication = 0;
  int64_t workers_per_node = 0;
  int64_t read_rounds = 0;
};

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string ScoreboardJson(const BenchConfig& config,
                           const std::vector<BenchPoint>& points,
                           const Interference& interference) {
  std::string out = "{\"bench\":\"ingest\",\"config\":{";
  out += "\"elements\":" + std::to_string(config.elements);
  out += ",\"keys\":" + std::to_string(config.keys);
  out += ",\"nodes\":" + std::to_string(config.nodes);
  out += ",\"replication\":" + std::to_string(config.replication);
  out += ",\"workers_per_node\":" + std::to_string(config.workers_per_node);
  out += ",\"read_rounds\":" + std::to_string(config.read_rounds);
  out += "},\"points\":[";
  for (size_t i = 0; i < points.size(); ++i) {
    const BenchPoint& p = points[i];
    if (i > 0) out += ',';
    out += "\n  {\"batch\":" + std::to_string(p.batch);
    out += ",\"columns_per_sec\":" + FormatDouble(p.columns_per_sec);
    out += ",\"speedup\":" + FormatDouble(p.speedup);
    out += ",\"batches\":" + std::to_string(p.batches);
    out += ",\"group_syncs\":" + std::to_string(p.group_syncs);
    out += ",\"wal_appends\":" + std::to_string(p.wal_appends);
    out += '}';
  }
  out += "\n],\"interference\":{";
  out += "\"read_p50_idle_us\":" + FormatDouble(interference.read_p50_idle_us);
  out += ",\"read_p95_idle_us\":" + FormatDouble(interference.read_p95_idle_us);
  out += ",\"read_p50_ingest_us\":" +
         FormatDouble(interference.read_p50_ingest_us);
  out += ",\"read_p95_ingest_us\":" +
         FormatDouble(interference.read_p95_ingest_us);
  out += ",\"maintenance_runs\":" +
         std::to_string(interference.maintenance_runs);
  out += "}}\n";
  return out;
}

/// Every number following an exact `"key":` occurrence, in document
/// order. The scoreboard's keys are chosen so no key is a quoted prefix
/// of another, which makes this targeted scan unambiguous without a
/// full JSON parser.
std::vector<double> JsonNumbers(const std::string& json,
                                const std::string& key) {
  std::vector<double> out;
  const std::string needle = "\"" + key + "\":";
  size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    out.push_back(std::strtod(json.c_str() + pos, nullptr));
  }
  return out;
}

bool ConfigMatches(const std::string& baseline, const char* key,
                   int64_t current) {
  const std::vector<double> values = JsonNumbers(baseline, key);
  if (values.size() != 1 ||
      static_cast<int64_t>(values[0]) != current) {
    std::fprintf(stderr,
                 "bench-check: config mismatch on \"%s\" (baseline %s, "
                 "current %lld) — regenerate the baseline with "
                 "tools/bench_check.sh --update\n",
                 key,
                 values.empty() ? "missing" : FormatDouble(values[0]).c_str(),
                 static_cast<long long>(current));
    return false;
  }
  return true;
}

/// Lower-bound throughput gate: each baseline point must be matched by a
/// current point at the same batch size whose columns/s is at least
/// (1 - tolerance) of the recorded value. Only slowdowns fail — a faster
/// run always passes, the baseline is refreshed explicitly.
int CheckAgainstBaseline(const std::string& path, const BenchConfig& config,
                         const std::vector<BenchPoint>& points,
                         double tolerance_pct) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "bench-check: cannot open baseline %s\n",
                 path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string baseline = buffer.str();

  bool ok = true;
  ok &= ConfigMatches(baseline, "elements", config.elements);
  ok &= ConfigMatches(baseline, "keys", config.keys);
  ok &= ConfigMatches(baseline, "nodes", config.nodes);
  ok &= ConfigMatches(baseline, "replication", config.replication);
  ok &= ConfigMatches(baseline, "workers_per_node", config.workers_per_node);
  ok &= ConfigMatches(baseline, "read_rounds", config.read_rounds);
  if (!ok) return 1;

  const std::vector<double> batches = JsonNumbers(baseline, "batch");
  const std::vector<double> cps = JsonNumbers(baseline, "columns_per_sec");
  if (batches.empty() || batches.size() != cps.size()) {
    std::fprintf(stderr, "bench-check: malformed baseline %s\n", path.c_str());
    return 1;
  }

  std::map<uint32_t, double> current;
  for (const BenchPoint& p : points) current[p.batch] = p.columns_per_sec;

  const double floor_fraction = 1.0 - tolerance_pct / 100.0;
  int failures = 0;
  for (size_t i = 0; i < batches.size(); ++i) {
    const uint32_t batch = static_cast<uint32_t>(batches[i]);
    const auto it = current.find(batch);
    if (it == current.end()) {
      std::fprintf(stderr,
                   "bench-check: FAIL batch=%u missing from the current "
                   "run\n",
                   batch);
      ++failures;
      continue;
    }
    const double floor = cps[i] * floor_fraction;
    const bool pass = it->second >= floor;
    std::printf("bench-check: %s batch=%u %.1f columns/s "
                "(baseline %.1f, floor %.1f)\n",
                pass ? "ok  " : "FAIL", batch, it->second, cps[i], floor);
    if (!pass) ++failures;
  }
  if (failures > 0) {
    std::fprintf(stderr,
                 "bench-check: %d point(s) regressed past %.0f%% tolerance\n",
                 failures, tolerance_pct);
    return 1;
  }
  std::printf("bench-check: all %zu points within %.0f%% of the baseline\n",
              batches.size(), tolerance_pct);
  return 0;
}

/// The whole workload as one PutBatch item list.
std::vector<BatchPutItem> BuildItems(const WorkloadSpec& workload,
                                     const char* prefix_tag) {
  std::vector<BatchPutItem> items;
  uint64_t part_seed = 0;
  for (const PartitionRef& part : workload.partitions) {
    for (uint32_t j = 0; j < part.elements; ++j) {
      BatchPutItem item;
      item.partition_key = prefix_tag + part.key;
      item.column.clustering = j;
      item.column.type_id = j % 8;
      item.column.payload = MakePayload(part_seed, j, 24);
      items.push_back(std::move(item));
    }
    ++part_seed;
  }
  return items;
}

void RemoveWals(const std::string& prefix, int64_t nodes) {
  for (int64_t n = 0; n < nodes; ++n) {
    std::remove((prefix + ".node" + std::to_string(n)).c_str());
  }
}

int Run(int argc, char** argv) {
  int64_t elements = 20000;
  int64_t keys = 100;
  int64_t nodes = 4;
  int64_t replication = 2;
  int64_t workers_per_node = 2;
  int64_t read_rounds = 32;
  std::string wal = "/tmp/kvscale_ingest.wal";
  std::string json_out;
  std::string check_against;
  double tolerance_pct = 50.0;
  CliFlags flags;
  flags.Add("elements", &elements, "total columns written per point");
  flags.Add("keys", &keys, "partitions the columns spread over");
  flags.Add("nodes", &nodes, "cluster size");
  flags.Add("replication", &replication, "copies of every partition");
  flags.Add("workers-per-node", &workers_per_node,
            "worker threads draining each node's queue");
  flags.Add("read-rounds", &read_rounds,
            "count-gathers timed idle and again under ingest");
  flags.Add("wal", &wal,
            "write-ahead-log path prefix (each point appends its own "
            "suffix; files are removed afterwards)");
  flags.Add("json-out", &json_out, "write the scoreboard as JSON to FILE");
  flags.Add("check-against", &check_against,
            "compare this run against a baseline scoreboard JSON");
  flags.Add("tolerance-pct", &tolerance_pct,
            "allowed throughput drop vs the baseline before failing");
  if (!flags.Parse(argc, argv)) return 1;
  if (tolerance_pct < 0.0 || tolerance_pct >= 100.0) {
    std::fprintf(stderr, "--tolerance-pct must be in [0, 100)\n");
    return 1;
  }
  if (wal.empty()) {
    std::fprintf(stderr, "--wal must not be empty: the point of the sweep "
                 "is the per-batch Sync() cost\n");
    return 1;
  }

  bench::Banner(
      "Ingest: columns/s vs write-batch size, durable group commit",
      "Section III's insertion-time bottleneck, measured on the real "
      "write path: every batch pays one WAL Sync(), so batch=1 is the "
      "per-key fsync baseline and larger batches amortize it",
      std::to_string(keys) + " partitions x " +
          std::to_string(elements / std::max<int64_t>(keys, 1)) +
          " columns, " + std::to_string(nodes) + " nodes, replication " +
          std::to_string(replication) + ", compact codec");

  const BenchConfig config{elements, keys,          nodes,
                           replication, workers_per_node, read_rounds};
  const WorkloadSpec workload = UniformWorkload(
      static_cast<uint64_t>(elements), static_cast<uint64_t>(keys));

  PutOptions write_options;
  write_options.transport = GatherTransport::kMessage;
  write_options.codec = WireCodecKind::kCompact;
  write_options.workers_per_node = static_cast<uint32_t>(workers_per_node);

  // -- Phase 1: the batch-size ladder (batch 0 = one batch per node) -----
  std::vector<BenchPoint> points;
  TablePrinter table({"batch", "columns/s", "speedup", "batches",
                      "group syncs", "WAL appends", "wall"});
  double baseline_cps = 0.0;
  for (const uint32_t batch : {1u, 8u, 64u, 0u}) {
    MetricsRegistry registry;
    StoreOptions store_options;
    store_options.metrics = &registry;
    store_options.wal_path = wal + ".b" + std::to_string(batch);
    InProcessCluster cluster(static_cast<uint32_t>(nodes),
                             PlacementKind::kDhtRandom, store_options, 7,
                             static_cast<uint32_t>(replication));
    cluster.AttachTelemetry(nullptr, &registry);

    write_options.batch = batch;
    const PutResult result =
        cluster.PutBatch(workload.table, BuildItems(workload, ""),
                         write_options);
    KV_CHECK(result.ok());
    RemoveWals(store_options.wal_path, nodes);

    BenchPoint point;
    point.batch = batch;
    point.columns_per_sec =
        result.wall_us > 0.0
            ? static_cast<double>(result.replica_acks) / (result.wall_us / 1e6)
            : 0.0;
    if (batch == 1) baseline_cps = point.columns_per_sec;
    point.speedup =
        baseline_cps > 0.0 ? point.columns_per_sec / baseline_cps : 0.0;
    point.batches = result.batches_sent;
    point.group_syncs = registry.GetCounter("store.ingest.group_syncs").Value();
    point.wal_appends = registry.GetCounter("store.commitlog.appends").Value();
    points.push_back(point);

    char cps[32];
    std::snprintf(cps, sizeof(cps), "%.1f", point.columns_per_sec);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", point.speedup);
    table.AddRow({batch == 0 ? std::string("all")
                             : std::to_string(batch),
                  std::string(cps), std::string(speedup),
                  TablePrinter::Cell(static_cast<int64_t>(point.batches)),
                  TablePrinter::Cell(static_cast<int64_t>(point.group_syncs)),
                  TablePrinter::Cell(static_cast<int64_t>(point.wal_appends)),
                  FormatMicros(result.wall_us)});
  }
  table.Print();
  std::printf(
      "\nevery batch pays exactly one group-commit Sync(): the WAL-append "
      "count stays flat while the sync count collapses with the batch "
      "size — that gap is the amortization the speedup column shows\n");

  // -- Phase 2: read latency idle vs under ingest + maintenance ----------
  Interference interference;
  {
    MetricsRegistry registry;
    StoreOptions store_options;
    store_options.metrics = &registry;
    store_options.wal_path = wal + ".mix";
    InProcessCluster cluster(static_cast<uint32_t>(nodes),
                             PlacementKind::kDhtRandom, store_options, 7,
                             static_cast<uint32_t>(replication));
    cluster.AttachTelemetry(nullptr, &registry);

    write_options.batch = 16;
    KV_CHECK(cluster
                 .PutBatch(workload.table, BuildItems(workload, ""),
                           write_options)
                 .ok());
    cluster.FlushAll();

    GatherOptions read_options;
    read_options.transport = GatherTransport::kMessage;
    read_options.codec = WireCodecKind::kCompact;
    read_options.batch = true;
    read_options.workers_per_node = static_cast<uint32_t>(workers_per_node);
    const QueryPlan plan = MakeCountPlan(workload);

    std::vector<double> idle;
    for (int64_t r = 0; r < read_rounds; ++r) {
      idle.push_back(cluster.Gather(plan, read_options).wall_us);
    }

    // The writer streams fresh partitions with the flush watermark armed,
    // so the write handler keeps scheduling background flushes onto the
    // same workers the gathers need.
    write_options.flush_watermark_bytes = 16 * 1024;
    std::atomic<bool> stop{false};
    std::thread writer([&] {
      uint64_t round = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string tag = "ing" + std::to_string(round++) + "_";
        KV_CHECK(cluster
                     .PutBatch(workload.table,
                               BuildItems(workload, tag.c_str()),
                               write_options)
                     .ok());
      }
    });
    std::vector<double> busy;
    for (int64_t r = 0; r < read_rounds; ++r) {
      busy.push_back(cluster.Gather(plan, read_options).wall_us);
    }
    stop.store(true, std::memory_order_relaxed);
    writer.join();
    RemoveWals(store_options.wal_path, nodes);

    interference.read_p50_idle_us = Percentile(idle, 0.50);
    interference.read_p95_idle_us = Percentile(idle, 0.95);
    interference.read_p50_ingest_us = Percentile(busy, 0.50);
    interference.read_p95_ingest_us = Percentile(busy, 0.95);
    interference.maintenance_runs =
        registry.GetCounter("cluster.maintenance.runs").Value();

    std::printf(
        "\nread interference (%lld count-gathers, %llu background "
        "maintenance runs):\n"
        "  idle cluster:  p50 %s, p95 %s\n"
        "  under ingest:  p50 %s, p95 %s\n",
        static_cast<long long>(read_rounds),
        static_cast<unsigned long long>(interference.maintenance_runs),
        FormatMicros(interference.read_p50_idle_us).c_str(),
        FormatMicros(interference.read_p95_idle_us).c_str(),
        FormatMicros(interference.read_p50_ingest_us).c_str(),
        FormatMicros(interference.read_p95_ingest_us).c_str());
  }

  if (!json_out.empty()) {
    std::ofstream file(json_out);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", json_out.c_str());
      return 1;
    }
    file << ScoreboardJson(config, points, interference);
    if (!file.good()) {
      std::fprintf(stderr, "write failed: %s\n", json_out.c_str());
      return 1;
    }
    std::printf("scoreboard written to %s\n", json_out.c_str());
  }
  if (!check_against.empty()) {
    return CheckAgainstBaseline(check_against, config, points, tolerance_pct);
  }
  return 0;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Run(argc, argv); }
