// Figure 7 — Speed-up of parallel queries vs row size (Formula 7).
//
// Paper setup: 20 strata of 500-element row-size ranges; each stratum's
// keys queried at different parallelism levels; the best speed-up over
// one-at-a-time execution recorded per stratum. Paper result: small rows
// peak at parallelism 32, medium at 16, large at 8, and the attainable
// speed-up is logarithmic in row size:
//   speedup = 12.562 - 1.084 ln(keysize).
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "model/calibrator.hpp"
#include "stats/regression.hpp"

namespace kvscale {
namespace {

/// Runs `requests` equal-size requests on one simulated node with the DB
/// executor capped at `parallelism`; returns the makespan.
Micros RunAtParallelism(double keysize, uint32_t requests,
                        uint32_t parallelism, uint64_t seed) {
  ClusterConfig config;
  config.nodes = 1;
  config.db_concurrency = parallelism;
  config.gc.quadratic_us_per_element2 = 0.0;
  config.seed = seed;
  // Remove master overhead from the measurement: instantaneous sends.
  config.serializer.cpu_fixed = 0.0;
  config.serializer.cpu_per_byte = 0.0;
  WorkloadSpec spec;
  spec.partitions.reserve(requests);
  for (uint32_t i = 0; i < requests; ++i) {
    spec.partitions.push_back(PartitionRef{
        "probe-" + std::to_string(i), static_cast<uint32_t>(keysize)});
  }
  const auto run = RunDistributedQuery(config, spec);
  // Pure DB window: first admission to last completion.
  Micros first_start = run.tracer.traces()[0].db_start;
  Micros last_end = 0;
  for (const auto& t : run.tracer.traces()) {
    first_start = std::min(first_start, t.db_start);
    last_end = std::max(last_end, t.db_end);
  }
  return last_end - first_start;
}

int Run(int argc, char** argv) {
  int64_t requests = 64;
  CliFlags flags;
  flags.Add("requests", &requests, "requests per (stratum, parallelism)");
  if (!flags.Parse(argc, argv)) return 1;

  bench::Banner(
      "Figure 7: max speed-up of parallel queries vs row size",
      "best parallelism falls with row size (32 small / 16 medium / 8 "
      "large); max speed-up = 12.562 - 1.084 ln(keysize)",
      "single simulated node, parallelism in {1,2,4,8,16,32,64}, " +
          std::to_string(requests) + " requests per point");

  const std::vector<uint32_t> levels = {1, 2, 4, 8, 16, 32, 64};
  std::vector<SpeedupSample> samples;
  TablePrinter table({"row size", "best parallelism", "max speed-up",
                      "Formula 7"});
  Rng rng(99);
  for (uint32_t stratum = 0; stratum < 20; ++stratum) {
    const double keysize = stratum * 500.0 + 250.0;
    const Micros serial = RunAtParallelism(
        keysize, static_cast<uint32_t>(requests), 1, rng.Next());
    double best_speedup = 1.0;
    uint32_t best_level = 1;
    for (uint32_t level : levels) {
      const Micros t = RunAtParallelism(
          keysize, static_cast<uint32_t>(requests), level, rng.Next());
      const double speedup = serial / t;
      if (speedup > best_speedup) {
        best_speedup = speedup;
        best_level = level;
      }
    }
    samples.push_back(SpeedupSample{keysize, best_speedup, best_level});
    table.AddRow({TablePrinter::Cell(keysize, 0),
                  TablePrinter::Cell(static_cast<int64_t>(best_level)),
                  TablePrinter::Cell(best_speedup, 2),
                  TablePrinter::Cell(ParallelismModel().MaxSpeedup(keysize),
                                     2)});
  }
  table.Print();

  const LinearFit fit = FitSpeedupModel(samples);
  std::printf("\nlog fit of measured max speed-ups: speedup = %.3f %+.3f * "
              "ln(keysize)  (r2=%.3f)\n",
              fit.intercept, fit.slope, fit.r_squared);
  std::printf("paper Formula 7:                    speedup = 12.562 -1.084 "
              "* ln(keysize)\n");
  std::printf(
      "best parallelism trend: %u (smallest rows) -> %u (largest rows); "
      "paper: 32 -> 8\n",
      samples.front().best_parallelism, samples.back().best_parallelism);
  return 0;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Run(argc, argv); }
