// Figure 2 — Operations per node vs. sub-query time.
//
// Paper setup: coarse-grained (100 keys) on 16 nodes; top chart shows how
// many requests each node served, bottom the per-request times. Paper
// result: the peaks correlate — the node with the most requests finishes
// last and dictates the query time; the most loaded node got 10 keys where
// a perfect split gives ceil(100/16) = 7 (+43%).
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "model/balls_into_bins.hpp"
#include "workload/granularity.hpp"

namespace kvscale {
namespace {

int Run(int argc, char** argv) {
  int64_t elements = 1000000;
  int64_t nodes = 16;
  int64_t seed = 2017;
  CliFlags flags;
  flags.Add("elements", &elements, "total elements");
  flags.Add("nodes", &nodes, "cluster size");
  flags.Add("seed", &seed, "placement seed");
  if (!flags.Parse(argc, argv)) return 1;

  bench::Banner(
      "Figure 2: operations per node vs sub-query time (coarse, 16 nodes)",
      "requests and completion time peak on the same nodes; max load 10 of "
      "100 keys (+43% over ceil(100/16)=7); slowest node dictates the query",
      "one simulated run, coarse-grained, " + std::to_string(nodes) +
          " nodes");

  ClusterConfig config =
      bench::PaperClusterConfig(static_cast<uint32_t>(nodes), true,
                                static_cast<uint64_t>(seed));
  config.seed = static_cast<uint64_t>(seed);
  const WorkloadSpec workload =
      MakeUniformWorkload(Granularity::kCoarse, elements);
  const QueryRunResult run = RunDistributedQuery(config, workload);

  TablePrinter table({"node", "requests", "mean in-db", "finish time",
                      "bar"});
  const uint64_t max_requests = *std::max_element(
      run.requests_per_node.begin(), run.requests_per_node.end());
  for (uint32_t n = 0; n < run.requests_per_node.size(); ++n) {
    const auto in_db =
        run.tracer.StageSummaryForNode(Stage::kInDb, n);
    const size_t bar_len = static_cast<size_t>(
        20.0 * run.requests_per_node[n] / std::max<uint64_t>(max_requests, 1));
    table.AddRow({std::string(1, static_cast<char>('A' + n % 26)),
                  TablePrinter::Cell(run.requests_per_node[n]),
                  FormatMicros(in_db.mean()),
                  FormatMicros(run.node_finish_times[n]),
                  std::string(bar_len, '#')});
  }
  table.Print();

  const auto busiest =
      std::max_element(run.requests_per_node.begin(),
                       run.requests_per_node.end()) -
      run.requests_per_node.begin();
  const auto slowest =
      std::max_element(run.node_finish_times.begin(),
                       run.node_finish_times.end()) -
      run.node_finish_times.begin();
  std::printf(
      "\nmost loaded node: %c (%llu requests) | last to finish: %c\n",
      static_cast<char>('A' + busiest),
      static_cast<unsigned long long>(run.requests_per_node[busiest]),
      static_cast<char>('A' + slowest));
  std::printf("perfect split: %llu | Formula 1 expectation: %.1f keys\n",
              static_cast<unsigned long long>(
                  (workload.partitions.size() + nodes - 1) / nodes),
              ExpectedMaxKeys(workload.partitions.size(),
                              static_cast<uint64_t>(nodes)));
  std::printf("query makespan: %s (slowest node finish: %s)\n",
              FormatMicros(run.makespan).c_str(),
              FormatMicros(run.node_finish_times[slowest]).c_str());
  return 0;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Run(argc, argv); }
