// Figure 3 — Probability density of the most loaded node (fine-grained
// analysis of the coarse workload's imbalance).
//
// Paper setup: brute-force distribute 100 keys over 16 nodes and record
// how many keys fall in the most loaded node. Paper result: the observed
// run (10 keys) is not unlucky — "in 60% of the cases we would have a more
// unbalanced scenario"; Formula 1's prediction (~10.4) sits at the density
// mass.
#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "model/balls_into_bins.hpp"

namespace kvscale {
namespace {

int Run(int argc, char** argv) {
  int64_t keys = 100;
  int64_t nodes = 16;
  int64_t trials = 200000;
  CliFlags flags;
  flags.Add("keys", &keys, "balls to throw");
  flags.Add("nodes", &nodes, "bins");
  flags.Add("trials", &trials, "Monte-Carlo trials");
  if (!flags.Parse(argc, argv)) return 1;

  bench::Banner(
      "Figure 3: probability density of the max-loaded node (100 keys, 16 "
      "nodes)",
      "observed run = 10 keys; Formula 1 marker ~10.4; P(more unbalanced "
      "than observed) ~ 60%",
      std::to_string(trials) + " Monte-Carlo trials");

  Rng rng(42);
  const IntegerDistribution density = SimulateMaxLoadDensity(
      static_cast<uint64_t>(keys), static_cast<uint64_t>(nodes),
      static_cast<uint64_t>(trials), rng);

  TablePrinter table({"max load", "probability", "bar"});
  for (const auto& [value, prob] : density.Densities()) {
    if (prob < 0.001) continue;
    table.AddRow({TablePrinter::Cell(value), TablePrinter::Cell(prob, 4),
                  std::string(static_cast<size_t>(prob * 200), '#')});
  }
  table.Print();

  const double formula = ExpectedMaxKeys(static_cast<uint64_t>(keys),
                                         static_cast<uint64_t>(nodes));
  std::printf("\nFormula 1 expectation: %.2f keys (paper marker ~10.4)\n",
              formula);
  std::printf("Monte-Carlo mean: %.2f keys\n", density.Mean());
  std::printf(
      "P(max > 10) = %.1f%% (paper: ~60%% of cases more unbalanced than "
      "the observed 10)\n",
      density.TailProbability(11) * 100.0);
  std::printf("P(max >= ceil(%lld/%lld)=%lld) = %.1f%% (sanity: 100%%)\n",
              static_cast<long long>(keys), static_cast<long long>(nodes),
              static_cast<long long>((keys + nodes - 1) / nodes),
              density.TailProbability((keys + nodes - 1) / nodes) * 100.0);
  return 0;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Run(argc, argv); }
