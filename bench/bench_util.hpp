// Shared helpers for the figure-reproduction bench binaries.
//
// Every bench prints (a) what the paper reports for that figure and (b) the
// values this reproduction measures, through the same TablePrinter, so
// test_output/bench_output diffs stay readable.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "common/table_printer.hpp"
#include "common/units.hpp"
#include "model/query_model.hpp"
#include "stats/summary.hpp"
#include "wire/serializer_model.hpp"

namespace kvscale::bench {

/// Prints a section header.
inline void Header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Prints the figure banner: id, paper claim, and our setup.
inline void Banner(const std::string& figure, const std::string& paper_claim,
                   const std::string& setup) {
  std::printf("%s\n", std::string(78, '-').c_str());
  std::printf("%s\n", figure.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("setup: %s\n", setup.c_str());
  std::printf("%s\n", std::string(78, '-').c_str());
}

/// The paper's cluster sizes.
inline std::vector<uint32_t> PaperNodeCounts() { return {1, 2, 4, 8, 16}; }

/// Default simulator configuration for the Figure 1/5 experiments.
inline ClusterConfig PaperClusterConfig(uint32_t nodes, bool optimized_master,
                                        uint64_t seed) {
  ClusterConfig config;
  config.nodes = nodes;
  config.seed = seed;
  if (optimized_master) {
    config.serializer = KryoLikeProfile();
    config.size_messages_with_compact_codec = true;
  } else {
    config.serializer = JavaLikeProfile();
    config.size_messages_with_compact_codec = false;
  }
  return config;
}

/// The analytical model matching PaperClusterConfig.
inline QueryModel PaperQueryModel(bool optimized_master) {
  const SerializerProfile profile =
      optimized_master ? KryoLikeProfile() : JavaLikeProfile();
  return QueryModel(DbModel{}, MasterModel::FromSerializer(profile));
}

/// Mean makespan over `repeats` seeds (the paper plots one run; we average
/// to de-noise the shape comparison).
struct RepeatedRun {
  Micros mean_makespan = 0.0;
  Micros mean_master_done = 0.0;
  double mean_request_imbalance = 0.0;
  QueryRunResult last;  ///< last run kept for trace-level reporting
};

inline RepeatedRun RunRepeated(ClusterConfig config,
                               const WorkloadSpec& workload,
                               uint32_t repeats) {
  RepeatedRun out;
  RunningSummary makespan, master, imbalance;
  for (uint32_t r = 0; r < repeats; ++r) {
    config.seed = 1000 + r * 7919;
    out.last = RunDistributedQuery(config, workload);
    makespan.Add(out.last.makespan);
    master.Add(out.last.master_issue_done);
    imbalance.Add(out.last.RequestImbalance());
  }
  out.mean_makespan = makespan.mean();
  out.mean_master_done = master.mean();
  out.mean_request_imbalance = imbalance.mean();
  return out;
}

}  // namespace kvscale::bench
