// Ablation — hierarchical storage devices (the paper's future work,
// Section IX: extend the model to DRAM/HBM/NVM/SSD/HDD tiers).
//
// Evaluates the query model with the working set served from each tier and
// re-runs the partition optimizer: slower devices shift the optimum toward
// fewer, larger rows (per-request latency amortisation beats balance).
#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "model/optimizer.hpp"

namespace kvscale {
namespace {

int Run(int argc, char** argv) {
  int64_t elements = 1000000;
  int64_t nodes = 16;
  CliFlags flags;
  flags.Add("elements", &elements, "total elements");
  flags.Add("nodes", &nodes, "cluster size");
  if (!flags.Parse(argc, argv)) return 1;

  bench::Banner(
      "Ablation: storage hierarchy (paper future work, Section IX)",
      "\"predict the time of serving requests out of each of these "
      "devices\" — KNL-style DRAM/HBM/NVM/SSD/HDD tiers",
      "query model + optimizer per device tier, " + std::to_string(nodes) +
          " nodes");

  const Micros baseline =
      PartitionOptimizer(bench::PaperQueryModel(true).WithDevice(DramDevice()))
          .Optimize(static_cast<uint64_t>(elements),
                    static_cast<uint32_t>(nodes))
          .prediction.total;

  TablePrinter table({"device", "1-row read (1425 el)", "optimal rows",
                      "predicted time", "vs dram"});
  for (const DeviceModel& device :
       {HbmDevice(), DramDevice(), NvmDevice(), SataSsdDevice(),
        HddDevice()}) {
    const QueryModel model = bench::PaperQueryModel(true).WithDevice(device);
    PartitionOptimizer optimizer(model);
    const auto opt = optimizer.Optimize(static_cast<uint64_t>(elements),
                                        static_cast<uint32_t>(nodes));
    table.AddRow({device.name, FormatMicros(device.ReadTime(1425.0 * 46.0)),
                  TablePrinter::Cell(opt.keys),
                  FormatMicros(opt.prediction.total),
                  FormatPercent(opt.prediction.total / baseline - 1.0)});
  }
  table.Print();

  std::printf(
      "\nreading: device latency adds a per-request fixed cost, so slower "
      "tiers push\nthe optimizer toward fewer, larger rows — quantifying "
      "the hierarchy-aware\ndesign guidance the paper proposes as future "
      "work.\n");
  return 0;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Run(argc, argv); }
