// Section II worked example — the world phonebook.
//
// Paper numbers: partitioning 10 nodes by country (200 keys) leaves the
// most loaded node ~34% over the mean; by city (1M keys) only 0.5%; by
// user (1B keys) 0.015%. But city *sizes* are heavy-tailed (half the
// population in the ~500 largest cities), so the by-city load imbalance is
// ~21% on 10 nodes and grows to ~35% when doubling to 20.
#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "workload/phonebook.hpp"

namespace kvscale {
namespace {

int Run(int argc, char** argv) {
  int64_t trials = 50;
  CliFlags flags;
  flags.Add("trials", &trials, "Monte-Carlo placements per configuration");
  if (!flags.Parse(argc, argv)) return 1;

  bench::Banner(
      "Section II table: phonebook key imbalance (Formula 1) and the Zipf "
      "city effect",
      "34% / 0.5% / 0.015% key imbalance on 10 nodes; by-city load "
      "imbalance ~21% @10 nodes, ~35% @20 nodes",
      "Formula 1 + Monte-Carlo with Zipf(1.07) city sizes");

  Rng rng(7);
  TablePrinter table({"data model", "keys", "F1 imbalance @10",
                      "load imbalance @10", "load imbalance @20"});
  for (const auto& model : PhonebookModels()) {
    const double f1 = PhonebookKeyImbalance(model, 10);
    // Load imbalance only simulated for the Zipf-sized model (the others
    // match F1 by construction); 20k simulated keys carry the Zipf head.
    std::string load10 = "~F1", load20 = "~F1";
    if (model.zipf_sizes) {
      load10 = FormatPercent(PhonebookLoadImbalance(
          model, 10, 10000000, 20000, static_cast<uint64_t>(trials), rng));
      load20 = FormatPercent(PhonebookLoadImbalance(
          model, 20, 10000000, 20000, static_cast<uint64_t>(trials), rng));
    }
    table.AddRow({model.name, TablePrinter::Cell(model.keys),
                  FormatPercent(f1), load10, load20});
  }
  table.Print();

  std::printf(
      "\npaper: by-country +34%%, by-city +0.5%% (keys) but ~21%% (load, "
      "10 nodes) -> ~35%% (20 nodes),\nby-user +0.015%%. The Zipf tail, "
      "not key cardinality, dominates the by-city imbalance.\n");
  return 0;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Run(argc, argv); }
