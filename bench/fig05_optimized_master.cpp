// Figure 5 — Performance after reducing the master bottleneck.
//
// Paper setup: same grid as Figure 1 but with the optimised master
// (Kryo-style serialization: 19 us/message instead of 150 us, 0.9 MB on
// the wire instead of 7.5 MB). Paper result: fine-grained becomes almost
// linear and the fastest workload from 4 nodes up (12% slower than medium
// on one node in the paper's measurements); at 8 nodes medium's 16%
// imbalance vs fine's 4% overturns the single-node ranking.
#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "workload/granularity.hpp"

namespace kvscale {
namespace {

int Run(int argc, char** argv) {
  int64_t elements = 1000000;
  int64_t repeats = 5;
  CliFlags flags;
  flags.Add("elements", &elements, "total elements");
  flags.Add("repeats", &repeats, "seeds averaged per configuration");
  if (!flags.Parse(argc, argv)) return 1;

  bench::Banner(
      "Figure 5: scalability after the master optimization (19 us/msg)",
      "fine-grained becomes ~linear and the fastest workload at >=4 nodes; "
      "at 8 nodes imbalance is ~16% (medium) vs ~4% (fine)",
      "simulator, " + std::to_string(repeats) + " seeds/config");

  const std::vector<Granularity> granularities = {
      Granularity::kCoarse, Granularity::kMedium, Granularity::kFine};

  // Collect all times first so the winner per node count can be marked.
  std::vector<std::vector<Micros>> times(granularities.size());
  std::vector<std::vector<double>> imbalances(granularities.size());
  const auto node_counts = bench::PaperNodeCounts();
  for (size_t g = 0; g < granularities.size(); ++g) {
    const WorkloadSpec workload =
        MakeUniformWorkload(granularities[g], elements);
    for (uint32_t nodes : node_counts) {
      const auto run = bench::RunRepeated(
          bench::PaperClusterConfig(nodes, true, 1), workload,
          static_cast<uint32_t>(repeats));
      times[g].push_back(run.mean_makespan);
      imbalances[g].push_back(run.mean_request_imbalance);
    }
  }

  TablePrinter table({"nodes", "coarse", "medium", "fine", "fastest",
                      "imb medium", "imb fine"});
  for (size_t n = 0; n < node_counts.size(); ++n) {
    size_t best = 0;
    for (size_t g = 1; g < granularities.size(); ++g) {
      if (times[g][n] < times[best][n]) best = g;
    }
    table.AddRow({TablePrinter::Cell(static_cast<int64_t>(node_counts[n])),
                  FormatMicros(times[0][n]), FormatMicros(times[1][n]),
                  FormatMicros(times[2][n]),
                  std::string(GranularityName(granularities[best])),
                  FormatPercent(imbalances[1][n]),
                  FormatPercent(imbalances[2][n])});
  }
  table.Print();

  const double fine_scaling = times[2][0] / (times[2].back() * 16.0);
  std::printf(
      "\nfine-grained parallel efficiency at 16 nodes: %.0f%% (paper: "
      "\"almost linear scalability\")\n",
      fine_scaling * 100.0);
  std::printf(
      "paper: fine wins at >=4 nodes. note: the paper measured fine 12%% "
      "slower than\nmedium on 1 node; with Formula 6's own constants "
      "(lower per-element cost for\nsmall rows) fine is already fastest at "
      "1 node — see EXPERIMENTS.md.\n");
  return 0;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Run(argc, argv); }
