// Hash / token-ring / simulator-engine micro-benchmarks.
#include <benchmark/benchmark.h>

#include <string>

#include "common/check.hpp"
#include "hash/hash.hpp"
#include "hash/token_ring.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"

namespace kvscale {
namespace {

void BM_Murmur3SmallKey(benchmark::State& state) {
  const std::string key = "d8:5:1234567";
  for (auto _ : state) {
    benchmark::DoNotOptimize(Murmur3_128(key));
  }
}
BENCHMARK(BM_Murmur3SmallKey);

void BM_RingLookup(benchmark::State& state) {
  TokenRing ring(256);
  for (NodeId n = 0; n < static_cast<NodeId>(state.range(0)); ++n) {
    KV_CHECK(ring.AddNode(n).ok());
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.OwnerOfKey("key-" + std::to_string(i++)));
  }
}
BENCHMARK(BM_RingLookup)->Arg(4)->Arg(16)->Arg(64);

void BM_RingAddNode(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    TokenRing ring(256);
    for (NodeId n = 0; n < 15; ++n) KV_CHECK(ring.AddNode(n).ok());
    state.ResumeTiming();
    benchmark::DoNotOptimize(ring.AddNode(15));
  }
}
BENCHMARK(BM_RingAddNode);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int fired = 0;
    for (int i = 0; i < 10000; ++i) {
      sim.Schedule(static_cast<SimTime>(i % 100), [&fired] { ++fired; });
    }
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_ResourcePipeline(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    Resource pool(sim, 16, "pool");
    for (int i = 0; i < 5000; ++i) {
      pool.Submit(10.0, [](SimTime, SimTime, SimTime) {});
    }
    sim.Run();
    benchmark::DoNotOptimize(pool.jobs_completed());
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_ResourcePipeline);

}  // namespace
}  // namespace kvscale

BENCHMARK_MAIN();
