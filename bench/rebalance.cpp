// Rebalance throughput: how fast live migration moves ownership, and
// what it costs the gathers running through it.
//
// The paper's elasticity argument (Section V: scaling the store with the
// cluster) only holds if ownership can move while the system serves
// queries. This bench drives the three membership operations — join,
// graceful decommission, permanent failure — against a loaded cluster
// while client threads keep gathering, and reports (a) migration
// throughput (partitions and columns re-homed per second, bytes on the
// wire) and (b) gather latency during the churn vs a quiet cluster.
//
// Run: ./build/bench/rebalance [--elements=8000] [--keys=48] [--nodes=4]
//      [--replication=2] [--clients=4] [--queries=3]
//
// Scoreboard mode: --json-out=FILE writes the measured points as JSON;
// --check-against=BASELINE compares the current run against a committed
// scoreboard and fails (exit 1) when migration throughput regresses past
// --tolerance-pct or the configs differ. The gate is lower-bound-only on
// columns moved/s — gather latency during churn is reported but not
// gated (it is too machine-sensitive for a pass/fail line).
// tools/bench_check.sh wraps the quick-config flow.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "cluster/in_process_cluster.hpp"
#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/table_printer.hpp"
#include "stats/summary.hpp"
#include "store/row.hpp"
#include "workload/granularity.hpp"

namespace kvscale {
namespace {

/// One membership operation's measured cost. `op` is numeric so the
/// baseline check can scan it with the same targeted-key parser the
/// other scoreboards use: 0 = join, 1 = decommission, 2 = perma-kill.
struct OpPoint {
  uint32_t op = 0;
  uint64_t partitions_moved = 0;
  uint64_t columns_moved = 0;
  uint64_t bytes_streamed = 0;
  uint64_t block_retries = 0;
  double wall_us = 0.0;
  double columns_per_sec = 0.0;
};

const char* OpName(uint32_t op) {
  switch (op) {
    case 0: return "join";
    case 1: return "decommission";
    default: return "perma-kill";
  }
}

/// The knobs that shape the measurement; a baseline is only comparable
/// against a run with the identical config.
struct BenchConfig {
  int64_t elements = 0;
  int64_t keys = 0;
  int64_t nodes = 0;
  int64_t replication = 0;
  int64_t clients = 0;
  int64_t queries = 0;
};

/// Gather latency percentiles for one phase (quiet or churn).
struct GatherStats {
  uint64_t gathers = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string ScoreboardJson(const BenchConfig& config,
                           const std::vector<OpPoint>& ops,
                           const GatherStats& quiet,
                           const GatherStats& churn) {
  std::string out = "{\"bench\":\"rebalance\",\"config\":{";
  out += "\"elements\":" + std::to_string(config.elements);
  out += ",\"keys\":" + std::to_string(config.keys);
  out += ",\"nodes\":" + std::to_string(config.nodes);
  out += ",\"replication\":" + std::to_string(config.replication);
  out += ",\"clients\":" + std::to_string(config.clients);
  out += ",\"queries\":" + std::to_string(config.queries);
  out += "},\"ops\":[";
  for (size_t i = 0; i < ops.size(); ++i) {
    const OpPoint& p = ops[i];
    if (i > 0) out += ',';
    out += "\n  {\"op\":" + std::to_string(p.op);
    out += ",\"partitions_moved\":" + std::to_string(p.partitions_moved);
    out += ",\"columns_moved\":" + std::to_string(p.columns_moved);
    out += ",\"bytes_streamed\":" + std::to_string(p.bytes_streamed);
    out += ",\"block_retries\":" + std::to_string(p.block_retries);
    out += ",\"wall_us\":" + FormatDouble(p.wall_us);
    out += ",\"columns_per_sec\":" + FormatDouble(p.columns_per_sec);
    out += '}';
  }
  out += "\n],\"gather\":{";
  out += "\"quiet_gathers\":" + std::to_string(quiet.gathers);
  out += ",\"quiet_p50_us\":" + FormatDouble(quiet.p50_us);
  out += ",\"quiet_p99_us\":" + FormatDouble(quiet.p99_us);
  out += ",\"churn_gathers\":" + std::to_string(churn.gathers);
  out += ",\"churn_p50_us\":" + FormatDouble(churn.p50_us);
  out += ",\"churn_p99_us\":" + FormatDouble(churn.p99_us);
  out += "}}\n";
  return out;
}

/// Every number following an exact `"key":` occurrence, in document
/// order — the scoreboard's keys are chosen so no key is a quoted prefix
/// of another (see master_throughput.cpp).
std::vector<double> JsonNumbers(const std::string& json,
                                const std::string& key) {
  std::vector<double> out;
  const std::string needle = "\"" + key + "\":";
  size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    out.push_back(std::strtod(json.c_str() + pos, nullptr));
  }
  return out;
}

bool ConfigMatches(const std::string& baseline, const char* key,
                   int64_t current) {
  const std::vector<double> values = JsonNumbers(baseline, key);
  if (values.size() != 1 || static_cast<int64_t>(values[0]) != current) {
    std::fprintf(stderr,
                 "bench-check: config mismatch on \"%s\" (baseline %s, "
                 "current %lld) — regenerate the baseline with "
                 "tools/bench_check.sh --update\n",
                 key,
                 values.empty() ? "missing" : FormatDouble(values[0]).c_str(),
                 static_cast<long long>(current));
    return false;
  }
  return true;
}

/// Lower-bound migration-throughput gate: each baseline op must be
/// matched by the same op in the current run whose columns moved/s is at
/// least (1 - tolerance) of the recorded value. Only slowdowns fail.
int CheckAgainstBaseline(const std::string& path, const BenchConfig& config,
                         const std::vector<OpPoint>& ops,
                         double tolerance_pct) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "bench-check: cannot open baseline %s\n",
                 path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string baseline = buffer.str();

  bool ok = true;
  ok &= ConfigMatches(baseline, "elements", config.elements);
  ok &= ConfigMatches(baseline, "keys", config.keys);
  ok &= ConfigMatches(baseline, "nodes", config.nodes);
  ok &= ConfigMatches(baseline, "replication", config.replication);
  ok &= ConfigMatches(baseline, "clients", config.clients);
  ok &= ConfigMatches(baseline, "queries", config.queries);
  if (!ok) return 1;

  const std::vector<double> base_ops = JsonNumbers(baseline, "op");
  const std::vector<double> base_rate = JsonNumbers(baseline,
                                                    "columns_per_sec");
  if (base_ops.empty() || base_ops.size() != base_rate.size()) {
    std::fprintf(stderr, "bench-check: malformed baseline %s\n", path.c_str());
    return 1;
  }

  const double floor_fraction = 1.0 - tolerance_pct / 100.0;
  int failures = 0;
  for (size_t i = 0; i < base_ops.size(); ++i) {
    const uint32_t op = static_cast<uint32_t>(base_ops[i]);
    const OpPoint* current = nullptr;
    for (const OpPoint& p : ops) {
      if (p.op == op) current = &p;
    }
    if (current == nullptr) {
      std::fprintf(stderr,
                   "bench-check: FAIL op=%s missing from the current run\n",
                   OpName(op));
      ++failures;
      continue;
    }
    const double floor = base_rate[i] * floor_fraction;
    const bool pass = current->columns_per_sec >= floor;
    std::printf("bench-check: %s op=%-12s %.1f columns/s (baseline %.1f, "
                "floor %.1f)\n",
                pass ? "ok  " : "FAIL", OpName(op), current->columns_per_sec,
                base_rate[i], floor);
    if (!pass) ++failures;
  }
  if (failures > 0) {
    std::fprintf(stderr,
                 "bench-check: %d op(s) regressed past %.0f%% tolerance\n",
                 failures, tolerance_pct);
    return 1;
  }
  std::printf("bench-check: all %zu ops within %.0f%% of the baseline\n",
              base_ops.size(), tolerance_pct);
  return 0;
}

OpPoint ToPoint(uint32_t op, const MembershipReport& report) {
  OpPoint point;
  point.op = op;
  point.partitions_moved = report.partitions_moved;
  point.columns_moved = report.columns_moved;
  point.bytes_streamed = report.bytes_streamed;
  point.block_retries = report.block_retries;
  point.wall_us = report.wall_us;
  point.columns_per_sec =
      report.wall_us > 0.0
          ? static_cast<double>(report.columns_moved) * 1e6 / report.wall_us
          : 0.0;
  return point;
}

/// Runs `clients` threads x `queries` gathers each (message transport,
/// retries on) and collects their wall-clock latencies. `body` runs on
/// the calling thread while the clients gather — the membership churn
/// during the churn phase, nothing during the quiet phase.
template <typename Body>
GatherStats GatherPhase(InProcessCluster& cluster,
                        const WorkloadSpec& workload, uint32_t clients,
                        uint32_t queries, Body&& body) {
  GatherOptions options;
  options.transport = GatherTransport::kMessage;
  options.codec = WireCodecKind::kCompact;
  options.max_attempts = 5;
  std::vector<double> latencies(static_cast<size_t>(clients) * queries, 0.0);
  std::atomic<uint64_t> started{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (uint32_t q = 0; q < queries; ++q) {
        const GatherResult r = cluster.CountByTypeAll(workload, options);
        KV_CHECK(r.completed + r.failed == r.subqueries);
        latencies[static_cast<size_t>(c) * queries + q] = r.wall_us;
        started.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Let at least one gather land before the churn starts, so the ops
  // genuinely overlap in-flight queries.
  while (started.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  body();
  for (std::thread& t : threads) t.join();
  GatherStats stats;
  stats.gathers = latencies.size();
  stats.p50_us = Percentile(latencies, 0.50);
  stats.p95_us = Percentile(latencies, 0.95);
  stats.p99_us = Percentile(latencies, 0.99);
  return stats;
}

int Run(int argc, char** argv) {
  int64_t elements = 8000;
  int64_t keys = 48;
  int64_t nodes = 4;
  int64_t replication = 2;
  int64_t clients = 4;
  int64_t queries = 3;
  std::string json_out;
  std::string check_against;
  double tolerance_pct = 60.0;
  CliFlags flags;
  flags.Add("elements", &elements, "total elements per query");
  flags.Add("keys", &keys, "partitions per query");
  flags.Add("nodes", &nodes, "starting cluster size");
  flags.Add("replication", &replication, "copies of every partition");
  flags.Add("clients", &clients, "gather threads running through the churn");
  flags.Add("queries", &queries, "gathers each client issues per phase");
  flags.Add("json-out", &json_out, "write the scoreboard as JSON to FILE");
  flags.Add("check-against", &check_against,
            "compare this run against a baseline scoreboard JSON");
  flags.Add("tolerance-pct", &tolerance_pct,
            "allowed migration-throughput drop vs the baseline before "
            "failing");
  if (!flags.Parse(argc, argv)) return 1;
  if (tolerance_pct < 0.0 || tolerance_pct >= 100.0) {
    std::fprintf(stderr, "--tolerance-pct must be in [0, 100)\n");
    return 1;
  }
  if (replication < 1 || replication > nodes) {
    std::fprintf(stderr, "--replication must be in [1, nodes]\n");
    return 1;
  }
  if (nodes < 3) {
    std::fprintf(stderr, "--nodes must be >= 3 (the drill removes two)\n");
    return 1;
  }

  bench::Banner(
      "Rebalance throughput: live migration speed and its cost to gathers",
      "Section V's elasticity only pays off if ownership moves while the "
      "cluster serves: keys re-homed per second for join / decommission / "
      "permanent failure, with gather p99 during the churn vs quiet",
      std::to_string(keys) + " partitions x " + std::to_string(elements) +
          " elements, " + std::to_string(nodes) + " nodes, replication " +
          std::to_string(replication) + ", " + std::to_string(clients) +
          " gather clients");

  InProcessCluster cluster(static_cast<uint32_t>(nodes),
                           PlacementKind::kDhtRandom, StoreOptions{}, 7,
                           static_cast<uint32_t>(replication));
  const WorkloadSpec workload = UniformWorkload(
      static_cast<uint64_t>(elements), static_cast<uint64_t>(keys));
  uint64_t part_seed = 0;
  for (const PartitionRef& part : workload.partitions) {
    for (uint32_t j = 0; j < part.elements; ++j) {
      Column column;
      column.clustering = j;
      column.type_id = j % 8;
      column.payload = MakePayload(part_seed, j, 24);
      KV_CHECK(cluster.Put(workload.table, part.key, std::move(column)).ok());
    }
    ++part_seed;
  }
  cluster.FlushAll();

  const BenchConfig config{elements, keys,    nodes,
                           replication, clients, queries};

  // Quiet phase: the latency baseline, no churn.
  const GatherStats quiet =
      GatherPhase(cluster, workload, static_cast<uint32_t>(clients),
                  static_cast<uint32_t>(queries), [] {});

  // Churn phase: join a node, drain the first original, permanently kill
  // the second, all while the clients gather.
  std::vector<OpPoint> ops;
  const GatherStats churn = GatherPhase(
      cluster, workload, static_cast<uint32_t>(clients),
      static_cast<uint32_t>(queries), [&] {
        const Result<MembershipReport> joined = cluster.AddNode();
        KV_CHECK(joined.ok());
        ops.push_back(ToPoint(0, joined.value()));
        const Result<MembershipReport> drained = cluster.DecommissionNode(0);
        KV_CHECK(drained.ok());
        ops.push_back(ToPoint(1, drained.value()));
        const Result<MembershipReport> repaired =
            cluster.FailNodePermanently(1);
        KV_CHECK(repaired.ok());
        KV_CHECK(repaired.value().partitions_lost == 0);
        ops.push_back(ToPoint(2, repaired.value()));
      });

  TablePrinter table({"op", "partitions", "columns", "bytes", "retries",
                      "wall", "columns/s"});
  for (const OpPoint& p : ops) {
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.0f", p.columns_per_sec);
    table.AddRow({OpName(p.op),
                  TablePrinter::Cell(static_cast<int64_t>(p.partitions_moved)),
                  TablePrinter::Cell(static_cast<int64_t>(p.columns_moved)),
                  TablePrinter::Cell(static_cast<int64_t>(p.bytes_streamed)),
                  TablePrinter::Cell(static_cast<int64_t>(p.block_retries)),
                  FormatMicros(p.wall_us), std::string(rate)});
  }
  table.Print();

  TablePrinter gather_table({"phase", "gathers", "p50", "p95", "p99"});
  gather_table.AddRow({"quiet",
                       TablePrinter::Cell(static_cast<int64_t>(quiet.gathers)),
                       FormatMicros(quiet.p50_us), FormatMicros(quiet.p95_us),
                       FormatMicros(quiet.p99_us)});
  gather_table.AddRow({"churn",
                       TablePrinter::Cell(static_cast<int64_t>(churn.gathers)),
                       FormatMicros(churn.p50_us), FormatMicros(churn.p95_us),
                       FormatMicros(churn.p99_us)});
  gather_table.Print();
  std::printf(
      "\nevery churn-phase gather stayed balanced (completed + failed == "
      "subqueries) while three membership ops re-homed ownership; the "
      "p99 gap between the phases is what live migration costs readers\n");

  if (!json_out.empty()) {
    std::ofstream file(json_out);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", json_out.c_str());
      return 1;
    }
    file << ScoreboardJson(config, ops, quiet, churn);
    if (!file.good()) {
      std::fprintf(stderr, "write failed: %s\n", json_out.c_str());
      return 1;
    }
    std::printf("scoreboard written to %s\n", json_out.c_str());
  }
  if (!check_against.empty()) {
    return CheckAgainstBaseline(check_against, config, ops, tolerance_pct);
  }
  return 0;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Run(argc, argv); }
