#!/usr/bin/env bash
# Regression gate for the bench scoreboards: runs a quick-config
# master_throughput sweep, a rebalance churn, a query_mix pass over
# the four query plans, and an ingest batch-size ladder, comparing each
# against its committed baseline (BENCH_master_throughput.json,
# BENCH_rebalance.json, BENCH_query_mix.json, BENCH_ingest.json).
# All gates are lower-bound-only — a faster
# machine passes, a slowdown past the tolerance fails — so they catch
# "this PR made the gather path 3x slower" or "migration crawls now"
# without being flaky across hardware. The rebalance tolerance is wide
# (the churn ops take single-digit milliseconds while racing the gather
# clients, so run-to-run variance is high); its gate catches
# order-of-magnitude regressions, not percentage drift.
#
# Usage: tools/bench_check.sh            # compare against the baselines
#        tools/bench_check.sh --update   # rewrite the baselines from a run
#
# The quick config keeps a full sweep under ~15s; override via env:
#   BENCH_ELEMENTS BENCH_KEYS BENCH_NODES BENCH_MAX_CLIENTS
#   BENCH_QUERIES BENCH_TOLERANCE_PCT BENCH_BUILD_DIR
#   BENCH_REBALANCE_KEYS BENCH_REBALANCE_TOLERANCE_PCT
#   BENCH_QUERY_MIX_REPEATS BENCH_QUERY_MIX_TOLERANCE_PCT
#   BENCH_INGEST_READ_ROUNDS BENCH_INGEST_TOLERANCE_PCT BENCH_INGEST_WAL
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BENCH_BUILD_DIR:-build}"
BASELINE="bench/BENCH_master_throughput.json"
ELEMENTS="${BENCH_ELEMENTS:-8000}"
KEYS="${BENCH_KEYS:-40}"
NODES="${BENCH_NODES:-4}"
MAX_CLIENTS="${BENCH_MAX_CLIENTS:-4}"
QUERIES="${BENCH_QUERIES:-3}"
TOLERANCE_PCT="${BENCH_TOLERANCE_PCT:-60}"
BIN="$BUILD_DIR/bench/master_throughput"

REBALANCE_BASELINE="bench/BENCH_rebalance.json"
REBALANCE_KEYS="${BENCH_REBALANCE_KEYS:-48}"
REBALANCE_TOLERANCE_PCT="${BENCH_REBALANCE_TOLERANCE_PCT:-95}"
REBALANCE_BIN="$BUILD_DIR/bench/rebalance"

QUERY_MIX_BASELINE="bench/BENCH_query_mix.json"
QUERY_MIX_REPEATS="${BENCH_QUERY_MIX_REPEATS:-20}"
QUERY_MIX_TOLERANCE_PCT="${BENCH_QUERY_MIX_TOLERANCE_PCT:-75}"
QUERY_MIX_BIN="$BUILD_DIR/bench/query_mix"

INGEST_BASELINE="bench/BENCH_ingest.json"
INGEST_READ_ROUNDS="${BENCH_INGEST_READ_ROUNDS:-16}"
INGEST_TOLERANCE_PCT="${BENCH_INGEST_TOLERANCE_PCT:-75}"
INGEST_WAL="${BENCH_INGEST_WAL:-$BUILD_DIR/bench_check_ingest.wal}"
INGEST_BIN="$BUILD_DIR/bench/ingest"

for bin in "$BIN" "$REBALANCE_BIN" "$QUERY_MIX_BIN" "$INGEST_BIN"; do
  if [[ ! -x "$bin" ]]; then
    echo "bench_check: $bin not built — run: cmake --build $BUILD_DIR -j --target $(basename "$bin")" >&2
    exit 1
  fi
done

common_flags=(
  --elements="$ELEMENTS" --keys="$KEYS" --nodes="$NODES"
  --max-clients="$MAX_CLIENTS" --queries="$QUERIES"
)
rebalance_flags=(
  --elements="$ELEMENTS" --keys="$REBALANCE_KEYS" --nodes="$NODES"
)
query_mix_flags=(
  --elements="$ELEMENTS" --keys="$REBALANCE_KEYS" --nodes="$NODES"
  --repeats="$QUERY_MIX_REPEATS"
)
ingest_flags=(
  --elements="$ELEMENTS" --keys="$KEYS" --nodes="$NODES"
  --read-rounds="$INGEST_READ_ROUNDS" --wal="$INGEST_WAL"
)

if [[ "${1:-}" == "--update" ]]; then
  "$BIN" "${common_flags[@]}" --json-out="$BASELINE"
  echo "bench_check: baseline updated at $BASELINE"
  "$REBALANCE_BIN" "${rebalance_flags[@]}" --json-out="$REBALANCE_BASELINE"
  echo "bench_check: baseline updated at $REBALANCE_BASELINE"
  "$QUERY_MIX_BIN" "${query_mix_flags[@]}" --json-out="$QUERY_MIX_BASELINE"
  echo "bench_check: baseline updated at $QUERY_MIX_BASELINE"
  "$INGEST_BIN" "${ingest_flags[@]}" --json-out="$INGEST_BASELINE"
  echo "bench_check: baseline updated at $INGEST_BASELINE"
  exit 0
fi

for baseline in "$BASELINE" "$REBALANCE_BASELINE" "$QUERY_MIX_BASELINE" \
                "$INGEST_BASELINE"; do
  if [[ ! -f "$baseline" ]]; then
    echo "bench_check: no baseline at $baseline — create one with: tools/bench_check.sh --update" >&2
    exit 1
  fi
done

"$BIN" "${common_flags[@]}" \
  --check-against="$BASELINE" --tolerance-pct="$TOLERANCE_PCT"
"$REBALANCE_BIN" "${rebalance_flags[@]}" \
  --check-against="$REBALANCE_BASELINE" \
  --tolerance-pct="$REBALANCE_TOLERANCE_PCT"
"$QUERY_MIX_BIN" "${query_mix_flags[@]}" \
  --check-against="$QUERY_MIX_BASELINE" \
  --tolerance-pct="$QUERY_MIX_TOLERANCE_PCT"
"$INGEST_BIN" "${ingest_flags[@]}" \
  --check-against="$INGEST_BASELINE" \
  --tolerance-pct="$INGEST_TOLERANCE_PCT"
