#!/usr/bin/env bash
# Regression gate for the bench scoreboard: runs a quick-config
# master_throughput sweep and compares its queries/s against the
# committed baseline (BENCH_master_throughput.json). The gate is
# lower-bound-only — a faster machine passes, a slowdown past the
# tolerance fails — so it catches "this PR made the gather path 3x
# slower" without being flaky across hardware.
#
# Usage: tools/bench_check.sh            # compare against the baseline
#        tools/bench_check.sh --update   # rewrite the baseline from a run
#
# The quick config keeps a full sweep under ~10s; override via env:
#   BENCH_ELEMENTS BENCH_KEYS BENCH_NODES BENCH_MAX_CLIENTS
#   BENCH_QUERIES BENCH_TOLERANCE_PCT BENCH_BUILD_DIR
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BENCH_BUILD_DIR:-build}"
BASELINE="bench/BENCH_master_throughput.json"
ELEMENTS="${BENCH_ELEMENTS:-8000}"
KEYS="${BENCH_KEYS:-40}"
NODES="${BENCH_NODES:-4}"
MAX_CLIENTS="${BENCH_MAX_CLIENTS:-4}"
QUERIES="${BENCH_QUERIES:-3}"
TOLERANCE_PCT="${BENCH_TOLERANCE_PCT:-60}"
BIN="$BUILD_DIR/bench/master_throughput"

if [[ ! -x "$BIN" ]]; then
  echo "bench_check: $BIN not built — run: cmake --build $BUILD_DIR -j --target master_throughput" >&2
  exit 1
fi

common_flags=(
  --elements="$ELEMENTS" --keys="$KEYS" --nodes="$NODES"
  --max-clients="$MAX_CLIENTS" --queries="$QUERIES"
)

if [[ "${1:-}" == "--update" ]]; then
  "$BIN" "${common_flags[@]}" --json-out="$BASELINE"
  echo "bench_check: baseline updated at $BASELINE"
  exit 0
fi

if [[ ! -f "$BASELINE" ]]; then
  echo "bench_check: no baseline at $BASELINE — create one with: tools/bench_check.sh --update" >&2
  exit 1
fi

"$BIN" "${common_flags[@]}" \
  --check-against="$BASELINE" --tolerance-pct="$TOLERANCE_PCT"
