// kvscale — command-line front-end to the performance model.
//
// The paper closes: the model lets a developer "in front of a set of
// technologies and SLAs, choose the right architecture for its system".
// This tool exposes that workflow without writing C++:
//
//   kvscale predict  --elements 1000000 --keys 1000 --nodes 16
//   kvscale optimize --elements 1000000 --nodes 16
//   kvscale sweep    --elements 1000000 --keys 4000 --max-nodes 128
//   kvscale simulate --elements 1000000 --keys 10000 --nodes 16 --slow-master
//   kvscale bands    --elements 1000000 --keys 100 --nodes 16
//   kvscale gather   --elements 100000 --keys 200 --nodes 4 --rounds 2
//
// Every subcommand accepts --t-msg-us (master cost per message) and
// --device (dram|hbm|nvm|ssd|hdd) to describe the hardware under study,
// plus --trace-out (Chrome trace-event JSON, open in Perfetto) and
// --metrics-out (JSONL metric snapshot) for machine-readable telemetry.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "cluster/cluster_sim.hpp"
#include "cluster/in_process_cluster.hpp"
#include "common/cli.hpp"
#include "common/table_printer.hpp"
#include "model/architecture.hpp"
#include "model/monte_carlo.hpp"
#include "model/optimizer.hpp"
#include "store/row.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/span_tracer.hpp"
#include "trace/telemetry_bridge.hpp"

namespace kvscale {
namespace {

/// Flags shared by every subcommand.
struct CommonArgs {
  int64_t elements = 1000000;
  int64_t keys = 1000;
  int64_t nodes = 16;
  double t_msg_us = 19.0;
  std::string device = "dram";
  std::string trace_out;    ///< Chrome trace-event JSON path ("" = off)
  std::string metrics_out;  ///< JSONL metrics snapshot path ("" = off)

  void Register(CliFlags& flags) {
    flags.Add("elements", &elements, "elements the query aggregates");
    flags.Add("keys", &keys, "partitions the query reads");
    flags.Add("nodes", &nodes, "cluster size");
    flags.Add("t-msg-us", &t_msg_us, "master CPU cost per message (us)");
    flags.Add("device", &device, "working-set tier: dram|hbm|nvm|ssd|hdd");
    flags.Add("trace-out", &trace_out,
              "write spans as Chrome trace-event JSON to this file");
    flags.Add("metrics-out", &metrics_out,
              "write a JSONL metrics snapshot to this file");
  }

  bool ResolveDevice(DeviceModel& out) const {
    if (device == "dram") out = DramDevice();
    else if (device == "hbm") out = HbmDevice();
    else if (device == "nvm") out = NvmDevice();
    else if (device == "ssd") out = SataSsdDevice();
    else if (device == "hdd") out = HddDevice();
    else {
      std::fprintf(stderr, "unknown device '%s'\n", device.c_str());
      return false;
    }
    return true;
  }

  QueryModel BuildModel() const {
    MasterModel::Params master;
    master.time_per_message = t_msg_us;
    master.time_per_result = t_msg_us * 0.25;
    DeviceModel dev = DramDevice();
    (void)ResolveDevice(dev);
    return QueryModel(DbModel{}, MasterModel(master)).WithDevice(dev);
  }
};

/// Honours --trace-out / --metrics-out; returns false (after printing the
/// error) if a requested export failed.
bool ExportTelemetry(const CommonArgs& args, const SpanTracer& tracer,
                     const MetricsRegistry& registry) {
  if (!args.trace_out.empty()) {
    const Status status = WriteChromeTrace(tracer, args.trace_out);
    if (!status.ok()) {
      std::fprintf(stderr, "--trace-out: %s\n", status.ToString().c_str());
      return false;
    }
    std::printf("wrote %zu spans to %s (open in ui.perfetto.dev)\n",
                tracer.size(), args.trace_out.c_str());
  }
  if (!args.metrics_out.empty()) {
    const Status status = WriteMetricsJsonl(registry, args.metrics_out);
    if (!status.ok()) {
      std::fprintf(stderr, "--metrics-out: %s\n", status.ToString().c_str());
      return false;
    }
    std::printf("wrote metrics snapshot to %s\n", args.metrics_out.c_str());
  }
  return true;
}

int CmdPredict(CommonArgs& args) {
  SpanTracer tracer;
  MetricsRegistry registry;
  tracer.SetTrackName(0, "model");
  const QueryModel model = args.BuildModel();
  SpanTracer::Scope span = tracer.StartSpan("predict", 0);
  span.Attr("elements", std::to_string(args.elements));
  span.Attr("keys", std::to_string(args.keys));
  span.Attr("nodes", std::to_string(args.nodes));
  const QueryPrediction p = model.Predict(
      static_cast<uint64_t>(args.elements), static_cast<uint64_t>(args.keys),
      static_cast<uint32_t>(args.nodes));
  span.End();
  registry.GetGauge("model.predicted_total_us").Set(p.total);
  registry.GetGauge("model.master_issue_us").Set(p.master_issue);
  registry.GetGauge("model.slowest_slave_us").Set(p.slowest_slave);
  std::printf("prediction for %lld elements / %lld partitions / %lld "
              "nodes:\n",
              static_cast<long long>(args.elements),
              static_cast<long long>(args.keys),
              static_cast<long long>(args.nodes));
  TablePrinter table({"component", "value"});
  table.AddRow({"elements per partition", TablePrinter::Cell(p.keysize, 0)});
  table.AddRow({"max partitions on one node (F5)",
                TablePrinter::Cell(p.key_max, 1)});
  table.AddRow({"effective time per request (F8)",
                FormatMicros(p.db_per_request)});
  table.AddRow({"master issue time (F3)", FormatMicros(p.master_issue)});
  table.AddRow({"slowest slave (F4)", FormatMicros(p.slowest_slave)});
  table.AddRow({"result fetch", FormatMicros(p.result_fetch)});
  table.AddRow({"TOTAL (F2)", FormatMicros(p.total)});
  table.AddRow({"bottleneck", p.BottleneckName()});
  table.Print();
  return ExportTelemetry(args, tracer, registry) ? 0 : 1;
}

int CmdOptimize(CommonArgs& args) {
  SpanTracer tracer;
  MetricsRegistry registry;
  tracer.SetTrackName(0, "model");
  PartitionOptimizer optimizer(args.BuildModel());
  SpanTracer::Scope span = tracer.StartSpan("optimize", 0);
  span.Attr("elements", std::to_string(args.elements));
  span.Attr("nodes", std::to_string(args.nodes));
  const auto opt = optimizer.Optimize(static_cast<uint64_t>(args.elements),
                                      static_cast<uint32_t>(args.nodes));
  span.End();
  registry.GetGauge("model.optimal_keys").Set(static_cast<double>(opt.keys));
  registry.GetGauge("model.optimal_total_us").Set(opt.prediction.total);
  std::printf(
      "optimal partitioning for %lld elements on %lld nodes:\n"
      "  %llu partitions of ~%.0f elements -> %s (bottleneck: %s)\n",
      static_cast<long long>(args.elements),
      static_cast<long long>(args.nodes),
      static_cast<unsigned long long>(opt.keys), opt.prediction.keysize,
      FormatMicros(opt.prediction.total).c_str(),
      opt.prediction.BottleneckName().c_str());
  const QueryPrediction fixed = args.BuildModel().Predict(
      static_cast<uint64_t>(args.elements), static_cast<uint64_t>(args.keys),
      static_cast<uint32_t>(args.nodes));
  std::printf("  (your --keys=%lld would take %s: %s)\n",
              static_cast<long long>(args.keys),
              FormatMicros(fixed.total).c_str(),
              FormatPercent(fixed.total / opt.prediction.total - 1.0).c_str());
  return ExportTelemetry(args, tracer, registry) ? 0 : 1;
}

int CmdSweep(CommonArgs& args, int64_t max_nodes) {
  SpanTracer tracer;
  MetricsRegistry registry;
  tracer.SetTrackName(0, "model");
  const QueryModel model = args.BuildModel();
  SpanTracer::Scope span = tracer.StartSpan("sweep", 0);
  span.Attr("elements", std::to_string(args.elements));
  span.Attr("keys", std::to_string(args.keys));
  span.Attr("max_nodes", std::to_string(max_nodes));
  const auto profile = ScalingProfile(
      model, static_cast<uint64_t>(args.elements),
      static_cast<uint64_t>(args.keys), static_cast<uint32_t>(max_nodes));
  span.End();
  LatencyHistogram& sweep_hist = registry.GetHistogram("model.sweep.query_us");
  for (const auto& point : profile) sweep_hist.Record(point.query_time);
  TablePrinter table({"nodes", "query time", "master", "slaves", "bound by"});
  for (uint32_t n = 1; n <= static_cast<uint32_t>(max_nodes); n *= 2) {
    const auto& p = profile[n - 1];
    table.AddRow({TablePrinter::Cell(static_cast<int64_t>(n)),
                  FormatMicros(p.query_time), FormatMicros(p.master_time),
                  FormatMicros(p.slave_time),
                  p.master_bound ? "master" : "slaves"});
  }
  table.Print();
  const uint32_t crossover = MasterSaturationNodes(
      model, static_cast<uint64_t>(args.elements),
      static_cast<uint64_t>(args.keys), static_cast<uint32_t>(max_nodes));
  if (crossover > 0) {
    std::printf("single master saturates at %u nodes for this shape.\n",
                crossover);
  } else {
    std::printf("the master keeps up at every size up to %lld nodes.\n",
                static_cast<long long>(max_nodes));
  }
  registry.GetGauge("model.master_saturation_nodes")
      .Set(static_cast<double>(crossover));
  return ExportTelemetry(args, tracer, registry) ? 0 : 1;
}

int CmdSimulate(CommonArgs& args, bool slow_master, int64_t seed) {
  ClusterConfig config;
  config.nodes = static_cast<uint32_t>(args.nodes);
  config.seed = static_cast<uint64_t>(seed);
  if (slow_master) {
    config.serializer = JavaLikeProfile();
    config.size_messages_with_compact_codec = false;
  } else {
    config.serializer.cpu_fixed = args.t_msg_us * 0.6;
    config.serializer.cpu_per_byte =
        args.t_msg_us * 0.4 / config.serializer.bytes_per_message;
  }
  (void)args.ResolveDevice(config.device);
  const auto run = RunDistributedQuery(
      config, UniformWorkload(static_cast<uint64_t>(args.elements),
                              static_cast<uint64_t>(args.keys)));
  std::printf("simulated run (%s master):\n",
              slow_master ? "java-like 150 us" : "optimised");
  std::printf("  makespan %s | master done sending at %s | request "
              "imbalance %s\n",
              FormatMicros(run.makespan).c_str(),
              FormatMicros(run.master_issue_done).c_str(),
              FormatPercent(run.RequestImbalance()).c_str());
  std::printf("%s", run.tracer.SummaryReport().c_str());

  // Virtual-time stages export through the same telemetry pipeline as
  // real executions (trace/telemetry_bridge.hpp).
  SpanTracer tracer;
  MetricsRegistry registry;
  AppendStageSpans(run.tracer, tracer);
  RecordStageHistograms(run.tracer, registry);
  registry.GetGauge("sim.makespan_us").Set(run.makespan);
  registry.GetGauge("sim.network_messages")
      .Set(static_cast<double>(run.network_messages));
  registry.GetGauge("sim.network_bytes").Set(run.network_bytes);
  return ExportTelemetry(args, tracer, registry) ? 0 : 1;
}

int CmdBands(CommonArgs& args, int64_t trials) {
  Rng rng(7);
  SpanTracer tracer;
  MetricsRegistry registry;
  tracer.SetTrackName(0, "model");
  SpanTracer::Scope span = tracer.StartSpan("bands", 0);
  span.Attr("trials", std::to_string(trials));
  const auto bands = PredictDistribution(
      args.BuildModel(), static_cast<uint64_t>(args.elements),
      static_cast<uint64_t>(args.keys), static_cast<uint32_t>(args.nodes),
      static_cast<uint64_t>(trials), rng);
  span.End();
  registry.GetGauge("model.bands.p50_us").Set(bands.p50);
  registry.GetGauge("model.bands.p99_us").Set(bands.p99);
  TablePrinter table({"statistic", "value"});
  table.AddRow({"Formula 2 point", FormatMicros(bands.formula_point)});
  table.AddRow({"mean", FormatMicros(bands.mean)});
  table.AddRow({"p10", FormatMicros(bands.p10)});
  table.AddRow({"p50", FormatMicros(bands.p50)});
  table.AddRow({"p90", FormatMicros(bands.p90)});
  table.AddRow({"p99", FormatMicros(bands.p99)});
  table.Print();
  std::printf("(Monte-Carlo over %lld placement + noise draws)\n",
              static_cast<long long>(trials));
  return ExportTelemetry(args, tracer, registry) ? 0 : 1;
}

int CmdGather(CommonArgs& args, int64_t threads, int64_t rounds,
              int64_t payload_bytes, int64_t seed) {
  SpanTracer tracer;
  MetricsRegistry registry;

  StoreOptions store_options;
  store_options.metrics = &registry;
  InProcessCluster cluster(static_cast<uint32_t>(args.nodes),
                           PlacementKind::kDhtRandom, store_options,
                           static_cast<uint64_t>(seed));
  cluster.AttachTelemetry(&tracer, &registry);

  const WorkloadSpec workload = UniformWorkload(
      static_cast<uint64_t>(args.elements), static_cast<uint64_t>(args.keys));
  {
    SpanTracer::Scope load = tracer.StartSpan("load", cluster.master_track());
    load.Attr("partitions", std::to_string(workload.partitions.size()));
    uint64_t part_seed = 0;
    for (const PartitionRef& part : workload.partitions) {
      for (uint32_t j = 0; j < part.elements; ++j) {
        Column column;
        column.clustering = j;
        column.type_id = j % 8;
        column.payload = MakePayload(part_seed, j,
                                     static_cast<size_t>(payload_bytes));
        cluster.Put(workload.table, part.key, std::move(column));
      }
      ++part_seed;
    }
    SpanTracer::Scope flush =
        tracer.StartSpan("flush-all", cluster.master_track());
    cluster.FlushAll();
  }

  GatherResult result;
  for (int64_t r = 0; r < rounds; ++r) {
    result = threads > 1
                 ? cluster.CountByTypeAllParallel(
                       workload, static_cast<uint32_t>(threads))
                 : cluster.CountByTypeAll(workload);
  }

  uint64_t total = 0;
  for (const auto& [type, count] : result.totals) total += count;
  std::printf("real scatter/gather over %zu partitions x %lld rounds "
              "(%lld thread%s):\n",
              workload.partitions.size(), static_cast<long long>(rounds),
              static_cast<long long>(std::max<int64_t>(threads, 1)),
              threads > 1 ? "s" : "");
  std::printf("  %llu elements counted across %zu types | %llu partitions "
              "missing\n",
              static_cast<unsigned long long>(total), result.totals.size(),
              static_cast<unsigned long long>(result.partitions_missing));
  std::printf("%s", registry.SummaryReport().c_str());
  return ExportTelemetry(args, tracer, registry) ? 0 : 1;
}

void PrintUsage() {
  std::printf(
      "kvscale <command> [flags]\n"
      "commands:\n"
      "  predict    Formula 2 breakdown for (elements, keys, nodes)\n"
      "  optimize   best partition count for the cluster\n"
      "  sweep      query time vs node count + master saturation point\n"
      "  simulate   one virtual-time run of the master/slave prototype\n"
      "  bands      Monte-Carlo percentile bands of the prediction\n"
      "  gather     real scatter/gather over in-process stores, with\n"
      "             store/cluster telemetry (try --rounds 2 for cache hits)\n"
      "common flags: --elements --keys --nodes --t-msg-us --device\n"
      "              --trace-out=FILE --metrics-out=FILE\n"
      "see each command's --help for its extras.\n");
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 1;
  }
  const std::string command = argv[1];
  CommonArgs args;
  CliFlags flags;
  args.Register(flags);

  if (command == "predict") {
    if (!flags.Parse(argc - 1, argv + 1)) return 1;
    DeviceModel probe;
    if (!args.ResolveDevice(probe)) return 1;
    return CmdPredict(args);
  }
  if (command == "optimize") {
    if (!flags.Parse(argc - 1, argv + 1)) return 1;
    return CmdOptimize(args);
  }
  if (command == "sweep") {
    int64_t max_nodes = 128;
    flags.Add("max-nodes", &max_nodes, "largest cluster evaluated");
    if (!flags.Parse(argc - 1, argv + 1)) return 1;
    return CmdSweep(args, max_nodes);
  }
  if (command == "simulate") {
    bool slow_master = false;
    int64_t seed = 42;
    flags.Add("slow-master", &slow_master,
              "use the java-default 150 us/message profile");
    flags.Add("seed", &seed, "simulation seed");
    if (!flags.Parse(argc - 1, argv + 1)) return 1;
    return CmdSimulate(args, slow_master, seed);
  }
  if (command == "bands") {
    int64_t trials = 1000;
    flags.Add("trials", &trials, "Monte-Carlo draws");
    if (!flags.Parse(argc - 1, argv + 1)) return 1;
    return CmdBands(args, trials);
  }
  if (command == "gather") {
    int64_t threads = 1;
    int64_t rounds = 2;
    int64_t payload_bytes = 30;
    int64_t seed = 42;
    flags.Add("threads", &threads, "gather worker threads (1 = serial)");
    flags.Add("rounds", &rounds,
              "query repetitions (first is cold, later ones hit the cache)");
    flags.Add("payload-bytes", &payload_bytes, "payload bytes per element");
    flags.Add("seed", &seed, "placement seed");
    if (!flags.Parse(argc - 1, argv + 1)) return 1;
    return CmdGather(args, threads, rounds, payload_bytes, seed);
  }
  if (command == "--help" || command == "help" || command == "-h") {
    PrintUsage();
    return 0;
  }
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  PrintUsage();
  return 1;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Main(argc, argv); }
