// kvscale — command-line front-end to the performance model.
//
// The paper closes: the model lets a developer "in front of a set of
// technologies and SLAs, choose the right architecture for its system".
// This tool exposes that workflow without writing C++:
//
//   kvscale predict  --elements 1000000 --keys 1000 --nodes 16
//   kvscale optimize --elements 1000000 --nodes 16
//   kvscale sweep    --elements 1000000 --keys 4000 --max-nodes 128
//   kvscale simulate --elements 1000000 --keys 10000 --nodes 16 --slow-master
//   kvscale bands    --elements 1000000 --keys 100 --nodes 16
//   kvscale gather   --elements 100000 --keys 200 --nodes 4 --rounds 2
//   kvscale gather   --nodes 4 --replication 3 --fail-node 0 --fail-rate 0.01
//   kvscale gather   --nodes 4 --codec compact --batch --workers-per-node 2
//   kvscale gather   --query scan --scan-start 10 --scan-end 99 --limit 50
//   kvscale gather   --query topk --k 10 --nodes 4 --replication 2
//   kvscale gather   --query box --box 0.2,0.2,0.2,0.5,0.5,0.5 --level 4
//   kvscale put-bench --nodes 4 --replication 3 --batch 16 --quorum majority
//   kvscale put-bench --codec compact --clients 4 --wal /tmp/ingest.wal
//
// Every subcommand accepts --t-msg-us (master cost per message) and
// --device (dram|hbm|nvm|ssd|hdd) to describe the hardware under study,
// plus --trace-out (Chrome trace-event JSON, open in Perfetto) and
// --metrics-out (JSONL metric snapshot) for machine-readable telemetry.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "common/check.hpp"
#include "cluster/in_process_cluster.hpp"
#include "common/cli.hpp"
#include "common/table_printer.hpp"
#include "model/architecture.hpp"
#include "model/monte_carlo.hpp"
#include "model/optimizer.hpp"
#include "store/row.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/span_tracer.hpp"
#include "telemetry/timeseries.hpp"
#include "trace/stage_trace.hpp"
#include "trace/telemetry_bridge.hpp"
#include "wire/envelope.hpp"
#include "workload/box_query.hpp"

namespace kvscale {
namespace {

/// Flags shared by every subcommand.
struct CommonArgs {
  int64_t elements = 1000000;
  int64_t keys = 1000;
  int64_t nodes = 16;
  double t_msg_us = 19.0;
  std::string device = "dram";
  std::string trace_out;    ///< Chrome trace-event JSON path ("" = off)
  std::string metrics_out;  ///< JSONL metrics snapshot path ("" = off)

  void Register(CliFlags& flags) {
    flags.Add("elements", &elements, "elements the query aggregates");
    flags.Add("keys", &keys, "partitions the query reads");
    flags.Add("nodes", &nodes, "cluster size");
    flags.Add("t-msg-us", &t_msg_us, "master CPU cost per message (us)");
    flags.Add("device", &device, "working-set tier: dram|hbm|nvm|ssd|hdd");
    flags.Add("trace-out", &trace_out,
              "write spans as Chrome trace-event JSON to this file");
    flags.Add("metrics-out", &metrics_out,
              "write a JSONL metrics snapshot to this file");
  }

  bool ResolveDevice(DeviceModel& out) const {
    if (device == "dram") out = DramDevice();
    else if (device == "hbm") out = HbmDevice();
    else if (device == "nvm") out = NvmDevice();
    else if (device == "ssd") out = SataSsdDevice();
    else if (device == "hdd") out = HddDevice();
    else {
      std::fprintf(stderr, "unknown device '%s'\n", device.c_str());
      return false;
    }
    return true;
  }

  QueryModel BuildModel() const {
    MasterModel::Params master;
    master.time_per_message = t_msg_us;
    master.time_per_result = t_msg_us * 0.25;
    DeviceModel dev = DramDevice();
    // Main() resolves --device right after flag parsing, so this cannot
    // fail on user input.
    KV_CHECK(ResolveDevice(dev));
    return QueryModel(DbModel{}, MasterModel(master)).WithDevice(dev);
  }
};

/// Honours --trace-out / --metrics-out; returns false (after printing the
/// error) if a requested export failed.
bool ExportTelemetry(const CommonArgs& args, const SpanTracer& tracer,
                     const MetricsRegistry& registry) {
  if (!args.trace_out.empty()) {
    const Status status = WriteChromeTrace(tracer, args.trace_out);
    if (!status.ok()) {
      std::fprintf(stderr, "--trace-out: %s\n", status.ToString().c_str());
      return false;
    }
    std::printf("wrote %zu spans to %s (open in ui.perfetto.dev)\n",
                tracer.size(), args.trace_out.c_str());
  }
  if (!args.metrics_out.empty()) {
    const Status status = WriteMetricsJsonl(registry, args.metrics_out);
    if (!status.ok()) {
      std::fprintf(stderr, "--metrics-out: %s\n", status.ToString().c_str());
      return false;
    }
    std::printf("wrote metrics snapshot to %s\n", args.metrics_out.c_str());
  }
  return true;
}

int CmdPredict(CommonArgs& args) {
  SpanTracer tracer;
  MetricsRegistry registry;
  tracer.SetTrackName(0, "model");
  const QueryModel model = args.BuildModel();
  SpanTracer::Scope span = tracer.StartSpan("predict", 0);
  span.Attr("elements", std::to_string(args.elements));
  span.Attr("keys", std::to_string(args.keys));
  span.Attr("nodes", std::to_string(args.nodes));
  const QueryPrediction p = model.Predict(
      static_cast<uint64_t>(args.elements), static_cast<uint64_t>(args.keys),
      static_cast<uint32_t>(args.nodes));
  span.End();
  registry.GetGauge("model.predicted_total_us").Set(p.total);
  registry.GetGauge("model.master_issue_us").Set(p.master_issue);
  registry.GetGauge("model.slowest_slave_us").Set(p.slowest_slave);
  std::printf("prediction for %lld elements / %lld partitions / %lld "
              "nodes:\n",
              static_cast<long long>(args.elements),
              static_cast<long long>(args.keys),
              static_cast<long long>(args.nodes));
  TablePrinter table({"component", "value"});
  table.AddRow({"elements per partition", TablePrinter::Cell(p.keysize, 0)});
  table.AddRow({"max partitions on one node (F5)",
                TablePrinter::Cell(p.key_max, 1)});
  table.AddRow({"effective time per request (F8)",
                FormatMicros(p.db_per_request)});
  table.AddRow({"master issue time (F3)", FormatMicros(p.master_issue)});
  table.AddRow({"slowest slave (F4)", FormatMicros(p.slowest_slave)});
  table.AddRow({"result fetch", FormatMicros(p.result_fetch)});
  table.AddRow({"TOTAL (F2)", FormatMicros(p.total)});
  table.AddRow({"bottleneck", p.BottleneckName()});
  table.Print();
  return ExportTelemetry(args, tracer, registry) ? 0 : 1;
}

int CmdOptimize(CommonArgs& args) {
  SpanTracer tracer;
  MetricsRegistry registry;
  tracer.SetTrackName(0, "model");
  PartitionOptimizer optimizer(args.BuildModel());
  SpanTracer::Scope span = tracer.StartSpan("optimize", 0);
  span.Attr("elements", std::to_string(args.elements));
  span.Attr("nodes", std::to_string(args.nodes));
  const auto opt = optimizer.Optimize(static_cast<uint64_t>(args.elements),
                                      static_cast<uint32_t>(args.nodes));
  span.End();
  registry.GetGauge("model.optimal_keys").Set(static_cast<double>(opt.keys));
  registry.GetGauge("model.optimal_total_us").Set(opt.prediction.total);
  std::printf(
      "optimal partitioning for %lld elements on %lld nodes:\n"
      "  %llu partitions of ~%.0f elements -> %s (bottleneck: %s)\n",
      static_cast<long long>(args.elements),
      static_cast<long long>(args.nodes),
      static_cast<unsigned long long>(opt.keys), opt.prediction.keysize,
      FormatMicros(opt.prediction.total).c_str(),
      opt.prediction.BottleneckName().c_str());
  const QueryPrediction fixed = args.BuildModel().Predict(
      static_cast<uint64_t>(args.elements), static_cast<uint64_t>(args.keys),
      static_cast<uint32_t>(args.nodes));
  std::printf("  (your --keys=%lld would take %s: %s)\n",
              static_cast<long long>(args.keys),
              FormatMicros(fixed.total).c_str(),
              FormatPercent(fixed.total / opt.prediction.total - 1.0).c_str());
  return ExportTelemetry(args, tracer, registry) ? 0 : 1;
}

int CmdSweep(CommonArgs& args, int64_t max_nodes) {
  SpanTracer tracer;
  MetricsRegistry registry;
  tracer.SetTrackName(0, "model");
  const QueryModel model = args.BuildModel();
  SpanTracer::Scope span = tracer.StartSpan("sweep", 0);
  span.Attr("elements", std::to_string(args.elements));
  span.Attr("keys", std::to_string(args.keys));
  span.Attr("max_nodes", std::to_string(max_nodes));
  const auto profile = ScalingProfile(
      model, static_cast<uint64_t>(args.elements),
      static_cast<uint64_t>(args.keys), static_cast<uint32_t>(max_nodes));
  span.End();
  LatencyHistogram& sweep_hist = registry.GetHistogram("model.sweep.query_us");
  for (const auto& point : profile) sweep_hist.Record(point.query_time);
  TablePrinter table({"nodes", "query time", "master", "slaves", "bound by"});
  for (uint32_t n = 1; n <= static_cast<uint32_t>(max_nodes); n *= 2) {
    const auto& p = profile[n - 1];
    table.AddRow({TablePrinter::Cell(static_cast<int64_t>(n)),
                  FormatMicros(p.query_time), FormatMicros(p.master_time),
                  FormatMicros(p.slave_time),
                  p.master_bound ? "master" : "slaves"});
  }
  table.Print();
  const uint32_t crossover = MasterSaturationNodes(
      model, static_cast<uint64_t>(args.elements),
      static_cast<uint64_t>(args.keys), static_cast<uint32_t>(max_nodes));
  if (crossover > 0) {
    std::printf("single master saturates at %u nodes for this shape.\n",
                crossover);
  } else {
    std::printf("the master keeps up at every size up to %lld nodes.\n",
                static_cast<long long>(max_nodes));
  }
  registry.GetGauge("model.master_saturation_nodes")
      .Set(static_cast<double>(crossover));
  return ExportTelemetry(args, tracer, registry) ? 0 : 1;
}

int CmdSimulate(CommonArgs& args, bool slow_master, int64_t seed) {
  ClusterConfig config;
  config.nodes = static_cast<uint32_t>(args.nodes);
  config.seed = static_cast<uint64_t>(seed);
  if (slow_master) {
    config.serializer = JavaLikeProfile();
    config.size_messages_with_compact_codec = false;
  } else {
    config.serializer.cpu_fixed = args.t_msg_us * 0.6;
    config.serializer.cpu_per_byte =
        args.t_msg_us * 0.4 / config.serializer.bytes_per_message;
  }
  KV_CHECK(args.ResolveDevice(config.device));
  const auto run = RunDistributedQuery(
      config, UniformWorkload(static_cast<uint64_t>(args.elements),
                              static_cast<uint64_t>(args.keys)));
  std::printf("simulated run (%s master):\n",
              slow_master ? "java-like 150 us" : "optimised");
  std::printf("  makespan %s | master done sending at %s | request "
              "imbalance %s\n",
              FormatMicros(run.makespan).c_str(),
              FormatMicros(run.master_issue_done).c_str(),
              FormatPercent(run.RequestImbalance()).c_str());
  std::printf("%s", run.tracer.SummaryReport().c_str());

  // Virtual-time stages export through the same telemetry pipeline as
  // real executions (trace/telemetry_bridge.hpp).
  SpanTracer tracer;
  MetricsRegistry registry;
  AppendStageSpans(run.tracer, tracer);
  RecordStageHistograms(run.tracer, registry);
  registry.GetGauge("sim.makespan_us").Set(run.makespan);
  registry.GetGauge("sim.network_messages")
      .Set(static_cast<double>(run.network_messages));
  registry.GetGauge("sim.network_bytes").Set(run.network_bytes);
  return ExportTelemetry(args, tracer, registry) ? 0 : 1;
}

int CmdBands(CommonArgs& args, int64_t trials) {
  Rng rng(7);
  SpanTracer tracer;
  MetricsRegistry registry;
  tracer.SetTrackName(0, "model");
  SpanTracer::Scope span = tracer.StartSpan("bands", 0);
  span.Attr("trials", std::to_string(trials));
  const auto bands = PredictDistribution(
      args.BuildModel(), static_cast<uint64_t>(args.elements),
      static_cast<uint64_t>(args.keys), static_cast<uint32_t>(args.nodes),
      static_cast<uint64_t>(trials), rng);
  span.End();
  registry.GetGauge("model.bands.p50_us").Set(bands.p50);
  registry.GetGauge("model.bands.p99_us").Set(bands.p99);
  TablePrinter table({"statistic", "value"});
  table.AddRow({"Formula 2 point", FormatMicros(bands.formula_point)});
  table.AddRow({"mean", FormatMicros(bands.mean)});
  table.AddRow({"p10", FormatMicros(bands.p10)});
  table.AddRow({"p50", FormatMicros(bands.p50)});
  table.AddRow({"p90", FormatMicros(bands.p90)});
  table.AddRow({"p99", FormatMicros(bands.p99)});
  table.Print();
  std::printf("(Monte-Carlo over %lld placement + noise draws)\n",
              static_cast<long long>(trials));
  return ExportTelemetry(args, tracer, registry) ? 0 : 1;
}

/// Parses --box="x0,y0,z0,x1,y1,z1" (unit-cube coordinates, exclusive
/// upper corner) into a D8tree box.
Result<D8Tree::Box> ParseBoxSpec(const std::string& spec) {
  float v[6];
  int consumed = 0;
  if (std::sscanf(spec.c_str(), "%f,%f,%f,%f,%f,%f%n", &v[0], &v[1], &v[2],
                  &v[3], &v[4], &v[5], &consumed) != 6 ||
      consumed != static_cast<int>(spec.size())) {
    return Status::InvalidArgument(
        "--box expects six comma-separated floats x0,y0,z0,x1,y1,z1, got '" +
        spec + "'");
  }
  if (!(v[0] < v[3] && v[1] < v[4] && v[2] < v[5])) {
    return Status::InvalidArgument(
        "--box min corner must be strictly below the max corner on every "
        "axis");
  }
  D8Tree::Box box;
  box.min_x = v[0];
  box.min_y = v[1];
  box.min_z = v[2];
  box.max_x = v[3];
  box.max_y = v[4];
  box.max_z = v[5];
  return box;
}

/// Fault-tolerance flags of the gather subcommand.
struct GatherArgs {
  std::string query = "count";  ///< count|scan|topk|box
  int64_t scan_start = 0;       ///< --query=scan: clustering range lower bound
  int64_t scan_end = -1;        ///< --query=scan: upper bound (-1 = unbounded)
  int64_t limit = 0;            ///< --query=scan: row cap (0 = unbounded)
  int64_t k = 0;                ///< --query=topk: rows to keep (required)
  std::string box;              ///< --query=box: "x0,y0,z0,x1,y1,z1" (required)
  int64_t level = 0;            ///< --query=box: octree depth (0 = default 4)
  int64_t threads = 1;
  int64_t rounds = 2;
  int64_t payload_bytes = 30;
  int64_t seed = 42;
  int64_t replication = 1;
  int64_t fail_node = -1;      ///< -1 = no node killed
  double fail_rate = 0.0;      ///< per-read injected error probability
  double corrupt_rate = 0.0;   ///< fraction of segment blocks bit-flipped
  bool join_node = false;        ///< join one fresh node (live migration)
  int64_t decommission_node = -1;  ///< -1 = no graceful removal
  int64_t perma_kill = -1;     ///< -1 = no permanent unplanned loss
  double migration_corrupt_rate = 0.0;  ///< migration frame bit-flip rate
  double deadline_ms = 0.0;    ///< 0 = no gather deadline
  int64_t max_attempts = 3;
  bool hedge = false;
  std::string codec;           ///< "" = direct calls; tagged|compact = wire
  bool batch = false;
  int64_t queue_depth = 0;     ///< 0 = runtime default
  int64_t workers_per_node = 0;  ///< 0 = runtime default
  std::string queue_policy;    ///< "" = default (block)
  int64_t clients = 1;         ///< concurrent client threads (needs --codec)
  int64_t queries = 1;         ///< queries per client when --clients > 1
  int64_t max_inflight = 0;    ///< admission limit; 0 = unlimited
  std::string admission_policy;  ///< "" = default (block)
  double slow_query_us = 0.0;  ///< flight-recorder slow threshold; 0 = off
  std::string flight_out;      ///< flight-recorder ring JSONL ("" = off)
  std::string slow_log;        ///< slow-query JSONL append file ("" = off)
  std::string timeseries_out;  ///< metric time-series JSONL ("" = off)

  void Register(CliFlags& flags) {
    flags.Add("query", &query,
              "query type: count|scan|topk|box (default count)");
    flags.Add("scan-start", &scan_start,
              "--query=scan: first clustering key of the range");
    flags.Add("scan-end", &scan_end,
              "--query=scan: last clustering key of the range "
              "(-1 = unbounded)");
    flags.Add("limit", &limit,
              "--query=scan: total rows to return (0 = unbounded)");
    flags.Add("k", &k, "--query=topk: rows with the largest clustering keys");
    flags.Add("box", &box,
              "--query=box: spatial region x0,y0,z0,x1,y1,z1 in the unit "
              "cube");
    flags.Add("level", &level,
              "--query=box: D8tree octree depth (0 = default 4)");
    flags.Add("threads", &threads, "gather worker threads (1 = serial)");
    flags.Add("rounds", &rounds,
              "query repetitions (first is cold, later ones hit the cache)");
    flags.Add("payload-bytes", &payload_bytes, "payload bytes per element");
    flags.Add("seed", &seed, "placement + fault-injection seed");
    flags.Add("replication", &replication,
              "copies of every partition (1 = no fault tolerance)");
    flags.Add("fail-node", &fail_node,
              "kill this node before querying (-1 = none)");
    flags.Add("fail-rate", &fail_rate,
              "probability each read attempt fails (0..1)");
    flags.Add("corrupt-rate", &corrupt_rate,
              "fraction of segment blocks to bit-flip after load (0..1)");
    flags.Add("join-node", &join_node,
              "membership drill: join one fresh empty node after load "
              "(streams its ring share over checksummed blocks)");
    flags.Add("decommission-node", &decommission_node,
              "membership drill: gracefully drain then remove this node "
              "(-1 = none)");
    flags.Add("perma-kill", &perma_kill,
              "membership drill: permanently fail this node and re-protect "
              "its partitions from the survivors (-1 = none)");
    flags.Add("migration-corrupt-rate", &migration_corrupt_rate,
              "probability each migration block frame gets a bit flipped "
              "in flight (0..1; checksums force re-sends)");
    flags.Add("deadline-ms", &deadline_ms,
              "virtual per-gather deadline; 0 disables it");
    flags.Add("max-attempts", &max_attempts,
              "read attempts per sub-query before giving up");
    flags.Add("hedge", &hedge,
              "race a duplicate read against the next replica on a spike");
    flags.Add("codec", &codec,
              "route sub-queries through encoded messages: tagged|compact");
    flags.Add("batch", &batch,
              "coalesce the scatter into one frame per node (needs --codec)");
    flags.Add("queue-depth", &queue_depth,
              "per-node request queue capacity (needs --codec)");
    flags.Add("workers-per-node", &workers_per_node,
              "worker threads draining each node's queue (needs --codec)");
    flags.Add("queue-policy", &queue_policy,
              "full-queue behavior: block|reject (needs --codec)");
    flags.Add("clients", &clients,
              "concurrent client threads sharing one runtime (needs --codec)");
    flags.Add("queries", &queries,
              "queries issued per client when --clients > 1");
    flags.Add("max-inflight", &max_inflight,
              "admission limit on concurrent queries; 0 = unlimited");
    flags.Add("admission-policy", &admission_policy,
              "behavior at the admission limit: block|reject");
    flags.Add("slow-query-us", &slow_query_us,
              "flight-recorder slow-query wall-time threshold in us "
              "(0 = off; degraded queries always count as slow)");
    flags.Add("flight-out", &flight_out,
              "write the per-query flight-recorder ring as JSONL");
    flags.Add("slow-log", &slow_log,
              "append slow/degraded query records as JSONL to this file");
    flags.Add("timeseries-out", &timeseries_out,
              "write per-gather metric time-series deltas as JSONL");
  }

  Status Validate(const CommonArgs& args) const {
    auto kind = ParseQueryKind(query);
    if (!kind.ok()) return kind.status();
    if (kind.value() != QueryKind::kScan &&
        (scan_start != 0 || scan_end != -1 || limit != 0)) {
      return Status::InvalidArgument(
          "--scan-start/--scan-end/--limit apply only to --query=scan");
    }
    if (kind.value() != QueryKind::kTopK && k != 0) {
      return Status::InvalidArgument("--k applies only to --query=topk");
    }
    if (kind.value() != QueryKind::kBox && (!box.empty() || level != 0)) {
      return Status::InvalidArgument(
          "--box/--level apply only to --query=box");
    }
    if (kind.value() == QueryKind::kScan) {
      if (scan_start < 0) {
        return Status::InvalidArgument("--scan-start must be >= 0");
      }
      if (scan_end < -1) {
        return Status::InvalidArgument(
            "--scan-end must be >= --scan-start (or -1 for unbounded)");
      }
      if (scan_end >= 0 && scan_end < scan_start) {
        return Status::InvalidArgument(
            "--scan-end " + std::to_string(scan_end) +
            " is below --scan-start " + std::to_string(scan_start));
      }
      if (limit < 0) return Status::InvalidArgument("--limit must be >= 0");
    }
    if (kind.value() == QueryKind::kTopK && k < 1) {
      return Status::InvalidArgument("--query=topk requires --k >= 1");
    }
    if (kind.value() == QueryKind::kBox) {
      if (box.empty()) {
        return Status::InvalidArgument(
            "--query=box requires --box=x0,y0,z0,x1,y1,z1");
      }
      auto parsed = ParseBoxSpec(box);
      if (!parsed.ok()) return parsed.status();
      if (level < 0 || level > 20) {
        return Status::InvalidArgument(
            "--level must be within [1, 20] (0 = default 4)");
      }
    }
    if (threads < 1) return Status::InvalidArgument("--threads must be >= 1");
    if (rounds < 1) return Status::InvalidArgument("--rounds must be >= 1");
    if (replication < 1 || replication > args.nodes) {
      return Status::InvalidArgument(
          "--replication must be between 1 and --nodes (" +
          std::to_string(args.nodes) + "), got " + std::to_string(replication));
    }
    if (fail_node >= args.nodes) {
      return Status::InvalidArgument(
          "--fail-node " + std::to_string(fail_node) +
          " is out of range: the cluster has only " +
          std::to_string(args.nodes) + " nodes");
    }
    if (fail_rate < 0.0 || fail_rate > 1.0) {
      return Status::InvalidArgument("--fail-rate must be within [0, 1]");
    }
    if (corrupt_rate < 0.0 || corrupt_rate > 1.0) {
      return Status::InvalidArgument("--corrupt-rate must be within [0, 1]");
    }
    if (migration_corrupt_rate < 0.0 || migration_corrupt_rate > 1.0) {
      return Status::InvalidArgument(
          "--migration-corrupt-rate must be within [0, 1]");
    }
    if (decommission_node >= args.nodes + (join_node ? 1 : 0)) {
      return Status::InvalidArgument(
          "--decommission-node " + std::to_string(decommission_node) +
          " is out of range for this run's node ids");
    }
    if (perma_kill >= args.nodes + (join_node ? 1 : 0)) {
      return Status::InvalidArgument(
          "--perma-kill " + std::to_string(perma_kill) +
          " is out of range for this run's node ids");
    }
    if (perma_kill >= 0 && perma_kill == decommission_node) {
      return Status::InvalidArgument(
          "--perma-kill and --decommission-node target the same node");
    }
    if (deadline_ms < 0.0) {
      return Status::InvalidArgument("--deadline-ms must be >= 0");
    }
    if (max_attempts < 1) {
      return Status::InvalidArgument("--max-attempts must be >= 1");
    }
    if (clients < 1) return Status::InvalidArgument("--clients must be >= 1");
    if (queries < 1) return Status::InvalidArgument("--queries must be >= 1");
    if (max_inflight < 0) {
      return Status::InvalidArgument("--max-inflight must be >= 0");
    }
    if (slow_query_us < 0.0) {
      return Status::InvalidArgument("--slow-query-us must be >= 0");
    }
    if (codec.empty()) {
      if (batch || queue_depth != 0 || workers_per_node != 0 ||
          !queue_policy.empty() || clients != 1 || max_inflight != 0 ||
          !admission_policy.empty()) {
        return Status::InvalidArgument(
            "--batch/--queue-depth/--workers-per-node/--queue-policy/"
            "--clients/--max-inflight/--admission-policy configure the "
            "message transport and require --codec {tagged,compact}");
      }
    } else {
      auto parsed = ParseWireCodec(codec);
      if (!parsed.ok()) return parsed.status();
      if (queue_depth < 0) {
        return Status::InvalidArgument("--queue-depth must be >= 1");
      }
      if (workers_per_node < 0) {
        return Status::InvalidArgument("--workers-per-node must be >= 1");
      }
      if (!queue_policy.empty()) {
        auto policy = ParseQueueFullPolicy(queue_policy);
        if (!policy.ok()) return policy.status();
      }
      if (!admission_policy.empty()) {
        auto policy = ParseQueueFullPolicy(admission_policy);
        if (!policy.ok()) return policy.status();
      }
    }
    return Status::Ok();
  }
};

/// Honours the gather observability flags; returns false (after printing
/// the error) if a requested export failed.
bool ExportGatherObservability(const GatherArgs& gather_args,
                               const FlightRecorder& flight,
                               const MetricsTimeSeries& timeseries) {
  if (gather_args.slow_query_us > 0.0 || !gather_args.slow_log.empty()) {
    std::printf("  flight recorder: %llu quer%s recorded, %llu slow/degraded"
                "%s%s\n",
                static_cast<unsigned long long>(flight.recorded()),
                flight.recorded() == 1 ? "y" : "ies",
                static_cast<unsigned long long>(flight.slow_queries()),
                gather_args.slow_log.empty() ? "" : " -> ",
                gather_args.slow_log.c_str());
  }
  if (!gather_args.flight_out.empty()) {
    const Status status = flight.WriteJsonl(gather_args.flight_out);
    if (!status.ok()) {
      std::fprintf(stderr, "--flight-out: %s\n", status.ToString().c_str());
      return false;
    }
    std::printf("wrote %zu flight records to %s\n", flight.size(),
                gather_args.flight_out.c_str());
  }
  if (!gather_args.timeseries_out.empty()) {
    const Status status = timeseries.WriteJsonl(gather_args.timeseries_out);
    if (!status.ok()) {
      std::fprintf(stderr, "--timeseries-out: %s\n",
                   status.ToString().c_str());
      return false;
    }
    std::printf("wrote %zu time-series samples to %s\n", timeseries.size(),
                gather_args.timeseries_out.c_str());
  }
  return true;
}

int CmdGather(CommonArgs& args, const GatherArgs& gather_args) {
  SpanTracer tracer;
  MetricsRegistry registry;

  StoreOptions store_options;
  store_options.metrics = &registry;
  InProcessCluster cluster(static_cast<uint32_t>(args.nodes),
                           PlacementKind::kDhtRandom, store_options,
                           static_cast<uint64_t>(gather_args.seed),
                           static_cast<uint32_t>(gather_args.replication));
  cluster.AttachTelemetry(&tracer, &registry);

  FlightRecorder::Options flight_options;
  flight_options.slow_query_us = gather_args.slow_query_us;
  flight_options.slow_log_path = gather_args.slow_log;
  FlightRecorder flight(flight_options);
  cluster.AttachFlightRecorder(&flight);
  MetricsTimeSeries timeseries(&registry);
  cluster.AttachTimeSeries(&timeseries);

  FaultConfig fault_config;
  fault_config.seed = static_cast<uint64_t>(gather_args.seed);
  fault_config.read_error_rate = gather_args.fail_rate;
  fault_config.migration_corrupt_rate = gather_args.migration_corrupt_rate;
  FaultInjector injector(fault_config);
  const bool chaos = gather_args.fail_node >= 0 ||
                     gather_args.fail_rate > 0.0 ||
                     gather_args.corrupt_rate > 0.0 ||
                     gather_args.migration_corrupt_rate > 0.0;
  if (chaos) cluster.AttachFaultInjector(&injector);

  const QueryKind kind = ParseQueryKind(gather_args.query).value();
  const WorkloadSpec workload = UniformWorkload(
      static_cast<uint64_t>(args.elements), static_cast<uint64_t>(args.keys));
  std::optional<D8Tree> tree;  // built only for --query=box
  const uint32_t tree_level = gather_args.level > 0
                                  ? static_cast<uint32_t>(gather_args.level)
                                  : 4u;
  if (kind == QueryKind::kBox) {
    // Box queries run against the D8tree's denormalized cube partitions,
    // not the uniform workload: every non-empty cube of every level is
    // one partition keyed by CubeKey(level, morton).
    AlyaParams params;
    params.particles = static_cast<uint64_t>(args.elements);
    params.seed = static_cast<uint64_t>(gather_args.seed);
    const std::vector<Particle> particles = GenerateAlyaParticles(params);
    tree.emplace(particles, tree_level);
    SpanTracer::Scope load = tracer.StartSpan("load", cluster.master_track());
    load.Attr("cubes", std::to_string(tree->AllCubes().size()));
    for (const D8Tree::CubeRef& cube : tree->AllCubes()) {
      const std::string key = CubeKey(cube.level, cube.morton);
      for (const uint64_t id : tree->CubeParticles(cube.level, cube.morton)) {
        Column column;
        column.clustering = id;
        column.type_id = particles[id].type;  // ids are dense indices
        column.payload = MakePayload(cube.morton, id, kParticlePayloadBytes);
        KV_CHECK(cluster.Put(workload.table, key, std::move(column)).ok());
      }
    }
    SpanTracer::Scope flush =
        tracer.StartSpan("flush-all", cluster.master_track());
    cluster.FlushAll();
  } else {
    SpanTracer::Scope load = tracer.StartSpan("load", cluster.master_track());
    load.Attr("partitions", std::to_string(workload.partitions.size()));
    uint64_t part_seed = 0;
    for (const PartitionRef& part : workload.partitions) {
      for (uint32_t j = 0; j < part.elements; ++j) {
        Column column;
        column.clustering = j;
        column.type_id = j % 8;
        column.payload = MakePayload(
            part_seed, j, static_cast<size_t>(gather_args.payload_bytes));
        KV_CHECK(cluster.Put(workload.table, part.key, std::move(column)).ok());
      }
      ++part_seed;
    }
    SpanTracer::Scope flush =
        tracer.StartSpan("flush-all", cluster.master_track());
    cluster.FlushAll();
  }

  if (gather_args.corrupt_rate > 0.0) {
    uint64_t corrupted = 0;
    for (uint32_t n = 0; n < cluster.node_count(); ++n) {
      auto table = cluster.node(n).FindTable(workload.table);
      if (table.ok()) {
        corrupted += injector.CorruptTableBlocks(*table.value(),
                                                 gather_args.corrupt_rate);
      }
    }
    std::printf("chaos: bit-flipped %llu segment blocks\n",
                static_cast<unsigned long long>(corrupted));
  }
  if (gather_args.fail_node >= 0) {
    cluster.KillNode(static_cast<NodeId>(gather_args.fail_node));
    std::printf("chaos: node %lld is down\n",
                static_cast<long long>(gather_args.fail_node));
  }

  // Membership drill: join, then drain, then unplanned loss — each op
  // streams ownership over checksummed blocks before routing flips, so
  // the gathers below read the post-churn cluster.
  const auto run_membership = [&](const char* what,
                                  Result<MembershipReport> change) {
    if (!change.ok()) {
      std::fprintf(stderr, "membership: %s failed: %s\n", what,
                   change.status().ToString().c_str());
      return false;
    }
    const MembershipReport& m = change.value();
    std::printf(
        "membership: %s node %u -> epoch %llu | streamed %llu partitions "
        "(%llu columns) in %llu blocks, %llu B | %llu block re-sends, "
        "%llu source failovers | repaired %llu, lost %llu | %s\n",
        what, m.node, static_cast<unsigned long long>(m.ring_epoch),
        static_cast<unsigned long long>(m.partitions_moved),
        static_cast<unsigned long long>(m.columns_moved),
        static_cast<unsigned long long>(m.blocks_streamed),
        static_cast<unsigned long long>(m.bytes_streamed),
        static_cast<unsigned long long>(m.block_retries),
        static_cast<unsigned long long>(m.source_failovers),
        static_cast<unsigned long long>(m.partitions_repaired),
        static_cast<unsigned long long>(m.partitions_lost),
        FormatMicros(m.wall_us).c_str());
    return true;
  };
  if (gather_args.join_node && !run_membership("joined", cluster.AddNode())) {
    return 1;
  }
  if (gather_args.decommission_node >= 0 &&
      !run_membership("decommissioned",
                      cluster.DecommissionNode(static_cast<NodeId>(
                          gather_args.decommission_node)))) {
    return 1;
  }
  if (gather_args.perma_kill >= 0 &&
      !run_membership("permanently failed",
                      cluster.FailNodePermanently(
                          static_cast<NodeId>(gather_args.perma_kill)))) {
    return 1;
  }

  QueryPlan plan;
  switch (kind) {
    case QueryKind::kCount:
      plan = MakeCountPlan(workload);
      break;
    case QueryKind::kScan: {
      ScanSpec spec;
      spec.start = static_cast<uint64_t>(gather_args.scan_start);
      spec.end = gather_args.scan_end < 0
                     ? UINT64_MAX
                     : static_cast<uint64_t>(gather_args.scan_end);
      spec.limit = static_cast<uint32_t>(gather_args.limit);
      plan = MakeScanPlan(workload, spec);
      break;
    }
    case QueryKind::kTopK: {
      TopKSpec spec;
      spec.k = static_cast<uint32_t>(gather_args.k);
      plan = MakeTopKPlan(workload, spec);
      break;
    }
    case QueryKind::kBox: {
      // Target cubes of roughly the mean size at the tree's deepest
      // level: the granularity the operator asked for with --level.
      const uint32_t target_keysize = static_cast<uint32_t>(std::max<uint64_t>(
          1, tree->particle_count() >> (3 * tree_level)));
      plan = MakeBoxPlan(*tree, workload.table,
                         ParseBoxSpec(gather_args.box).value(),
                         target_keysize);
      break;
    }
  }

  GatherOptions options;
  options.max_attempts = static_cast<uint32_t>(gather_args.max_attempts);
  options.hedge = gather_args.hedge;
  options.deadline_us = gather_args.deadline_ms * kMillisecond;

  StageTracer stages;
  if (!gather_args.codec.empty()) {
    options.transport = GatherTransport::kMessage;
    options.codec = ParseWireCodec(gather_args.codec).value();
    options.batch = gather_args.batch;
    if (gather_args.queue_depth > 0) {
      options.queue_depth = static_cast<uint32_t>(gather_args.queue_depth);
    }
    if (gather_args.workers_per_node > 0) {
      options.workers_per_node =
          static_cast<uint32_t>(gather_args.workers_per_node);
    }
    if (!gather_args.queue_policy.empty()) {
      options.queue_policy =
          ParseQueueFullPolicy(gather_args.queue_policy).value();
    }
    options.max_inflight = static_cast<uint32_t>(gather_args.max_inflight);
    if (!gather_args.admission_policy.empty()) {
      options.admission_policy =
          ParseQueueFullPolicy(gather_args.admission_policy).value();
    }
    cluster.AttachStageTracer(&stages);
  }

  if (gather_args.clients > 1) {
    // Multi-client mode: N threads hammer the shared runtime; the
    // figure of merit is queries/s at the master (paper Fig. 11).
    const ConcurrentGatherReport report = cluster.GatherConcurrent(
        plan, static_cast<uint32_t>(gather_args.clients),
        static_cast<uint32_t>(gather_args.queries), options);
    uint64_t failed = 0;
    for (const GatherResult& r : report.results) failed += r.failed;
    std::printf(
        "concurrent %s gather: %lld clients x %lld queries over %zu "
        "partitions (replication %lld, max-inflight %lld)\n",
        QueryKindName(kind).data(),
        static_cast<long long>(gather_args.clients),
        static_cast<long long>(gather_args.queries),
        plan.partitions.size(),
        static_cast<long long>(gather_args.replication),
        static_cast<long long>(gather_args.max_inflight));
    std::printf(
        "  %llu queries in %s: %.1f queries/s | admitted %llu, shed %llu | "
        "%llu failed sub-queries\n",
        static_cast<unsigned long long>(report.queries),
        FormatMicros(report.wall_us).c_str(), report.queries_per_sec,
        static_cast<unsigned long long>(report.admitted),
        static_cast<unsigned long long>(report.shed),
        static_cast<unsigned long long>(failed));
    std::printf("  runtime built %llu time%s for the whole run\n",
                static_cast<unsigned long long>(cluster.runtime_builds()),
                cluster.runtime_builds() == 1 ? "" : "s");
    std::printf("%s", registry.SummaryReport().c_str());
    const bool exported =
        ExportGatherObservability(gather_args, flight, timeseries) &&
        ExportTelemetry(args, tracer, registry);
    return exported ? 0 : 1;
  }

  GatherResult result;
  for (int64_t r = 0; r < gather_args.rounds; ++r) {
    result = gather_args.threads > 1
                 ? cluster.GatherParallel(
                       plan, static_cast<uint32_t>(gather_args.threads),
                       options)
                 : cluster.Gather(plan, options);
  }

  uint64_t total = 0;
  for (const auto& [type, count] : result.totals) total += count;
  std::printf("real %s scatter/gather over %zu partitions x %lld rounds "
              "(%lld thread%s, replication %lld):\n",
              QueryKindName(kind).data(), plan.partitions.size(),
              static_cast<long long>(gather_args.rounds),
              static_cast<long long>(gather_args.threads),
              gather_args.threads > 1 ? "s" : "",
              static_cast<long long>(gather_args.replication));
  switch (kind) {
    case QueryKind::kCount:
      std::printf("  %llu elements counted across %zu types | %llu "
                  "partitions missing\n",
                  static_cast<unsigned long long>(total),
                  result.totals.size(),
                  static_cast<unsigned long long>(result.partitions_missing));
      break;
    case QueryKind::kScan:
      std::printf("  scan [%lld, %s] limit %lld -> %zu rows",
                  static_cast<long long>(gather_args.scan_start),
                  gather_args.scan_end < 0
                      ? "inf"
                      : std::to_string(gather_args.scan_end).c_str(),
                  static_cast<long long>(gather_args.limit),
                  result.rows.size());
      if (!result.rows.empty()) {
        std::printf(" (clustering %llu..%llu)",
                    static_cast<unsigned long long>(
                        result.rows.front().clustering),
                    static_cast<unsigned long long>(
                        result.rows.back().clustering));
      }
      std::printf(" | %llu partitions missing\n",
                  static_cast<unsigned long long>(result.partitions_missing));
      break;
    case QueryKind::kTopK:
      std::printf("  top-%lld -> %zu rows",
                  static_cast<long long>(gather_args.k), result.rows.size());
      if (!result.rows.empty()) {
        std::printf(" (clustering %llu down to %llu)",
                    static_cast<unsigned long long>(
                        result.rows.front().clustering),
                    static_cast<unsigned long long>(
                        result.rows.back().clustering));
      }
      std::printf(" | %llu partitions missing\n",
                  static_cast<unsigned long long>(result.partitions_missing));
      break;
    case QueryKind::kBox: {
      uint64_t boundary = 0;
      for (const auto& [type, count] : result.boundary_totals) {
        boundary += count;
      }
      std::printf("  %llu elements in fully-covered cubes (+%llu in "
                  "boundary cubes needing filtering) across %zu types\n",
                  static_cast<unsigned long long>(total),
                  static_cast<unsigned long long>(boundary),
                  result.totals.size());
      std::printf("  D8tree pruning: %llu partitions touched, %llu pruned "
                  "of %llu candidate cubes\n",
                  static_cast<unsigned long long>(result.partitions_touched),
                  static_cast<unsigned long long>(result.partitions_pruned),
                  static_cast<unsigned long long>(plan.candidate_partitions));
      break;
    }
  }
  std::printf("  sub-queries: %llu completed, %llu failed | %llu retries, "
              "%llu hedged%s\n",
              static_cast<unsigned long long>(result.completed),
              static_cast<unsigned long long>(result.failed),
              static_cast<unsigned long long>(result.retries),
              static_cast<unsigned long long>(result.hedged),
              result.partial ? "  [PARTIAL RESULT]" : "");
  if (result.partial) {
    std::printf("  lost partitions: %zu (data unreachable on every replica)\n",
                result.lost_partitions.size());
  }
  if (!gather_args.codec.empty()) {
    std::printf("  wire (%s%s): %llu frames, %llu B sent, %llu B received | "
                "encode %s, decode %s\n",
                gather_args.codec.c_str(),
                gather_args.batch ? ", batched" : "",
                static_cast<unsigned long long>(result.wire_frames_sent),
                static_cast<unsigned long long>(result.wire_bytes_sent),
                static_cast<unsigned long long>(result.wire_bytes_received),
                FormatMicros(result.wire_encode_us).c_str(),
                FormatMicros(result.wire_decode_us).c_str());
    // The last round's real four-stage breakdown (Section V-B).
    std::printf("%s", stages.SummaryReport().c_str());
  }
  std::printf("%s", registry.SummaryReport().c_str());
  const bool exported =
      ExportGatherObservability(gather_args, flight, timeseries) &&
      ExportTelemetry(args, tracer, registry);
  return exported ? 0 : 1;
}

/// Flags of the batched replicated write drill (`kvscale put-bench`).
struct PutBenchArgs {
  int64_t batch = 0;           ///< keys per write batch (0 = one per node)
  std::string quorum = "all";  ///< all|majority|one
  int64_t clients = 1;         ///< concurrent writer threads
  int64_t payload_bytes = 30;
  int64_t seed = 42;
  int64_t replication = 1;
  int64_t fail_node = -1;        ///< -1 = no node killed
  double wal_error_rate = 0.0;   ///< per-(node,key) injected WAL failures
  std::string wal;               ///< WAL path prefix ("" = memory only)
  int64_t flush_watermark = 0;   ///< memtable bytes arming background flush
  int64_t max_epoch_retries = 2;
  std::string codec;             ///< "" = direct calls; tagged|compact = wire
  int64_t queue_depth = 0;       ///< 0 = runtime default
  int64_t workers_per_node = 0;  ///< 0 = runtime default
  int64_t max_inflight = 0;      ///< admission limit; 0 = unlimited
  bool verify = false;           ///< count-gather the table back afterwards

  void Register(CliFlags& flags) {
    flags.Add("batch", &batch,
              "keys per write batch — one group-commit Sync() each "
              "(0 = everything bound for a node in a single batch)");
    flags.Add("quorum", &quorum,
              "per-key ack policy: all|majority|one (default all)");
    flags.Add("clients", &clients,
              "concurrent writer threads splitting the partitions");
    flags.Add("payload-bytes", &payload_bytes, "payload bytes per column");
    flags.Add("seed", &seed, "placement + fault-injection seed");
    flags.Add("replication", &replication,
              "copies of every partition (1 = no fault tolerance)");
    flags.Add("fail-node", &fail_node,
              "kill this node before writing (-1 = none)");
    flags.Add("wal-error-rate", &wal_error_rate,
              "probability each (node, key) WAL write is refused (0..1)");
    flags.Add("wal",
              &wal,
              "write-ahead-log path prefix; node n logs to <wal>.node<n> "
              "(empty = in-memory only, no group commit to amortize)");
    flags.Add("flush-watermark", &flush_watermark,
              "memtable bytes at which the write handler schedules a "
              "background flush on the node's workers (needs --codec; "
              "0 = never)");
    flags.Add("max-epoch-retries", &max_epoch_retries,
              "re-dispatch rounds allowed after a ring-epoch bump");
    flags.Add("codec", &codec,
              "send WriteBatch frames through the runtime: tagged|compact");
    flags.Add("queue-depth", &queue_depth,
              "per-node request queue capacity (needs --codec)");
    flags.Add("workers-per-node", &workers_per_node,
              "worker threads draining each node's queue (needs --codec)");
    flags.Add("max-inflight", &max_inflight,
              "admission limit on concurrent writes; 0 = unlimited");
    flags.Add("verify", &verify,
              "count-gather the table afterwards and check the totals");
  }

  Status Validate(const CommonArgs& args) const {
    auto parsed_quorum = ParsePutQuorum(quorum);
    if (!parsed_quorum.ok()) return parsed_quorum.status();
    if (batch < 0) return Status::InvalidArgument("--batch must be >= 0");
    if (clients < 1) return Status::InvalidArgument("--clients must be >= 1");
    if (payload_bytes < 1) {
      return Status::InvalidArgument("--payload-bytes must be >= 1");
    }
    if (replication < 1 || replication > args.nodes) {
      return Status::InvalidArgument(
          "--replication must be between 1 and --nodes (" +
          std::to_string(args.nodes) + "), got " + std::to_string(replication));
    }
    if (fail_node >= args.nodes) {
      return Status::InvalidArgument(
          "--fail-node " + std::to_string(fail_node) +
          " is out of range: the cluster has only " +
          std::to_string(args.nodes) + " nodes");
    }
    if (wal_error_rate < 0.0 || wal_error_rate > 1.0) {
      return Status::InvalidArgument("--wal-error-rate must be within [0, 1]");
    }
    if (wal_error_rate > 0.0 && wal.empty()) {
      return Status::InvalidArgument("--wal-error-rate needs --wal=PREFIX");
    }
    if (max_epoch_retries < 0) {
      return Status::InvalidArgument("--max-epoch-retries must be >= 0");
    }
    if (max_inflight < 0) {
      return Status::InvalidArgument("--max-inflight must be >= 0");
    }
    if (codec.empty()) {
      if (queue_depth != 0 || workers_per_node != 0 || max_inflight != 0 ||
          flush_watermark != 0) {
        return Status::InvalidArgument(
            "--queue-depth/--workers-per-node/--max-inflight/"
            "--flush-watermark configure the message transport and require "
            "--codec {tagged,compact}");
      }
    } else {
      auto parsed = ParseWireCodec(codec);
      if (!parsed.ok()) return parsed.status();
      if (queue_depth < 0) {
        return Status::InvalidArgument("--queue-depth must be >= 0");
      }
      if (workers_per_node < 0) {
        return Status::InvalidArgument("--workers-per-node must be >= 0");
      }
      if (flush_watermark < 0) {
        return Status::InvalidArgument("--flush-watermark must be >= 0");
      }
    }
    return Status::Ok();
  }
};

int CmdPutBench(CommonArgs& args, const PutBenchArgs& put_args) {
  SpanTracer tracer;
  MetricsRegistry registry;

  StoreOptions store_options;
  store_options.metrics = &registry;
  store_options.wal_path = put_args.wal;
  InProcessCluster cluster(static_cast<uint32_t>(args.nodes),
                           PlacementKind::kDhtRandom, store_options,
                           static_cast<uint64_t>(put_args.seed),
                           static_cast<uint32_t>(put_args.replication));
  cluster.AttachTelemetry(&tracer, &registry);

  FaultConfig fault_config;
  fault_config.seed = static_cast<uint64_t>(put_args.seed);
  fault_config.wal_error_rate = put_args.wal_error_rate;
  FaultInjector injector(fault_config);
  const bool chaos =
      put_args.fail_node >= 0 || put_args.wal_error_rate > 0.0;
  if (chaos) cluster.AttachFaultInjector(&injector);
  if (put_args.fail_node >= 0) {
    cluster.KillNode(static_cast<NodeId>(put_args.fail_node));
    std::printf("chaos: node %lld is down\n",
                static_cast<long long>(put_args.fail_node));
  }

  PutOptions options;
  options.quorum = ParsePutQuorum(put_args.quorum).value();
  options.batch = static_cast<uint32_t>(put_args.batch);
  options.max_epoch_retries =
      static_cast<uint32_t>(put_args.max_epoch_retries);
  if (!put_args.codec.empty()) {
    options.transport = GatherTransport::kMessage;
    options.codec = ParseWireCodec(put_args.codec).value();
    if (put_args.queue_depth > 0) {
      options.queue_depth = static_cast<uint32_t>(put_args.queue_depth);
    }
    if (put_args.workers_per_node > 0) {
      options.workers_per_node =
          static_cast<uint32_t>(put_args.workers_per_node);
    }
    options.max_inflight = static_cast<uint32_t>(put_args.max_inflight);
    options.flush_watermark_bytes =
        static_cast<uint64_t>(put_args.flush_watermark);
  }

  // Each client thread writes a contiguous stripe of the workload's
  // partitions as one PutBatch — the write-side Fig. 11 drill: N threads
  // hammering the shared runtime with group-committed batches.
  const WorkloadSpec workload = UniformWorkload(
      static_cast<uint64_t>(args.elements), static_cast<uint64_t>(args.keys));
  const size_t parts = workload.partitions.size();
  const size_t clients =
      std::min<size_t>(static_cast<size_t>(put_args.clients), parts);
  std::vector<PutResult> results(clients);
  {
    SpanTracer::Scope span =
        tracer.StartSpan("put-bench", cluster.master_track());
    std::vector<std::thread> writers;
    writers.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      writers.emplace_back([&, c] {
        const size_t begin = parts * c / clients;
        const size_t end = parts * (c + 1) / clients;
        std::vector<BatchPutItem> items;
        for (size_t i = begin; i < end; ++i) {
          const PartitionRef& part = workload.partitions[i];
          for (uint32_t j = 0; j < part.elements; ++j) {
            BatchPutItem item;
            item.partition_key = part.key;
            item.column.clustering = j;
            item.column.type_id = j % 8;
            item.column.payload = MakePayload(
                i, j, static_cast<size_t>(put_args.payload_bytes));
            items.push_back(std::move(item));
          }
        }
        results[c] = cluster.PutBatch(workload.table, std::move(items),
                                      options);
      });
    }
    for (std::thread& t : writers) t.join();
  }

  PutResult total;
  for (const PutResult& r : results) {
    total.keys += r.keys;
    total.replica_writes += r.replica_writes;
    total.replica_acks += r.replica_acks;
    total.replica_failures += r.replica_failures;
    total.keys_quorum_met += r.keys_quorum_met;
    total.keys_quorum_failed += r.keys_quorum_failed;
    total.batches_sent += r.batches_sent;
    total.sync_failures += r.sync_failures;
    total.epoch_retries += r.epoch_retries;
    total.shed_by_admission |= r.shed_by_admission;
    if (total.first_error.ok()) total.first_error = r.first_error;
    // Clients run concurrently: elapsed is the slowest stripe.
    total.wall_us = std::max(total.wall_us, r.wall_us);
    total.wire_frames_sent += r.wire_frames_sent;
    total.wire_bytes_sent += r.wire_bytes_sent;
    total.wire_bytes_received += r.wire_bytes_received;
    total.wire_encode_us += r.wire_encode_us;
    total.wire_decode_us += r.wire_decode_us;
  }

  std::printf(
      "batched replicated put: %zu partitions x %lld columns over %zu "
      "client%s (replication %lld, quorum %s, batch %lld%s)\n",
      parts, static_cast<long long>(args.elements / args.keys), clients,
      clients == 1 ? "" : "s", static_cast<long long>(put_args.replication),
      PutQuorumName(options.quorum).data(),
      static_cast<long long>(put_args.batch),
      put_args.wal.empty() ? "" : ", durable");
  std::printf(
      "  %llu keys in %s: %.1f keys/s | %llu batches, %llu replica writes "
      "= %llu acked + %llu failed | %llu sync failures, %llu epoch "
      "retries\n",
      static_cast<unsigned long long>(total.keys),
      FormatMicros(total.wall_us).c_str(),
      total.wall_us > 0.0 ? static_cast<double>(total.keys) /
                                (total.wall_us / 1e6)
                          : 0.0,
      static_cast<unsigned long long>(total.batches_sent),
      static_cast<unsigned long long>(total.replica_writes),
      static_cast<unsigned long long>(total.replica_acks),
      static_cast<unsigned long long>(total.replica_failures),
      static_cast<unsigned long long>(total.sync_failures),
      static_cast<unsigned long long>(total.epoch_retries));
  std::printf("  quorum: %llu keys met, %llu failed%s\n",
              static_cast<unsigned long long>(total.keys_quorum_met),
              static_cast<unsigned long long>(total.keys_quorum_failed),
              total.shed_by_admission ? "  [SHED BY ADMISSION]" : "");
  if (!total.first_error.ok()) {
    std::printf("  first replica refusal: %s\n",
                total.first_error.ToString().c_str());
  }
  if (!put_args.codec.empty()) {
    std::printf("  wire (%s): %llu frames, %llu B sent, %llu B received | "
                "encode %s, decode %s\n",
                put_args.codec.c_str(),
                static_cast<unsigned long long>(total.wire_frames_sent),
                static_cast<unsigned long long>(total.wire_bytes_sent),
                static_cast<unsigned long long>(total.wire_bytes_received),
                FormatMicros(total.wire_encode_us).c_str(),
                FormatMicros(total.wire_decode_us).c_str());
  }

  // The books must balance no matter what chaos did: every attempted
  // replica write is an ack or a failure, and every key got a verdict.
  if (total.replica_acks + total.replica_failures != total.replica_writes ||
      total.keys_quorum_met + total.keys_quorum_failed != total.keys) {
    std::fprintf(stderr,
                 "put-bench: accounting violation (acks %llu + failures "
                 "%llu != writes %llu, or quorum verdicts != keys)\n",
                 static_cast<unsigned long long>(total.replica_acks),
                 static_cast<unsigned long long>(total.replica_failures),
                 static_cast<unsigned long long>(total.replica_writes));
    return 1;
  }

  bool verified = true;
  if (put_args.verify) {
    cluster.FlushAll();
    const GatherResult readback = cluster.Gather(MakeCountPlan(workload));
    uint64_t counted = 0;
    for (const auto& [type, count] : readback.totals) counted += count;
    const uint64_t expected = static_cast<uint64_t>(args.elements);
    // Under chaos a key can miss quorum yet the gather still reads a
    // surviving replica, so only the healthy run pins the exact total.
    verified = chaos ? readback.completed > 0 : counted == expected;
    std::printf("  verify: count-gather found %llu of %llu columns "
                "(%llu partitions missing) -> %s\n",
                static_cast<unsigned long long>(counted),
                static_cast<unsigned long long>(expected),
                static_cast<unsigned long long>(readback.partitions_missing),
                verified ? "ok" : "MISMATCH");
  }

  std::printf("%s", registry.SummaryReport().c_str());
  if (!ExportTelemetry(args, tracer, registry)) return 1;
  if (!verified) return 1;
  // Healthy runs must land every copy; chaos runs only owe us balanced
  // books (checked above) and are reported, not failed.
  return (chaos || total.ok()) ? 0 : 1;
}

void PrintUsage() {
  std::printf(
      "kvscale <command> [flags]\n"
      "commands:\n"
      "  predict    Formula 2 breakdown for (elements, keys, nodes)\n"
      "  optimize   best partition count for the cluster\n"
      "  sweep      query time vs node count + master saturation point\n"
      "  simulate   one virtual-time run of the master/slave prototype\n"
      "  bands      Monte-Carlo percentile bands of the prediction\n"
      "  gather     real scatter/gather over in-process stores, with\n"
      "             store/cluster telemetry (try --rounds 2 for cache hits);\n"
      "             query flags: --query {count,scan,topk,box}\n"
      "             --scan-start --scan-end --limit (scan) | --k (topk)\n"
      "             --box=x0,y0,z0,x1,y1,z1 --level (box)\n"
      "             chaos flags: --replication --fail-node --fail-rate\n"
      "             --corrupt-rate --deadline-ms --max-attempts --hedge\n"
      "             membership flags: --join-node --decommission-node\n"
      "             --perma-kill --migration-corrupt-rate\n"
      "             wire flags: --codec {tagged,compact} --batch\n"
      "             --queue-depth --workers-per-node --queue-policy\n"
      "             multi-query flags: --clients --queries --max-inflight\n"
      "             --admission-policy {block,reject}\n"
      "             observability flags: --slow-query-us --slow-log=FILE\n"
      "             --flight-out=FILE --timeseries-out=FILE\n"
      "  put-bench  batched replicated writes through the same cluster:\n"
      "             --batch --quorum {all,majority,one} --clients\n"
      "             --replication --wal=PREFIX --wal-error-rate\n"
      "             --fail-node --codec {tagged,compact} --queue-depth\n"
      "             --workers-per-node --max-inflight --flush-watermark\n"
      "             --verify\n"
      "common flags: --elements --keys --nodes --t-msg-us --device\n"
      "              --trace-out=FILE --metrics-out=FILE\n"
      "see each command's --help for its extras.\n");
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 1;
  }
  const std::string command = argv[1];
  CommonArgs args;
  CliFlags flags;
  args.Register(flags);

  // Every command resolves --device up front; the discarded ResolveDevice
  // calls deeper in (BuildModel, CmdSimulate) rely on this.
  const auto parse = [&]() {
    if (!flags.Parse(argc - 1, argv + 1)) return false;
    DeviceModel probe;
    return args.ResolveDevice(probe);
  };

  if (command == "predict") {
    if (!parse()) return 1;
    return CmdPredict(args);
  }
  if (command == "optimize") {
    if (!parse()) return 1;
    return CmdOptimize(args);
  }
  if (command == "sweep") {
    int64_t max_nodes = 128;
    flags.Add("max-nodes", &max_nodes, "largest cluster evaluated");
    if (!parse()) return 1;
    return CmdSweep(args, max_nodes);
  }
  if (command == "simulate") {
    bool slow_master = false;
    int64_t seed = 42;
    flags.Add("slow-master", &slow_master,
              "use the java-default 150 us/message profile");
    flags.Add("seed", &seed, "simulation seed");
    if (!parse()) return 1;
    return CmdSimulate(args, slow_master, seed);
  }
  if (command == "bands") {
    int64_t trials = 1000;
    flags.Add("trials", &trials, "Monte-Carlo draws");
    if (!parse()) return 1;
    return CmdBands(args, trials);
  }
  if (command == "gather") {
    GatherArgs gather_args;
    gather_args.Register(flags);
    if (!parse()) return 1;
    const Status valid = gather_args.Validate(args);
    if (!valid.ok()) {
      std::fprintf(stderr, "%s\n", valid.ToString().c_str());
      return 1;
    }
    return CmdGather(args, gather_args);
  }
  if (command == "put-bench") {
    PutBenchArgs put_args;
    put_args.Register(flags);
    if (!parse()) return 1;
    const Status valid = put_args.Validate(args);
    if (!valid.ok()) {
      std::fprintf(stderr, "%s\n", valid.ToString().c_str());
      return 1;
    }
    return CmdPutBench(args, put_args);
  }
  if (command == "--help" || command == "help" || command == "-h") {
    PrintUsage();
    return 0;
  }
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  PrintUsage();
  return 1;
}

}  // namespace
}  // namespace kvscale

int main(int argc, char** argv) { return kvscale::Main(argc, argv); }
