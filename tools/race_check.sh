#!/usr/bin/env bash
# Builds the tsan CMake preset and runs the concurrency-heavy suites —
# the bounded queues and worker pools of the node runtime, the message
# and parallel gather paths, and the store's concurrent readers — under
# ThreadSanitizer, then drives one end-to-end message-transport gather
# through the CLI. A clean exit means the queue/worker/clock machinery
# is data-race-free.
#
# Usage: tools/race_check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset tsan
cmake --build --preset tsan -j"$(nproc)"

export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"

# The suites that spawn threads: queue push/pop, runtime worker pools,
# message-vs-direct parity (including the chaos run), parallel gathers,
# and concurrent store reads.
ctest --test-dir build-tsan --output-on-failure -j"$(nproc)" \
  -R 'BoundedQueue|NodeRuntime|MessageGather|InProcessCluster|ClusterFaultTolerance|FaultInjector|StoreConcurrency|SharedRuntime|AdmissionControl|ConcurrentGather|Membership|MigrationFault|QueryPlan|BoxQuery|WritePath'

# One sanitized end-to-end run over the wire: batched compact frames,
# multiple workers per node, chaos on top.
./build-tsan/tools/kvscale gather --nodes 4 --keys 60 --elements 6000 \
  --replication 3 --fail-node 0 --fail-rate 0.02 --rounds 2 \
  --max-attempts 4 --codec compact --batch --workers-per-node 4

# And one with concurrent clients sharing the runtime, admission capped:
# every data structure on the multi-query path gets exercised under TSan.
./build-tsan/tools/kvscale gather --nodes 4 --keys 40 --elements 4000 \
  --replication 2 --fail-rate 0.01 --max-attempts 4 --codec compact \
  --batch --workers-per-node 2 --clients 6 --queries 2 --max-inflight 4

# The non-count plans through the same shared engine: a range scan with
# concurrent clients, and a top-k merge over the parallel path — both
# exercise the per-sub-query row buffers under threads.
./build-tsan/tools/kvscale gather --query scan --scan-start 10 \
  --scan-end 80 --limit 200 --nodes 4 --keys 40 --elements 4000 \
  --replication 2 --codec compact --batch --workers-per-node 2 \
  --clients 4 --queries 2
./build-tsan/tools/kvscale gather --query topk --k 25 --nodes 4 \
  --keys 40 --elements 4000 --replication 2 --threads 4

# Concurrent writers through the shared runtime: four client threads
# stream group-committed WriteBatch frames (flush watermark armed, so
# background maintenance competes on the same workers) — the whole
# batched write path under TSan.
./build-tsan/tools/kvscale put-bench --nodes 4 --keys 40 --elements 4000 \
  --replication 2 --quorum all --batch 16 --codec compact \
  --workers-per-node 2 --clients 4 --wal build-tsan/race_put.wal \
  --flush-watermark 16384 --verify
rm -f build-tsan/race_put.wal.node*

echo "race_check: OK"
