#!/usr/bin/env bash
# The static-analysis gate. Any stage failure exits non-zero:
#
#   1. analyze build — the `analyze` CMake preset compiles the whole tree
#      with -Werror (and, when clang++ is installed, -Wthread-safety
#      -Wthread-safety-beta, which *proves* the lock annotations in
#      src/common/thread_annotations.hpp). Under GCC the annotations are
#      no-ops, so the stage still catches ordinary warnings.
#   2. kvscale_lint — the project linter (tools/lint/) over src/ bench/
#      tests/ tools/ examples/. Rules: sim-wallclock, discarded-status,
#      stdout-in-lib, raw-mutex, include-order (plus stale-suppression
#      hygiene); see docs/STATIC_ANALYSIS.md.
#   3-5. kvscale_analysis — the cross-file passes (tools/lint/analysis/),
#      run one per stage so the failure names the pass: lock-graph
#      (lock-order deadlock proofs), wire-drift (message/codec/operator
#      symmetry), metric-registry (name collisions + doc coverage; also
#      exports the registry JSON to build*/metric_registry.json).
#      Compiler-independent: these gate even without clang installed.
#   6. clang-tidy — over the compile_commands.json the analyze preset
#      exports, with the checks in .clang-tidy. SKIPPED (with a notice)
#      when clang-tidy is not installed; stages 1-5 still gate.
#
# Usage:
#   tools/static_check.sh          run the static stages above
#   tools/static_check.sh --all    also run the dynamic checks:
#                                  tools/race_check.sh (tsan preset),
#                                  tools/chaos_check.sh (asan-ubsan preset),
#                                  and tools/bench_check.sh (scoreboard
#                                  throughput regression gate)
set -euo pipefail
cd "$(dirname "$0")/.."

run_all=0
for arg in "$@"; do
  case "$arg" in
    --all) run_all=1 ;;
    *)
      echo "usage: tools/static_check.sh [--all]" >&2
      exit 2
      ;;
  esac
done

failures=()

echo "== static_check: analyze build (-Werror, thread-safety proofs) =="
if command -v clang++ >/dev/null 2>&1; then
  cmake --preset analyze -DCMAKE_CXX_COMPILER=clang++
else
  echo "static_check: clang++ not installed; thread-safety annotations"
  echo "static_check: compile as no-ops under $(c++ --version | head -1)"
  cmake --preset analyze
fi
cmake --build --preset analyze -j"$(nproc)" || failures+=("analyze-build")

echo "== static_check: kvscale_lint =="
if [[ -x build-analyze/tools/kvscale_lint ]]; then
  ./build-analyze/tools/kvscale_lint --root . --check-tree ||
    failures+=("kvscale_lint")
else
  # The analyze build failed before producing the linter; build it in the
  # default tree so lint findings are still reported.
  cmake --preset default >/dev/null
  cmake --build --preset default --target kvscale_lint -j"$(nproc)" >/dev/null
  ./build/tools/kvscale_lint --root . --check-tree || failures+=("kvscale_lint")
fi

# Locate (or build) the cross-file analyzer the same way as the linter.
analysis_bin=""
if [[ -x build-analyze/tools/kvscale_analysis ]]; then
  analysis_bin=./build-analyze/tools/kvscale_analysis
  analysis_out=build-analyze/metric_registry.json
else
  cmake --preset default >/dev/null
  cmake --build --preset default --target kvscale_analysis -j"$(nproc)" \
    >/dev/null
  analysis_bin=./build/tools/kvscale_analysis
  analysis_out=build/metric_registry.json
fi

echo "== static_check: kvscale_analysis lock-graph =="
"$analysis_bin" --root . --pass lock-graph || failures+=("lock-graph")

echo "== static_check: kvscale_analysis wire-drift =="
"$analysis_bin" --root . --pass wire-drift || failures+=("wire-drift")

echo "== static_check: kvscale_analysis metric-registry =="
"$analysis_bin" --root . --pass metric-registry \
  --registry-out "$analysis_out" || failures+=("metric-registry")
echo "static_check: metric registry exported to $analysis_out"

echo "== static_check: clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
  if [[ -f build-analyze/compile_commands.json ]]; then
    mapfile -t tidy_sources < <(git ls-files 'src/**/*.cpp' 'tools/**/*.cpp')
    clang-tidy -p build-analyze --quiet "${tidy_sources[@]}" ||
      failures+=("clang-tidy")
  else
    echo "static_check: no compile_commands.json (analyze configure failed?)"
    failures+=("clang-tidy")
  fi
else
  echo "static_check: clang-tidy not installed — skipping (stages 1-2 gate)"
fi

if [[ "$run_all" -eq 1 ]]; then
  echo "== static_check --all: race_check (tsan) =="
  tools/race_check.sh || failures+=("race_check")
  echo "== static_check --all: chaos_check (asan-ubsan) =="
  tools/chaos_check.sh || failures+=("chaos_check")
  echo "== static_check --all: bench_check (scoreboard regression gate) =="
  cmake --preset default >/dev/null
  cmake --build --preset default --target master_throughput -j"$(nproc)" \
    >/dev/null
  tools/bench_check.sh || failures+=("bench_check")
fi

if [[ "${#failures[@]}" -gt 0 ]]; then
  echo "static_check: FAILED: ${failures[*]}" >&2
  exit 1
fi
echo "static_check: OK"
