#!/usr/bin/env bash
# Builds the asan-ubsan CMake preset and runs the chaos/fault-tolerance
# test suites under AddressSanitizer + UndefinedBehaviorSanitizer, then
# drives one end-to-end chaos gather through the CLI. A clean exit means
# the failover, corruption, and WAL-replay paths are memory- and UB-clean.
#
# Usage: tools/chaos_check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j"$(nproc)"

export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="print_stacktrace=1"

# The suites that exercise fault injection, failover, torn WALs, and the
# concurrent gather paths.
ctest --test-dir build-asan --output-on-failure -j"$(nproc)" \
  -R 'FaultInjector|ClusterFaultTolerance|CommitLog|InProcessCluster|ReplicatedSim|StoreConcurrency|Membership|MigrationFault|QueryPlan|BoxQuery|WireFuzz|WritePath'

# One sanitized end-to-end chaos run: replication 3, a dead node, flaky
# reads, and corrupted segment blocks must still produce a full answer.
./build-asan/tools/kvscale gather --nodes 4 --keys 60 --elements 6000 \
  --replication 3 --fail-node 0 --fail-rate 0.02 --corrupt-rate 0.02 \
  --rounds 2 --max-attempts 4

# The membership drill under crossfire: while reads stay flaky and
# migration frames get bit-flipped in flight, a node joins, another is
# gracefully drained, and a third dies permanently. Replication 2 must
# heal every partition (lost 0) and the post-churn gather must still
# fold the full answer.
./build-asan/tools/kvscale gather --nodes 4 --keys 60 --elements 6000 \
  --replication 2 --join-node --decommission-node 1 --perma-kill 2 \
  --fail-rate 0.02 --migration-corrupt-rate 0.2 --rounds 2 --max-attempts 4

# The non-count plans under the same crossfire: a range scan over the
# message transport with flaky reads, and a pruned D8tree box query with
# a dead node — the engine must fold both without touching freed memory
# or tripping UB in the row merge.
./build-asan/tools/kvscale gather --query scan --scan-start 5 \
  --scan-end 90 --limit 300 --nodes 4 --keys 60 --elements 6000 \
  --replication 3 --fail-node 0 --fail-rate 0.02 --max-attempts 4 \
  --codec compact --batch
./build-asan/tools/kvscale gather --query box \
  --box 0.25,0.25,0.25,0.75,0.75,0.75 --level 4 --elements 20000 \
  --nodes 4 --replication 3 --fail-node 0 --fail-rate 0.02 \
  --max-attempts 4

# The write path under the same crossfire: durable group-committed
# batches over the wire with a dead node and flaky WAL writes. The
# accounting invariant (every replica write acked or failed, every key
# given a quorum verdict) is checked inside the command; --verify
# gathers the table back afterwards.
./build-asan/tools/kvscale put-bench --nodes 4 --keys 60 --elements 3000 \
  --replication 3 --quorum majority --batch 8 --fail-node 0 \
  --wal build-asan/chaos_put.wal --wal-error-rate 0.05 \
  --codec compact --workers-per-node 2 --clients 4 --verify
rm -f build-asan/chaos_put.wal.node*

echo "chaos_check: OK"
