#include "source_view.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

namespace kvscale::lint {

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool MatchesWord(std::string_view line, std::string_view pattern,
                 bool then_call) {
  size_t pos = 0;
  while ((pos = line.find(pattern, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    size_t end = pos + pattern.size();
    const bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) {
      if (!then_call) return true;
      while (end < line.size() && (line[end] == ' ' || line[end] == '\t')) {
        ++end;
      }
      if (end < line.size() && line[end] == '(') return true;
    }
    ++pos;
  }
  return false;
}

FileView BuildView(std::string_view content) {
  FileView view;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  std::string raw_line;
  std::string code_line;
  std::string comment_line;
  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      view.raw.push_back(std::move(raw_line));
      view.code.push_back(std::move(code_line));
      view.comment.push_back(std::move(comment_line));
      raw_line.clear();
      code_line.clear();
      comment_line.clear();
      continue;
    }
    raw_line.push_back(c);
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code_line.push_back(' ');
          comment_line.push_back(' ');
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_line.push_back(' ');
          comment_line.push_back(' ');
        } else if (c == '"') {
          state = State::kString;
          code_line.push_back(' ');
          comment_line.push_back(' ');
        } else if (c == '\'') {
          state = State::kChar;
          code_line.push_back(' ');
          comment_line.push_back(' ');
        } else {
          code_line.push_back(c);
          comment_line.push_back(' ');
        }
        break;
      case State::kLineComment:
        code_line.push_back(' ');
        comment_line.push_back(c);
        break;
      case State::kBlockComment:
        code_line.push_back(' ');
        comment_line.push_back(c);
        if (c == '*' && next == '/') {
          raw_line.push_back(next);
          code_line.push_back(' ');
          comment_line.push_back(next);
          ++i;
          state = State::kCode;
        }
        break;
      case State::kString:
      case State::kChar:
        code_line.push_back(' ');
        comment_line.push_back(' ');
        if (c == '\\' && next != '\0') {
          raw_line.push_back(next);
          code_line.push_back(' ');
          comment_line.push_back(' ');
          ++i;
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          state = State::kCode;
        }
        break;
    }
  }
  view.raw.push_back(std::move(raw_line));
  view.code.push_back(std::move(code_line));
  view.comment.push_back(std::move(comment_line));
  return view;
}

std::string ReadFileOrEmpty(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> ListSourceFiles(
    const std::filesystem::path& root, std::vector<std::string_view> dirs,
    std::vector<std::string_view> skip_fragments) {
  namespace fs = std::filesystem;
  std::vector<std::string> rel_paths;
  for (std::string_view dir : dirs) {
    const fs::path base = root / dir;
    if (!fs::is_directory(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".hpp" && ext != ".cpp" && ext != ".h") continue;
      std::string rel = fs::relative(entry.path(), root).generic_string();
      const bool skipped =
          std::any_of(skip_fragments.begin(), skip_fragments.end(),
                      [&rel](std::string_view fragment) {
                        return rel.find(fragment) != std::string::npos;
                      });
      if (!skipped) rel_paths.push_back(std::move(rel));
    }
  }
  std::sort(rel_paths.begin(), rel_paths.end());
  return rel_paths;
}

}  // namespace kvscale::lint
