// Pass 2: wire-protocol drift checking.
//
// The message structs in src/wire/messages.hpp expose their fields
// through the visit pattern (kTypeName + Visit calling
// v.Field("name", member)), so encode and decode are symmetric *by
// construction* — but only as long as (a) every declared member is
// visited, once, in declaration order, under its own name, (b) the four
// codec Field-overload sets (tagged/compact x writer/reader) support
// the same type set and the tagged pair agrees on each type's FieldTag,
// (c) every message is registered with the compact codec, and (d) every
// QueryOp the wire can carry is both gated at decode and handled by the
// per-node operator switch. Each of those is exactly the kind of edit
// that drifts silently when a field or operator is added in one place
// and not the other; this pass makes the fuzz-only bug class a
// deterministic gate.
#include "analysis.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "source_view.hpp"

namespace kvscale::lint {

namespace {

constexpr std::string_view kVisitDrift = "wire-visit-drift";
constexpr std::string_view kFieldOrder = "wire-field-order";
constexpr std::string_view kCodecAsymmetry = "wire-codec-asymmetry";
constexpr std::string_view kUnregistered = "wire-unregistered-message";
constexpr std::string_view kOperatorUnhandled = "wire-operator-unhandled";
constexpr std::string_view kOperatorCount = "wire-operator-count";
constexpr std::string_view kDecodeGate = "wire-decode-gate";

constexpr std::string_view kMessagesHpp = "src/wire/messages.hpp";
constexpr std::string_view kMessagesCpp = "src/wire/messages.cpp";
constexpr std::string_view kCodecHpp = "src/wire/codec.hpp";
constexpr std::string_view kQueryOpsCpp = "src/cluster/query_ops.cpp";
constexpr std::string_view kEnvelopeCpp = "src/wire/envelope.cpp";

/// Wire-encodable field types, as written in member declarations.
const std::set<std::string>& SupportedTypes() {
  static const std::set<std::string> kTypes = {
      "uint32_t",         "uint64_t",
      "int64_t",          "double",
      "std::string",      "std::vector<uint64_t>",
      "std::vector<std::string>"};
  return kTypes;
}

std::string CollapseSpaces(std::string_view text) {
  std::string out;
  bool in_space = true;
  for (const char c : text) {
    if (c == ' ' || c == '\t') {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::string Collapse(std::string_view text);

/// Normalizes a member/parameter type: drops spaces inside template
/// brackets so "std::vector< uint64_t >" == "std::vector<uint64_t>".
std::string NormalizeType(std::string_view text) {
  std::string out;
  for (const char c : Collapse(text)) {
    out.push_back(c);
  }
  return out;
}

std::string Collapse(std::string_view text) {
  std::string collapsed = CollapseSpaces(text);
  std::string out;
  for (size_t i = 0; i < collapsed.size(); ++i) {
    if (collapsed[i] == ' ' &&
        ((i > 0 && (collapsed[i - 1] == '<' || collapsed[i - 1] == ',')) ||
         (i + 1 < collapsed.size() && (collapsed[i + 1] == '<' ||
                                       collapsed[i + 1] == '>' ||
                                       collapsed[i + 1] == ',')))) {
      continue;
    }
    out.push_back(collapsed[i]);
  }
  return out;
}

struct MessageField {
  std::string name;
  std::string type;
  int line = 0;
};

struct VisitedField {
  std::string field_name;  ///< the string literal passed to v.Field
  std::string member;      ///< the member expression
  int line = 0;
};

struct MessageStruct {
  std::string name;       ///< C++ struct name
  std::string type_name;  ///< kTypeName literal
  int line = 0;
  std::vector<MessageField> members;
  std::vector<VisitedField> visited;
};

/// Extracts every struct that declares a kTypeName from messages.hpp.
std::vector<MessageStruct> ParseMessages(const FileView& view) {
  std::vector<MessageStruct> messages;
  MessageStruct* current = nullptr;
  int depth = 0;
  int struct_depth = -1;
  bool in_visit = false;
  int visit_depth = -1;
  for (size_t i = 0; i < view.code.size(); ++i) {
    const std::string& code = view.code[i];
    const std::string& raw = view.raw[i];
    const int line_no = static_cast<int>(i) + 1;
    const std::string_view trimmed = Trim(code);
    if (current == nullptr && StartsWith(trimmed, "struct ")) {
      std::string_view rest = trimmed.substr(7);
      size_t end = 0;
      while (end < rest.size() && IsIdentChar(rest[end])) ++end;
      if (end > 0 && rest.find(';') == std::string_view::npos) {
        messages.push_back({});
        current = &messages.back();
        current->name = std::string(rest.substr(0, end));
        current->line = line_no;
        struct_depth = depth;
      }
    }
    if (current != nullptr) {
      if (trimmed.find("kTypeName") != std::string_view::npos &&
          trimmed.find('=') != std::string_view::npos) {
        const size_t open = raw.find('"');
        const size_t close =
            open == std::string::npos ? open : raw.find('"', open + 1);
        if (close != std::string::npos) {
          current->type_name = raw.substr(open + 1, close - open - 1);
        }
      } else if (!in_visit && depth == struct_depth + 1) {
        // Candidate member declaration: "TYPE name( = init)?;"
        const std::string text = Collapse(trimmed);
        const size_t semi = text.find(';');
        if (semi != std::string::npos && text.find('(') == std::string::npos &&
            !StartsWith(text, "static") && !StartsWith(text, "template") &&
            !StartsWith(text, "using")) {
          std::string decl = text.substr(0, semi);
          const size_t eq = decl.find('=');
          if (eq != std::string::npos) {
            decl = std::string(Trim(std::string_view(decl).substr(0, eq)));
          }
          const size_t space = decl.rfind(' ');
          if (space != std::string::npos) {
            const std::string name = decl.substr(space + 1);
            const std::string type = NormalizeType(decl.substr(0, space));
            bool ident_ok = !name.empty();
            for (const char c : name) ident_ok = ident_ok && IsIdentChar(c);
            if (ident_ok) current->members.push_back({name, type, line_no});
          }
        }
      }
      if (trimmed.find("void Visit(") != std::string_view::npos) {
        in_visit = true;
        visit_depth = depth;
      }
      if (in_visit) {
        size_t pos = code.find(".Field(");
        while (pos != std::string::npos) {
          // Literal from the raw view at the same columns (the code view
          // blanks it).
          const size_t open = raw.find('"', pos);
          const size_t close =
              open == std::string::npos ? open : raw.find('"', open + 1);
          if (close != std::string::npos) {
            const std::string field = raw.substr(open + 1, close - open - 1);
            size_t comma = raw.find(',', close);
            size_t end_paren = raw.find(')', close);
            std::string member;
            if (comma != std::string::npos && end_paren != std::string::npos &&
                comma < end_paren) {
              member = std::string(
                  Trim(std::string_view(raw).substr(comma + 1,
                                                    end_paren - comma - 1)));
            }
            current->visited.push_back({field, member, line_no});
          }
          pos = code.find(".Field(", pos + 1);
        }
      }
    }
    for (const char c : code) {
      if (c == '{') ++depth;
      if (c == '}') {
        --depth;
        if (in_visit && depth == visit_depth) in_visit = false;
        if (current != nullptr && depth == struct_depth) {
          if (current->type_name.empty()) messages.pop_back();  // not a message
          current = nullptr;
        }
      }
    }
  }
  return messages;
}

/// The Field-overload sets of one codec struct (Writer or Reader), plus
/// the tagged codec's per-type FieldTag (empty for compact).
struct OverloadSet {
  std::map<std::string, int> type_lines;  ///< normalized type -> first line
  std::map<std::string, std::string> type_tags;  ///< type -> FieldTag name
};

/// Parses codec.hpp into the four overload sets, keyed
/// "TaggedCodec.Writer" etc.
std::map<std::string, OverloadSet> ParseCodecs(const FileView& view) {
  std::map<std::string, OverloadSet> sets;
  std::string codec;     // innermost "class XCodec"
  std::string visitor;   // innermost "struct Writer/Reader"
  int depth = 0;
  int codec_depth = -1;
  int visitor_depth = -1;
  std::string pending_type;  // overload whose body may span lines
  for (size_t i = 0; i < view.code.size(); ++i) {
    const std::string& code = view.code[i];
    const int line_no = static_cast<int>(i) + 1;
    const std::string_view trimmed = Trim(code);
    if (StartsWith(trimmed, "class ")) {
      std::string_view rest = trimmed.substr(6);
      size_t end = 0;
      while (end < rest.size() && IsIdentChar(rest[end])) ++end;
      if (rest.find(';') == std::string_view::npos) {
        codec = std::string(rest.substr(0, end));
        codec_depth = depth;
        visitor.clear();
      }
    } else if (!codec.empty() && (StartsWith(trimmed, "struct Writer") ||
                                  StartsWith(trimmed, "struct Reader"))) {
      visitor = StartsWith(trimmed, "struct Writer") ? "Writer" : "Reader";
      visitor_depth = depth;
      pending_type.clear();
    }
    if (!visitor.empty()) {
      const std::string key = codec + "." + visitor;
      const size_t field_pos = code.find("Field(std::string_view");
      if (field_pos != std::string::npos) {
        // "void Field(std::string_view name?, TYPE& v)"
        const size_t comma = code.find(',', field_pos);
        const size_t amp = code.find('&', comma == std::string::npos
                                              ? field_pos
                                              : comma);
        if (comma != std::string::npos && amp != std::string::npos &&
            amp > comma) {
          const std::string type =
              NormalizeType(code.substr(comma + 1, amp - comma - 1));
          if (!type.empty()) {
            sets[key].type_lines.emplace(type, line_no);
            pending_type = type;
          }
        }
      }
      if (!pending_type.empty()) {
        const size_t head_pos = code.find("Head(");
        if (head_pos != std::string::npos) {
          const size_t tag_pos = code.find("FieldTag::", head_pos);
          if (tag_pos != std::string::npos) {
            size_t end = tag_pos + 10;
            while (end < code.size() && IsIdentChar(code[end])) ++end;
            sets[key].type_tags[pending_type] =
                code.substr(tag_pos + 10, end - tag_pos - 10);
          }
        }
      }
    }
    for (const char c : code) {
      if (c == '{') ++depth;
      if (c == '}') {
        --depth;
        if (!visitor.empty() && depth == visitor_depth) {
          visitor.clear();
          pending_type.clear();
        }
        if (!codec.empty() && depth == codec_depth) codec.clear();
      }
    }
  }
  return sets;
}

struct EnumInfo {
  std::vector<std::pair<std::string, int>> enumerators;  ///< name, line
  int count_value = -1;       ///< kQueryOpCount literal, -1 when absent
  int count_line = 0;
};

EnumInfo ParseQueryOps(const FileView& view) {
  EnumInfo info;
  bool in_enum = false;
  for (size_t i = 0; i < view.code.size(); ++i) {
    const std::string_view trimmed = Trim(view.code[i]);
    const int line_no = static_cast<int>(i) + 1;
    if (StartsWith(trimmed, "enum QueryOp")) in_enum = true;
    if (in_enum) {
      if (StartsWith(trimmed, "kOp")) {
        size_t end = 0;
        while (end < trimmed.size() && IsIdentChar(trimmed[end])) ++end;
        info.enumerators.emplace_back(std::string(trimmed.substr(0, end)),
                                      line_no);
      }
      if (trimmed.find("};") != std::string_view::npos) in_enum = false;
    }
    const size_t count_pos = trimmed.find("kQueryOpCount");
    if (count_pos != std::string_view::npos) {
      const size_t eq = trimmed.find('=', count_pos);
      if (eq != std::string_view::npos) {
        info.count_value = 0;
        info.count_line = line_no;
        for (size_t j = eq + 1; j < trimmed.size(); ++j) {
          if (trimmed[j] >= '0' && trimmed[j] <= '9') {
            info.count_value = info.count_value * 10 + (trimmed[j] - '0');
          } else if (trimmed[j] == ';') {
            break;
          }
        }
      }
    }
  }
  return info;
}

void Report(std::vector<Finding>& findings, std::string_view file, int line,
            std::string_view id, std::string message) {
  findings.push_back(
      {std::string(file), line, std::string(id), std::move(message)});
}

}  // namespace

std::vector<Finding> AnalyzeWireDrift(const std::filesystem::path& root) {
  std::vector<Finding> findings;

  const std::string messages_text = ReadFileOrEmpty(root / kMessagesHpp);
  std::vector<MessageStruct> messages;
  if (!messages_text.empty()) {
    messages = ParseMessages(BuildView(messages_text));
  }

  // -- per-message visit symmetry ------------------------------------------
  for (const MessageStruct& msg : messages) {
    std::map<std::string, int> visit_count;
    for (const VisitedField& v : msg.visited) ++visit_count[v.member];
    std::set<std::string> member_names;
    for (const MessageField& m : msg.members) member_names.insert(m.name);

    for (const MessageField& m : msg.members) {
      const auto it = visit_count.find(m.name);
      if (it == visit_count.end()) {
        Report(findings, kMessagesHpp, m.line, kVisitDrift,
               msg.name + "::" + m.name +
                   " is declared but never visited: it will silently be "
                   "dropped from every encoded frame");
      } else if (it->second > 1) {
        Report(findings, kMessagesHpp, m.line, kVisitDrift,
               msg.name + "::" + m.name + " is visited " +
                   std::to_string(it->second) +
                   " times: the frame carries the field twice");
      }
      if (!SupportedTypes().count(m.type)) {
        Report(findings, kMessagesHpp, m.line, kCodecAsymmetry,
               msg.name + "::" + m.name + " has type '" + m.type +
                   "' which no codec Field overload supports");
      }
    }
    for (const VisitedField& v : msg.visited) {
      if (!member_names.count(v.member)) {
        Report(findings, kMessagesHpp, v.line, kVisitDrift,
               msg.name + "::Visit references '" + v.member +
                   "' which is not a declared field of the struct");
      }
      if (v.field_name != v.member) {
        Report(findings, kMessagesHpp, v.line, kVisitDrift,
               msg.name + "::Visit labels member '" + v.member + "' as \"" +
                   v.field_name +
                   "\": the tagged codec validates names, so the label must "
                   "match the member");
      }
    }
    // Declaration order == visit order (the compact codec's contract is
    // "fields in declaration order").
    std::vector<std::string> declared, visited;
    for (const MessageField& m : msg.members) {
      if (visit_count.count(m.name)) declared.push_back(m.name);
    }
    for (const VisitedField& v : msg.visited) {
      if (member_names.count(v.member)) visited.push_back(v.member);
    }
    if (declared != visited && declared.size() == visited.size()) {
      Report(findings, kMessagesHpp, msg.line, kFieldOrder,
             msg.name +
                 "::Visit walks fields in a different order than they are "
                 "declared; the compact codec's wire contract is "
                 "declaration order");
    }
  }

  // -- codec overload symmetry ---------------------------------------------
  const std::string codec_text = ReadFileOrEmpty(root / kCodecHpp);
  if (!codec_text.empty()) {
    const std::map<std::string, OverloadSet> sets =
        ParseCodecs(BuildView(codec_text));
    // Union of supported types across all visitor structs.
    std::set<std::string> all_types;
    for (const auto& [key, set] : sets) {
      for (const auto& [type, line] : set.type_lines) all_types.insert(type);
    }
    for (const auto& [key, set] : sets) {
      for (const std::string& type : all_types) {
        if (!set.type_lines.count(type)) {
          Report(findings, kCodecHpp, 1, kCodecAsymmetry,
                 key + " has no Field overload for '" + type +
                     "' but another codec visitor does: a message using it "
                     "encodes on one side and fails to compile or decode on "
                     "the other");
        }
      }
    }
    // The tagged writer and reader must agree on each type's FieldTag.
    const auto writer = sets.find("TaggedCodec.Writer");
    const auto reader = sets.find("TaggedCodec.Reader");
    if (writer != sets.end() && reader != sets.end()) {
      for (const auto& [type, tag] : writer->second.type_tags) {
        const auto rt = reader->second.type_tags.find(type);
        if (rt != reader->second.type_tags.end() && rt->second != tag) {
          Report(findings, kCodecHpp,
                 writer->second.type_lines.count(type)
                     ? writer->second.type_lines.at(type)
                     : 1,
                 kCodecAsymmetry,
                 "TaggedCodec writes '" + type + "' with FieldTag::" + tag +
                     " but reads it expecting FieldTag::" + rt->second);
        }
      }
    }
  }

  // -- registration completeness -------------------------------------------
  const std::string reg_text = ReadFileOrEmpty(root / kMessagesCpp);
  if (!reg_text.empty() && !messages.empty()) {
    const FileView view = BuildView(reg_text);
    std::set<std::string> registered;
    int register_fn_line = 0;
    for (size_t i = 0; i < view.code.size(); ++i) {
      const std::string& code = view.code[i];
      if (code.find("RegisterClusterMessages") != std::string::npos &&
          register_fn_line == 0) {
        register_fn_line = static_cast<int>(i) + 1;
      }
      size_t pos = code.find("Register<");
      while (pos != std::string::npos) {
        const size_t start = pos + 9;
        size_t end = start;
        while (end < code.size() && IsIdentChar(code[end])) ++end;
        registered.insert(code.substr(start, end - start));
        pos = code.find("Register<", end);
      }
    }
    for (const MessageStruct& msg : messages) {
      if (!registered.count(msg.name)) {
        Report(findings, kMessagesCpp,
               register_fn_line == 0 ? 1 : register_fn_line, kUnregistered,
               msg.name + " (" + msg.type_name +
                   ") is never registered in RegisterClusterMessages: the "
                   "compact codec aborts on first use");
      }
    }
  }

  // -- operator coverage ----------------------------------------------------
  if (!messages_text.empty()) {
    const EnumInfo ops = ParseQueryOps(BuildView(messages_text));
    const std::string ops_text = ReadFileOrEmpty(root / kQueryOpsCpp);
    if (!ops_text.empty() && !ops.enumerators.empty()) {
      const FileView view = BuildView(ops_text);
      std::set<std::string> handled;
      bool has_default = false;
      int switch_line = 1;
      for (size_t i = 0; i < view.code.size(); ++i) {
        const std::string_view trimmed = Trim(view.code[i]);
        if (trimmed.find("switch") != std::string_view::npos &&
            switch_line == 1) {
          switch_line = static_cast<int>(i) + 1;
        }
        if (StartsWith(trimmed, "case ")) {
          for (const auto& [name, line] : ops.enumerators) {
            if (trimmed.find(name) != std::string_view::npos) {
              handled.insert(name);
            }
          }
        }
        if (StartsWith(trimmed, "default:")) has_default = true;
      }
      for (const auto& [name, line] : ops.enumerators) {
        if (!handled.count(name)) {
          Report(findings, kQueryOpsCpp, switch_line, kOperatorUnhandled,
                 "QueryOp " + name + " (declared at " +
                     std::string(kMessagesHpp) + ":" + std::to_string(line) +
                     ") is accepted by the decoder but has no case in the "
                     "operator switch");
        }
      }
      if (!has_default) {
        Report(findings, kQueryOpsCpp, switch_line, kOperatorUnhandled,
               "operator switch has no default arm rejecting unknown ops");
      }
    }
    if (ops.count_value >= 0 &&
        ops.count_value != static_cast<int>(ops.enumerators.size())) {
      Report(findings, kMessagesHpp, ops.count_line, kOperatorCount,
             "kQueryOpCount is " + std::to_string(ops.count_value) + " but " +
                 std::to_string(ops.enumerators.size()) +
                 " QueryOp enumerators are declared: the decode gate and "
                 "the enum drifted apart");
    }
    const std::string envelope_text = ReadFileOrEmpty(root / kEnvelopeCpp);
    if (!envelope_text.empty() && !ops.enumerators.empty()) {
      const FileView view = BuildView(envelope_text);
      bool gated = false;
      for (const std::string& code : view.code) {
        if (code.find("IsKnownQueryOp") != std::string::npos) gated = true;
      }
      if (!gated) {
        Report(findings, kEnvelopeCpp, 1, kDecodeGate,
               "sub-query decode path never calls IsKnownQueryOp: corrupt "
               "operator ids reach the execution switch unchecked");
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return findings;
}

}  // namespace kvscale::lint
