// kvscale_analysis: cross-file static analyzer CLI (see analysis.hpp).
//
// usage:
//   kvscale_analysis --root DIR [--pass PASS]... [--whitelist FILE]
//                    [--json] [--registry-out FILE]
//   kvscale_analysis --list-ids
//
// PASS is one of: lock-graph, wire-drift, metric-registry (default: all
// three). The whitelist defaults to
// <root>/tools/lint/analysis/ANALYSIS_WHITELIST.txt. Stale-whitelist
// detection only runs when every whitelist-consuming pass ran, so a
// single-pass invocation never misreports the other pass's entries.
//
// exit codes: 0 clean, 1 findings, 2 usage/internal error.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "analysis.hpp"

namespace {

using ::kvscale::lint::AnalyzeLockGraph;
using ::kvscale::lint::AnalyzeMetricRegistry;
using ::kvscale::lint::AnalyzeWireDrift;
using ::kvscale::lint::Finding;
using ::kvscale::lint::FindingsJson;
using ::kvscale::lint::FormatFinding;
using ::kvscale::lint::LoadWhitelist;
using ::kvscale::lint::MetricInstrument;
using ::kvscale::lint::MetricRegistryJson;
using ::kvscale::lint::Whitelist;

constexpr std::string_view kWhitelistRel =
    "tools/lint/analysis/ANALYSIS_WHITELIST.txt";

int Usage() {
  std::fprintf(
      stderr,
      "usage: kvscale_analysis --root DIR [--pass "
      "lock-graph|wire-drift|metric-registry]...\n"
      "                        [--whitelist FILE] [--json] "
      "[--registry-out FILE]\n"
      "       kvscale_analysis --list-ids\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string whitelist_path;
  std::string registry_out_path;
  std::vector<std::string> passes;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-ids") {
      for (const char* id :
           {"lock-cycle", "wait-holding", "wire-visit-drift",
            "wire-field-order", "wire-codec-asymmetry",
            "wire-unregistered-message", "wire-operator-unhandled",
            "wire-operator-count", "wire-decode-gate", "metric-collision",
            "metric-kind-overlap", "metric-undocumented",
            "analysis-whitelist"}) {
        std::printf("%s\n", id);
      }
      return 0;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--whitelist" && i + 1 < argc) {
      whitelist_path = argv[++i];
    } else if (arg == "--registry-out" && i + 1 < argc) {
      registry_out_path = argv[++i];
    } else if (arg == "--pass" && i + 1 < argc) {
      passes.emplace_back(argv[++i]);
    } else {
      return Usage();
    }
  }
  if (root.empty()) return Usage();
  if (passes.empty()) {
    passes = {"lock-graph", "wire-drift", "metric-registry"};
  }
  for (const std::string& pass : passes) {
    if (pass != "lock-graph" && pass != "wire-drift" &&
        pass != "metric-registry") {
      std::fprintf(stderr, "kvscale_analysis: unknown pass '%s'\n",
                   pass.c_str());
      return 2;
    }
  }

  const std::filesystem::path root_path(root);
  Whitelist wl = LoadWhitelist(
      whitelist_path.empty() ? root_path / kWhitelistRel
                             : std::filesystem::path(whitelist_path),
      whitelist_path.empty() ? kWhitelistRel : std::string_view(whitelist_path));

  std::vector<Finding> findings(wl.problems);
  bool ran_lock = false, ran_metric = false;
  for (const std::string& pass : passes) {
    std::vector<Finding> pass_findings;
    if (pass == "lock-graph") {
      pass_findings = AnalyzeLockGraph(root_path, wl);
      ran_lock = true;
    } else if (pass == "wire-drift") {
      pass_findings = AnalyzeWireDrift(root_path);
    } else {
      std::vector<MetricInstrument> registry;
      pass_findings = AnalyzeMetricRegistry(root_path, wl, &registry);
      ran_metric = true;
      if (!registry_out_path.empty()) {
        std::ofstream out(registry_out_path, std::ios::binary);
        if (!out) {
          std::fprintf(stderr, "kvscale_analysis: cannot write %s\n",
                       registry_out_path.c_str());
          return 2;
        }
        out << MetricRegistryJson(registry);
      }
    }
    findings.insert(findings.end(), pass_findings.begin(),
                    pass_findings.end());
  }
  // Whitelist entries are per-pass; only judge staleness when every
  // consumer ran.
  if (ran_lock && ran_metric) {
    const std::vector<Finding> stale = wl.StaleEntries();
    findings.insert(findings.end(), stale.begin(), stale.end());
  }

  if (json) {
    std::fputs(FindingsJson(findings).c_str(), stdout);
  } else {
    for (const Finding& f : findings) {
      std::printf("%s\n", FormatFinding(f).c_str());
    }
    if (findings.empty()) {
      std::printf("kvscale_analysis: clean\n");
    } else {
      std::printf("kvscale_analysis: %zu finding(s)\n", findings.size());
    }
  }
  return findings.empty() ? 0 : 1;
}
