// Stable JSON rendering of findings and the extracted metric registry,
// for CI consumption (kvscale_analysis --json / --registry-out). Key
// order and array order are deterministic: findings and metrics are
// emitted exactly as ordered by the passes (sorted by file/line/id and
// name/kind respectively).
#include "analysis.hpp"

namespace kvscale::lint {

namespace {

std::string Escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(c >> 4) & 0xf]);
          out.push_back(kHex[c & 0xf]);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string FindingsJson(const std::vector<Finding>& findings) {
  std::string out = "{\"findings\":[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) out += ",";
    out += "\n  {\"file\":\"" + Escape(f.file) +
           "\",\"line\":" + std::to_string(f.line) + ",\"id\":\"" +
           Escape(f.rule) + "\",\"message\":\"" + Escape(f.message) + "\"}";
  }
  out += findings.empty() ? "]}\n" : "\n]}\n";
  return out;
}

std::string MetricRegistryJson(const std::vector<MetricInstrument>& metrics) {
  std::string out = "{\"metrics\":[";
  for (size_t i = 0; i < metrics.size(); ++i) {
    const MetricInstrument& m = metrics[i];
    if (i > 0) out += ",";
    out += "\n  {\"name\":\"" + Escape(m.name) + "\",\"kind\":\"" +
           Escape(m.kind) + "\",\"file\":\"" + Escape(m.file) +
           "\",\"line\":" + std::to_string(m.line) +
           ",\"dynamic\":" + (m.dynamic ? "true" : "false") + "}";
  }
  out += metrics.empty() ? "]}\n" : "\n]}\n";
  return out;
}

}  // namespace kvscale::lint
