// Cross-file static analysis passes (stage 2-4 of tools/static_check.sh).
//
// Three passes, all built on the comment/string-aware scanner in
// tools/lint/source_view.hpp, all emitting lint-style findings
// ("file:line: [analysis-id] message"):
//
//   lock-graph      parses Mutex/SharedMutex members, MutexLock RAII
//                   sites, KV_REQUIRES/KV_ACQUIRE annotations and the
//                   call graph across src/ into a global
//                   lock-acquisition-order graph; reports cycles
//                   (lock-order inversions = potential deadlocks, id
//                   `lock-cycle`) and CondVar waits executed while a
//                   second capability is held (id `wait-holding`)
//   wire-drift      proves the visit-pattern message set coherent: per
//                   message, declared fields == visited fields in
//                   declaration order (`wire-visit-drift`,
//                   `wire-field-order`); the four codec Field-overload
//                   sets (tagged/compact x writer/reader) agree and the
//                   tagged reader/writer use the same FieldTag per type
//                   (`wire-codec-asymmetry`); every message is
//                   registered with the compact codec
//                   (`wire-unregistered-message`); every QueryOp
//                   enumerator is handled by the operator switch and
//                   gated at decode (`wire-operator-unhandled`,
//                   `wire-operator-count`, `wire-decode-gate`)
//   metric-registry collects every literal Get{Counter,Gauge,Histogram}
//                   name tree-wide; reports near-collision pairs
//                   (`metric-collision`), one name registered as two
//                   instrument kinds (`metric-kind-overlap`) and names
//                   missing from docs/OBSERVABILITY.md
//                   (`metric-undocumented`); can emit the registry as
//                   JSON for CI consumption
//
// Proven-safe exceptions live in tools/lint/analysis/ANALYSIS_WHITELIST.txt,
// one entry per line, justification mandatory:
//
//   lock-order: From::mu_ -> To::mu_ -- why this edge cannot deadlock
//   wait-holding: Class::Method -- why waiting with extra locks is safe
//   metric-pair: name.a ~ name.b -- why these similar names are distinct
//   metric-kind: name.or.prefix -- why two instrument kinds share it
//
// Malformed or unused (stale) entries are findings (`analysis-whitelist`).
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "lint_rules.hpp"

namespace kvscale::lint {

/// One proven-safe exception from ANALYSIS_WHITELIST.txt.
struct WhitelistEntry {
  int line = 0;
  std::string kind;     ///< lock-order | wait-holding | metric-pair | metric-kind
  std::string subject;  ///< normalized (no spaces): "A->B", "a~b", "Class::Fn"
  std::string reason;
  bool used = false;    ///< flips when the entry suppresses a finding
};

/// Parsed whitelist plus the findings its malformed lines produce.
struct Whitelist {
  std::string rel_path;  ///< repo-relative path, used in findings
  std::vector<WhitelistEntry> entries;
  std::vector<Finding> problems;

  /// True (and marks the entry used) when an entry matches.
  bool Allow(std::string_view kind, std::string_view subject);

  /// `analysis-whitelist` findings for entries that never matched.
  /// Only meaningful after every pass that consults the whitelist ran.
  std::vector<Finding> StaleEntries() const;
};

/// Loads `file` (missing file => empty whitelist, no findings).
Whitelist LoadWhitelist(const std::filesystem::path& file,
                        std::string_view rel_path);

/// One literal metrics-registry instrument extracted from the tree.
struct MetricInstrument {
  std::string name;   ///< literal (a namespace prefix when `dynamic`)
  std::string kind;   ///< counter | gauge | histogram
  std::string file;   ///< repo-relative path
  int line = 0;
  bool dynamic = false;  ///< literal is concatenated with an expression
};

/// Pass 1: lock-acquisition-order graph over src/. Consults `wl` for
/// lock-order and wait-holding exceptions.
std::vector<Finding> AnalyzeLockGraph(const std::filesystem::path& root,
                                      Whitelist& wl);

/// Pass 2: wire-protocol drift over src/wire/ + src/cluster/query_ops.cpp.
std::vector<Finding> AnalyzeWireDrift(const std::filesystem::path& root);

/// Pass 3: metric-name registry over src/, bench/, tools/ and examples/.
/// Consults `wl` for metric-pair / metric-kind exceptions. When
/// `registry_out` is non-null the extracted instruments are appended,
/// sorted by (name, kind).
std::vector<Finding> AnalyzeMetricRegistry(
    const std::filesystem::path& root, Whitelist& wl,
    std::vector<MetricInstrument>* registry_out);

/// Stable JSON rendering of findings: {"findings":[{file,line,id,message}]}.
std::string FindingsJson(const std::vector<Finding>& findings);

/// Stable JSON rendering of the metric registry:
/// {"metrics":[{name,kind,file,line,dynamic}]}.
std::string MetricRegistryJson(const std::vector<MetricInstrument>& metrics);

}  // namespace kvscale::lint
