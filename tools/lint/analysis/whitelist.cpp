#include "analysis.hpp"

#include <algorithm>

#include "source_view.hpp"

namespace kvscale::lint {

namespace {

constexpr std::string_view kId = "analysis-whitelist";

/// Strips every space/tab so "A -> B" and "A->B" compare equal.
std::string Normalize(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c != ' ' && c != '\t') out.push_back(c);
  }
  return out;
}

bool KnownKind(std::string_view kind) {
  return kind == "lock-order" || kind == "wait-holding" ||
         kind == "metric-pair" || kind == "metric-kind";
}

}  // namespace

bool Whitelist::Allow(std::string_view kind, std::string_view subject) {
  const std::string want = Normalize(subject);
  bool allowed = false;
  for (WhitelistEntry& entry : entries) {
    if (entry.kind == kind && entry.subject == want) {
      entry.used = true;
      allowed = true;
    }
  }
  return allowed;
}

std::vector<Finding> Whitelist::StaleEntries() const {
  std::vector<Finding> findings;
  for (const WhitelistEntry& entry : entries) {
    if (entry.used) continue;
    findings.push_back(
        {rel_path, entry.line, std::string(kId),
         "stale whitelist entry: no '" + entry.kind + "' finding matches '" +
             entry.subject + "'; remove it"});
  }
  return findings;
}

Whitelist LoadWhitelist(const std::filesystem::path& file,
                        std::string_view rel_path) {
  Whitelist wl;
  wl.rel_path = std::string(rel_path);
  const std::string content = ReadFileOrEmpty(file);
  if (content.empty()) return wl;
  size_t start = 0;
  int line_no = 0;
  while (start <= content.size()) {
    const size_t nl = content.find('\n', start);
    const std::string_view line = Trim(std::string_view(content).substr(
        start, nl == std::string::npos ? std::string::npos : nl - start));
    ++line_no;
    start = nl == std::string::npos ? content.size() + 1 : nl + 1;
    if (line.empty() || StartsWith(line, "#")) continue;
    const size_t colon = line.find(':');
    const size_t dashes = line.find("--");
    if (colon == std::string_view::npos || dashes == std::string_view::npos ||
        dashes < colon) {
      wl.problems.push_back(
          {wl.rel_path, line_no, std::string(kId),
           "malformed entry: expected 'kind: subject -- justification'"});
      continue;
    }
    const std::string kind(Trim(line.substr(0, colon)));
    const std::string subject =
        Normalize(Trim(line.substr(colon + 1, dashes - colon - 1)));
    const std::string_view reason = Trim(line.substr(dashes + 2));
    if (!KnownKind(kind)) {
      wl.problems.push_back({wl.rel_path, line_no, std::string(kId),
                             "unknown whitelist kind '" + kind + "'"});
      continue;
    }
    if (subject.empty() || reason.empty()) {
      wl.problems.push_back(
          {wl.rel_path, line_no, std::string(kId),
           "entry needs a subject and a justification after '--'"});
      continue;
    }
    wl.entries.push_back(
        {line_no, kind, subject, std::string(reason), false});
  }
  return wl;
}

}  // namespace kvscale::lint
