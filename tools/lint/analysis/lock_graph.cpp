// Pass 1: global lock-acquisition-order graph over src/.
//
// A lightweight structural parse (scope tracking over the
// comment/string-blanked code view) recovers, per class, its
// Mutex/SharedMutex capability members, CondVar members, member types
// and method set; and per function, its RAII acquisitions (MutexLock /
// WriterMutexLock / ReaderMutexLock), KV_REQUIRES / KV_ACQUIRE
// annotations, CondVar waits, and resolved call sites with the set of
// capabilities held at each site. A may-acquire fixpoint over the call
// graph then yields the interprocedural edge set "holding A, acquires
// B"; any strongly-connected component in that graph is a lock-order
// inversion (potential deadlock), and any CondVar wait executed while a
// second capability is held is a lost-wakeup/deadlock hazard.
//
// Precision choices (all toward fewer false positives):
//  * A call site only contributes edges when its receiver chain resolves
//    to a known class that defines the method; unresolvable receivers
//    are skipped.
//  * Lambda bodies are not attributed to the enclosing function (they
//    often run on another thread, where the caller's locks are NOT
//    held); methods a lambda calls are still analyzed on their own.
//  * KV_REQUIRES capabilities are entry-held, not acquired: calling a
//    *Locked() helper adds no edge for the lock the caller already
//    holds, but the helper's body is analyzed with that lock held.
//
// src/common/thread_annotations.hpp is excluded: it is the one file
// allowed to use raw primitives, and its wrappers' lock semantics are
// what this pass models.
#include "analysis.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <utility>

#include "source_view.hpp"

namespace kvscale::lint {

namespace {

constexpr std::string_view kLockCycle = "lock-cycle";
constexpr std::string_view kWaitHolding = "wait-holding";

bool IsKeyword(std::string_view word) {
  static const std::set<std::string_view> kWords = {
      "if",     "for",      "while",       "switch",     "do",
      "else",   "try",      "catch",       "return",     "sizeof",
      "new",    "delete",   "static_cast", "const_cast", "dynamic_cast",
      "co_await", "reinterpret_cast", "alignof", "decltype", "assert",
      "case",   "default",  "throw",       "goto",       "operator"};
  return kWords.count(word) > 0;
}

/// Collapses every whitespace run to one space and trims.
std::string Collapse(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  bool in_space = true;
  for (const char c : text) {
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::vector<std::string> IdentifiersIn(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    if (IsIdentChar(text[i])) {
      size_t j = i;
      while (j < text.size() && IsIdentChar(text[j])) ++j;
      out.emplace_back(text.substr(i, j - i));
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------------

struct ClassInfo {
  std::set<std::string> capabilities;  ///< Mutex/SharedMutex member names
  std::set<std::string> condvars;
  std::map<std::string, std::string> member_types;  ///< name -> type text
  std::set<std::string> methods;
};

/// One interesting point in a function body, with the capabilities that
/// are (locally) held when control reaches it.
struct BodySite {
  std::string file;
  int line = 0;
  std::vector<std::string> held;
  std::string acquires;  ///< capability, for RAII sites
  std::string callee;    ///< function id, for resolved call sites
  std::string wait_cap;  ///< capability a CondVar wait releases
};

struct FunctionInfo {
  std::string cls;
  std::set<std::string> requires_caps;
  std::set<std::string> acquire_caps;  ///< KV_ACQUIRE on the signature
  std::vector<BodySite> sites;
};

struct Model {
  std::map<std::string, ClassInfo> classes;
  std::map<std::string, FunctionInfo> functions;
  /// member name -> classes declaring it (unique-member fallback)
  std::map<std::string, std::set<std::string>> member_owners;
};

// ---------------------------------------------------------------------------
// Structural parser
// ---------------------------------------------------------------------------

class FileParser {
 public:
  FileParser(Model& model, std::string file, const FileView& view)
      : model_(model), file_(std::move(file)), view_(view) {}

  void Run() {
    bool preproc_continues = false;
    for (size_t i = 0; i < view_.code.size(); ++i) {
      line_no_ = static_cast<int>(i) + 1;
      const std::string& line = view_.code[i];
      const std::string_view trimmed = Trim(line);
      if (preproc_continues || StartsWith(trimmed, "#")) {
        preproc_continues = !trimmed.empty() && trimmed.back() == '\\';
        continue;
      }
      for (const char c : line) {
        if (c == '{') {
          OpenBrace();
        } else if (c == '}') {
          CloseBrace();
        } else if (c == ';') {
          EndStatement();
        } else {
          if (stmt_.empty() && (c == ' ' || c == '\t')) continue;
          if (stmt_.empty()) stmt_line_ = line_no_;
          stmt_.push_back(c);
        }
      }
      if (!stmt_.empty()) stmt_.push_back(' ');
    }
  }

 private:
  struct Scope {
    enum Kind { kNamespace, kClass, kFunction, kLambda, kBlock, kOther };
    Kind kind = kBlock;
    std::string name;         ///< class name / function id
    std::string cls;          ///< enclosing class of a kFunction scope
    std::string resume_text;  ///< kOther: statement text to restore on close
    bool resume = false;
    /// Range-for loop variables mapped to candidate classes within this
    /// scope.
    std::map<std::string, std::set<std::string>> loop_vars;
  };

  struct HeldLock {
    std::string cap;
    size_t depth;  ///< scope-stack size the RAII object lives at
  };

  // -- scope helpers --------------------------------------------------------

  Scope* InnermostFunction() {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kLambda) return nullptr;  // deferred context
      if (it->kind == Scope::kFunction) return &*it;
      if (it->kind == Scope::kClass) return nullptr;
    }
    return nullptr;
  }

  Scope* InnermostClass() {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kClass) return &*it;
      if (it->kind == Scope::kFunction || it->kind == Scope::kLambda) {
        break;
      }
    }
    return nullptr;
  }

  /// Class names to try for unqualified member/capability lookups, inner
  /// first: the current function's class, then enclosing class scopes.
  std::vector<std::string> ClassContext() {
    std::vector<std::string> out;
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kFunction && !it->cls.empty()) {
        out.push_back(it->cls);
      }
      if (it->kind == Scope::kClass) out.push_back(it->name);
    }
    return out;
  }

  // -- brace / statement dispatch -------------------------------------------

  void OpenBrace() {
    const std::string head = Collapse(StripLabels(stmt_));
    const std::string saved = stmt_;
    stmt_.clear();
    Scope scope;
    if (head.empty()) {
      scope.kind = Scope::kBlock;
    } else if (FirstToken(head) == "namespace") {
      scope.kind = Scope::kNamespace;
    } else if (head.find("enum") != std::string::npos &&
               MatchesWord(head, "enum")) {
      scope.kind = Scope::kOther;
      scope.resume = true;
      scope.resume_text = saved;
    } else if (std::string cls = ClassHeadName(head); !cls.empty()) {
      scope.kind = Scope::kClass;
      scope.name = std::move(cls);
      model_.classes[scope.name];  // ensure the class is known
    } else if (IsLambdaHead(head)) {
      scope.kind = Scope::kLambda;
    } else if (const std::string first = FirstToken(head);
               first == "if" || first == "for" || first == "while" ||
               first == "switch" || first == "do" || first == "else" ||
               first == "try" || first == "catch") {
      scope.kind = Scope::kBlock;
      if (Scope* fn = InnermostFunction()) {
        if (first == "for") MapRangeForVars(head, scope);
        ScanExecutableText(head, *fn);
      }
    } else if (head.find('(') != std::string::npos && FunctionHead(head, scope)) {
      // scope filled in by FunctionHead
    } else {
      // Brace-init of a member/variable, an array initializer, or
      // something else that is not a new control scope: restore the
      // statement once the brace closes so `Type x{0};` still parses as
      // one declaration.
      scope.kind = Scope::kOther;
      scope.resume = true;
      scope.resume_text = saved;
    }
    scopes_.push_back(std::move(scope));
  }

  void CloseBrace() {
    std::string resume;
    if (!scopes_.empty()) {
      if (scopes_.back().resume) resume = scopes_.back().resume_text;
      scopes_.pop_back();
    }
    // RAII locks die with their scope.
    while (!held_.empty() && held_.back().depth > scopes_.size()) {
      held_.pop_back();
    }
    stmt_ = std::move(resume);
  }

  void EndStatement() {
    const std::string head = Collapse(StripLabels(stmt_));
    stmt_.clear();
    if (head.empty()) return;
    if (Scope* fn = InnermostFunction()) {
      ScanExecutableText(head, *fn);
      return;
    }
    if (Scope* cls = InnermostClass()) {
      ClassMemberStatement(head, cls->name);
    }
  }

  /// Strips access specifiers and case labels off the statement front.
  static std::string StripLabels(std::string_view text) {
    std::string_view s = Trim(text);
    for (;;) {
      bool stripped = false;
      for (std::string_view label : {"public:", "private:", "protected:"}) {
        if (StartsWith(s, label)) {
          s = Trim(s.substr(label.size()));
          stripped = true;
        }
      }
      if (!stripped) break;
    }
    return std::string(s);
  }

  static std::string FirstToken(std::string_view head) {
    size_t i = 0;
    while (i < head.size() && IsIdentChar(head[i])) ++i;
    return std::string(head.substr(0, i));
  }

  /// "template <...> class Name ..." / "struct Name : Base" -> Name.
  static std::string ClassHeadName(std::string_view head) {
    std::string text(head);
    if (StartsWith(text, "template")) {
      // Drop the template<...> prefix (balanced angle brackets).
      size_t i = text.find('<');
      int depth = 0;
      for (; i < text.size(); ++i) {
        if (text[i] == '<') ++depth;
        if (text[i] == '>' && --depth == 0) break;
      }
      if (i >= text.size()) return {};
      text = std::string(Trim(std::string_view(text).substr(i + 1)));
    }
    const std::string first = FirstToken(text);
    if (first != "class" && first != "struct") return {};
    std::string_view rest = Trim(std::string_view(text).substr(first.size()));
    // Skip attribute-like macro invocations (KV_CAPABILITY(...)).
    while (StartsWith(rest, "KV_")) {
      const size_t close = rest.find(')');
      if (close == std::string_view::npos) return {};
      rest = Trim(rest.substr(close + 1));
    }
    size_t i = 0;
    while (i < rest.size() && IsIdentChar(rest[i])) ++i;
    const std::string name(rest.substr(0, i));
    if (name.empty() || name == "final") return {};
    // `class Foo bar` is a variable of elaborated type, not a definition
    // — but at brace-open time the next char is '{', so a bare name or a
    // base-clause is what remains.
    std::string_view after = Trim(rest.substr(i));
    if (!after.empty() && after.front() != ':' && after != "final") return {};
    return name;
  }

  static bool IsLambdaHead(std::string_view head) {
    for (size_t i = 0; i < head.size(); ++i) {
      if (head[i] != '[') continue;
      if (i + 1 < head.size() && head[i + 1] == '[') return false;  // attr
      const char prev = i == 0 ? '(' : head[i - 1];
      if (IsIdentChar(prev) || prev == ')' || prev == ']') continue;
      return true;  // capture-intro in expression position
    }
    return false;
  }

  /// Parses a function head ("Ret Class::Name(args) const KV_REQUIRES(x)").
  /// Returns false when the brace is actually a member brace-initializer
  /// inside a constructor init list.
  bool FunctionHead(const std::string& head, Scope& scope) {
    const size_t paren = head.find('(');
    if (paren == std::string::npos) return false;
    // After the LAST ')', only function-suffix tokens may remain;
    // anything else (": member_" / ", member_") is an init-list brace.
    const size_t last_close = head.rfind(')');
    if (last_close == std::string::npos || last_close < paren) {
      // `foo(` with no `)` yet cannot legally be followed by '{'.
      return false;
    }
    std::string_view tail = Trim(std::string_view(head).substr(last_close + 1));
    while (!tail.empty()) {
      bool ok = false;
      for (std::string_view suffix :
           {"const", "noexcept", "override", "final", "try", "mutable"}) {
        if (StartsWith(tail, suffix)) {
          tail = Trim(tail.substr(suffix.size()));
          ok = true;
          break;
        }
      }
      if (!ok && StartsWith(tail, "->")) {
        tail = {};  // trailing return type: accept the rest
        ok = true;
      }
      if (!ok) return false;
    }
    // Identifier immediately before the first '(' is the name; an
    // immediately preceding "Class::" qualifies it.
    size_t end = paren;
    while (end > 0 && head[end - 1] == ' ') --end;
    size_t begin = end;
    while (begin > 0 && IsIdentChar(head[begin - 1])) --begin;
    if (begin > 0 && head[begin - 1] == '~') --begin;
    std::string name = head.substr(begin, end - begin);
    std::string cls;
    if (begin >= 2 && head[begin - 1] == ':' && head[begin - 2] == ':') {
      size_t cend = begin - 2;
      size_t cbegin = cend;
      while (cbegin > 0 && IsIdentChar(head[cbegin - 1])) --cbegin;
      cls = head.substr(cbegin, cend - cbegin);
    }
    if (name.empty()) {
      if (head.find("operator") == std::string::npos) return false;
      name = "operator";
    }
    if (IsKeyword(name)) return false;
    if (cls.empty()) {
      if (const Scope* enclosing = InnermostClass()) cls = enclosing->name;
    }
    scope.kind = Scope::kFunction;
    scope.cls = cls;
    scope.name = FunctionId(cls, name);
    FunctionInfo& fn = model_.functions[scope.name];
    fn.cls = cls;
    if (!cls.empty()) model_.classes[cls].methods.insert(name);
    ParseSignatureAnnotations(head, cls, fn);
    return true;
  }

  static std::string FunctionId(std::string_view cls, std::string_view name) {
    return std::string(cls) + "::" + std::string(name);
  }

  /// KV_REQUIRES(a, b) / KV_ACQUIRE(a) on a signature or declaration.
  void ParseSignatureAnnotations(const std::string& head,
                                 const std::string& cls, FunctionInfo& fn) {
    for (const auto& [macro, into] :
         {std::pair<std::string_view, std::set<std::string>*>(
              "KV_REQUIRES(", &fn.requires_caps),
          std::pair<std::string_view, std::set<std::string>*>(
              "KV_ACQUIRE(", &fn.acquire_caps)}) {
      size_t pos = head.find(macro);
      while (pos != std::string::npos) {
        const size_t close = head.find(')', pos);
        if (close == std::string::npos) break;
        const std::string_view args = std::string_view(head).substr(
            pos + macro.size(), close - pos - macro.size());
        size_t start = 0;
        while (start <= args.size()) {
          size_t comma = args.find(',', start);
          if (comma == std::string_view::npos) comma = args.size();
          const std::string cap =
              ResolveCapExpr(Collapse(args.substr(start, comma - start)), cls);
          if (!cap.empty()) into->insert(cap);
          start = comma + 1;
        }
        pos = head.find(macro, close);
      }
    }
  }

  // -- class bodies ---------------------------------------------------------

  void ClassMemberStatement(const std::string& head, const std::string& cls) {
    std::string text = head;
    // Strip a KV_GUARDED_BY(...) / KV_PT_GUARDED_BY(...) annotation.
    for (std::string_view macro : {"KV_GUARDED_BY(", "KV_PT_GUARDED_BY("}) {
      const size_t pos = text.find(macro);
      if (pos == std::string::npos) continue;
      const size_t close = text.find(')', pos);
      if (close == std::string::npos) continue;
      text = text.substr(0, pos) + text.substr(close + 1);
    }
    const std::string first = FirstToken(text);
    if (first == "using" || first == "friend" || first == "typedef" ||
        first == "template" || first == "static" || first == "enum") {
      return;
    }
    if (text.find('(') != std::string::npos) {
      // Method declaration: record the name and any annotations so a
      // definition in another file is analyzed with the right entry set.
      const size_t paren = text.find('(');
      size_t end = paren;
      while (end > 0 && text[end - 1] == ' ') --end;
      size_t begin = end;
      while (begin > 0 && IsIdentChar(text[begin - 1])) --begin;
      if (begin > 0 && text[begin - 1] == '~') --begin;
      const std::string name = text.substr(begin, end - begin);
      if (name.empty() || IsKeyword(name)) return;
      model_.classes[cls].methods.insert(name);
      FunctionInfo& fn = model_.functions[FunctionId(cls, name)];
      fn.cls = cls;
      ParseSignatureAnnotations(text, cls, fn);
      return;
    }
    // Data member: name is the last identifier; a trailing "= init" was
    // cut off by the initializer expression having no braces/parens
    // (brace initializers were handled by the resume mechanism).
    const size_t eq = text.find('=');
    if (eq != std::string::npos) text = text.substr(0, eq);
    std::string_view s = Trim(text);
    if (s.empty()) return;
    size_t end = s.size();
    if (!IsIdentChar(s[end - 1])) return;
    size_t begin = end;
    while (begin > 0 && IsIdentChar(s[begin - 1])) --begin;
    const std::string name(s.substr(begin, end - begin));
    std::string type = Collapse(s.substr(0, begin));
    for (std::string_view qualifier : {"mutable ", "inline "}) {
      if (StartsWith(type, qualifier)) type = type.substr(qualifier.size());
    }
    if (type.empty() || name.empty()) return;
    ClassInfo& info = model_.classes[cls];
    if (type == "Mutex" || type == "SharedMutex") {
      info.capabilities.insert(name);
    } else if (type == "CondVar") {
      info.condvars.insert(name);
    } else {
      info.member_types[name] = type;
      model_.member_owners[name].insert(cls);
    }
  }

  // -- function bodies ------------------------------------------------------

  void MapRangeForVars(const std::string& head, Scope& scope) {
    // for (decl : expr) — find the top-level ':' (not part of '::').
    const size_t open = head.find('(');
    if (open == std::string::npos) return;
    int depth = 0;
    size_t colon = std::string::npos, close = std::string::npos;
    for (size_t i = open; i < head.size(); ++i) {
      if (head[i] == '(') ++depth;
      if (head[i] == ')' && --depth == 0) {
        close = i;
        break;
      }
      if (head[i] == ':' && depth == 1) {
        const bool part_of_scope =
            (i > 0 && head[i - 1] == ':') ||
            (i + 1 < head.size() && head[i + 1] == ':');
        if (!part_of_scope && colon == std::string::npos) colon = i;
      }
    }
    if (colon == std::string::npos || close == std::string::npos) return;
    const std::string decl = head.substr(open + 1, colon - open - 1);
    const std::string expr =
        Collapse(head.substr(colon + 1, close - colon - 1));
    const std::set<std::string> classes = ResolveExprClasses(expr);
    if (classes.empty()) return;
    // `auto& [a, b]` maps both bindings; `auto& x` maps x.
    std::vector<std::string> vars;
    const size_t bracket = decl.find('[');
    if (bracket != std::string::npos) {
      for (const std::string& id :
           IdentifiersIn(std::string_view(decl).substr(bracket))) {
        vars.push_back(id);
      }
    } else {
      const std::vector<std::string> ids = IdentifiersIn(decl);
      if (!ids.empty()) vars.push_back(ids.back());
    }
    for (const std::string& v : vars) scope.loop_vars[v] = classes;
  }

  /// Candidate lock-owning classes a member/loop expression may denote:
  /// every known class named inside its type text.
  std::set<std::string> TypeClasses(const std::string& type_text) {
    std::set<std::string> out;
    for (const std::string& id : IdentifiersIn(type_text)) {
      if (model_.classes.count(id)) out.insert(id);
    }
    return out;
  }

  /// Resolves an expression (loop var, member, chain) to candidate
  /// classes.
  std::set<std::string> ResolveExprClasses(const std::string& expr) {
    const std::vector<std::string> chain = SplitChain(expr);
    if (chain.empty()) return {};
    std::set<std::string> current = ResolveFirstLink(chain[0]);
    for (size_t i = 1; i < chain.size() && !current.empty(); ++i) {
      std::set<std::string> next;
      for (const std::string& cls : current) {
        const auto it = model_.classes.find(cls);
        if (it == model_.classes.end()) continue;
        const auto member = it->second.member_types.find(chain[i]);
        if (member == it->second.member_types.end()) continue;
        for (const std::string& c : TypeClasses(member->second)) {
          next.insert(c);
        }
      }
      current = std::move(next);
    }
    return current;
  }

  /// Splits "a->b.c" into {a, b, c}; returns {} if the text is not a
  /// pure identifier chain.
  static std::vector<std::string> SplitChain(std::string_view expr) {
    std::vector<std::string> out;
    size_t i = 0;
    while (i < expr.size()) {
      if (!IsIdentChar(expr[i])) return {};
      size_t j = i;
      while (j < expr.size() && IsIdentChar(expr[j])) ++j;
      out.emplace_back(expr.substr(i, j - i));
      i = j;
      if (i == expr.size()) break;
      if (expr[i] == '.') {
        ++i;
      } else if (i + 1 < expr.size() && expr[i] == '-' && expr[i + 1] == '>') {
        i += 2;
      } else {
        return {};
      }
    }
    return out;
  }

  std::set<std::string> ResolveFirstLink(const std::string& ident) {
    if (ident == "this") {
      std::set<std::string> out;
      const std::vector<std::string> ctx = ClassContext();
      if (!ctx.empty()) out.insert(ctx.front());
      return out;
    }
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto found = it->loop_vars.find(ident);
      if (found != it->loop_vars.end()) return found->second;
    }
    for (const std::string& cls : ClassContext()) {
      const auto it = model_.classes.find(cls);
      if (it == model_.classes.end()) continue;
      const auto member = it->second.member_types.find(ident);
      if (member != it->second.member_types.end()) {
        return TypeClasses(member->second);
      }
    }
    return {};
  }

  /// "mu_" / "node->mu_" / "Class::mu_" -> fully-qualified capability.
  std::string ResolveCapExpr(const std::string& expr,
                             const std::string& fallback_cls) {
    std::string text = Collapse(expr);
    if (text.empty()) return {};
    const size_t scope_sep = text.find("::");
    if (scope_sep != std::string::npos) {
      const std::string cls = text.substr(0, scope_sep);
      const std::string cap = text.substr(scope_sep + 2);
      const auto it = model_.classes.find(cls);
      if (it != model_.classes.end() && it->second.capabilities.count(cap)) {
        return cls + "::" + cap;
      }
      return {};
    }
    const std::vector<std::string> chain = SplitChain(text);
    if (chain.empty()) return {};
    if (chain.size() == 1) {
      std::vector<std::string> ctx = ClassContext();
      if (!fallback_cls.empty()) ctx.insert(ctx.begin(), fallback_cls);
      for (const std::string& cls : ctx) {
        const auto it = model_.classes.find(cls);
        if (it != model_.classes.end() &&
            it->second.capabilities.count(chain[0])) {
          return cls + "::" + chain[0];
        }
      }
      return {};
    }
    const std::vector<std::string> prefix(chain.begin(), chain.end() - 1);
    std::string joined;
    for (const std::string& link : prefix) {
      if (!joined.empty()) joined += ".";
      joined += link;
    }
    for (const std::string& cls : ResolveExprClasses(joined)) {
      const auto it = model_.classes.find(cls);
      if (it != model_.classes.end() &&
          it->second.capabilities.count(chain.back())) {
        return cls + "::" + chain.back();
      }
    }
    return {};
  }

  std::vector<std::string> HeldSnapshot() const {
    std::vector<std::string> out;
    out.reserve(held_.size());
    for (const HeldLock& h : held_) out.push_back(h.cap);
    return out;
  }

  /// Extracts RAII acquisitions, CondVar waits and resolved calls from
  /// one executable statement (or control-flow head) of `fn`.
  void ScanExecutableText(const std::string& text, Scope& fn_scope) {
    FunctionInfo& fn = model_.functions[fn_scope.name];
    // RAII acquisition: `MutexLock name(expr)`.
    const std::string first = FirstToken(text);
    if (first == "MutexLock" || first == "WriterMutexLock" ||
        first == "ReaderMutexLock") {
      const size_t open = text.find('(');
      const size_t close = text.rfind(')');
      if (open != std::string::npos && close != std::string::npos &&
          close > open) {
        const std::string cap = ResolveCapExpr(
            text.substr(open + 1, close - open - 1), fn_scope.cls);
        if (!cap.empty()) {
          BodySite site{file_, stmt_line_, HeldSnapshot(), cap, "", ""};
          fn.sites.push_back(std::move(site));
          held_.push_back({cap, scopes_.size()});
        }
      }
      return;
    }
    ScanWaits(text, fn);
    ScanCalls(text, fn_scope, fn);
  }

  void ScanWaits(const std::string& text, FunctionInfo& fn) {
    for (std::string_view probe : {".Wait(", "->Wait(", ".WaitFor("}) {
      size_t pos = text.find(probe);
      while (pos != std::string::npos) {
        const size_t open = pos + probe.size() - 1;
        const size_t close = text.find_first_of(",)", open);
        if (close != std::string::npos) {
          const std::string cap = ResolveCapExpr(
              Collapse(text.substr(open + 1, close - open - 1)), "");
          if (!cap.empty()) {
            fn.sites.push_back(
                {file_, stmt_line_, HeldSnapshot(), "", "", cap});
          }
        }
        pos = text.find(probe, pos + 1);
      }
    }
  }

  void ScanCalls(const std::string& text, Scope& fn_scope, FunctionInfo& fn) {
    // Constructor calls via factories.
    for (std::string_view factory : {"make_shared<", "make_unique<"}) {
      size_t pos = text.find(factory);
      while (pos != std::string::npos) {
        const std::string_view after =
            std::string_view(text).substr(pos + factory.size());
        const std::vector<std::string> ids = IdentifiersIn(
            after.substr(0, after.find('>')));
        RecordCtorCall(ids, fn);
        pos = text.find(factory, pos + 1);
      }
    }
    size_t pos = text.find("new ");
    while (pos != std::string::npos) {
      const std::vector<std::string> ids =
          IdentifiersIn(std::string_view(text).substr(pos + 4, 64));
      RecordCtorCall(ids, fn);
      pos = text.find("new ", pos + 1);
    }
    // Plain and chained method calls.
    for (size_t i = 0; i < text.size(); ++i) {
      if (text[i] != '(') continue;
      size_t end = i;
      while (end > 0 && text[end - 1] == ' ') --end;
      size_t begin = end;
      while (begin > 0 && IsIdentChar(text[begin - 1])) --begin;
      if (begin == end) continue;
      const std::string method = text.substr(begin, end - begin);
      if (IsKeyword(method) || StartsWith(method, "KV_") ||
          method == "Wait" || method == "WaitFor") {
        continue;
      }
      // Qualified static call `Class::Method(`.
      if (begin >= 2 && text[begin - 1] == ':' && text[begin - 2] == ':') {
        size_t cend = begin - 2;
        size_t cbegin = cend;
        while (cbegin > 0 && IsIdentChar(text[cbegin - 1])) --cbegin;
        const std::string cls = text.substr(cbegin, cend - cbegin);
        const auto it = model_.classes.find(cls);
        if (it != model_.classes.end() && it->second.methods.count(method)) {
          fn.sites.push_back({file_, stmt_line_, HeldSnapshot(), "",
                              FunctionId(cls, method), ""});
        }
        continue;
      }
      // Collect the receiver chain (a.b->c) ending at `method`.
      std::vector<std::string> chain{method};
      size_t cursor = begin;
      bool pure = true;
      while (cursor > 0) {
        size_t sep_end = cursor;
        if (text[sep_end - 1] == '.') {
          cursor = sep_end - 1;
        } else if (sep_end >= 2 && text[sep_end - 2] == '-' &&
                   text[sep_end - 1] == '>') {
          cursor = sep_end - 2;
        } else {
          break;
        }
        // `member_[i]->Method(`: a balanced subscript is transparent; the
        // element class is recovered from the member's declared type.
        while (cursor > 0 && text[cursor - 1] == ']') {
          int depth = 1;
          size_t k = cursor - 1;
          while (k > 0 && depth > 0) {
            --k;
            if (text[k] == ']') ++depth;
            if (text[k] == '[') --depth;
          }
          if (depth != 0) break;  // unbalanced: caught as impure below
          cursor = k;
        }
        size_t lbegin = cursor;
        while (lbegin > 0 && IsIdentChar(text[lbegin - 1])) --lbegin;
        if (lbegin == cursor) {
          pure = false;  // chain starts at ')' or ']' — give up
          break;
        }
        chain.insert(chain.begin(), text.substr(lbegin, cursor - lbegin));
        cursor = lbegin;
      }
      if (chain.size() == 1) {
        // An impure single-link chain is `)->Method(` or similar: the
        // receiver is unknown, NOT the enclosing class.
        if (!pure) continue;
        if (!fn_scope.cls.empty() &&
            model_.classes[fn_scope.cls].methods.count(method)) {
          fn.sites.push_back({file_, stmt_line_, HeldSnapshot(), "",
                              FunctionId(fn_scope.cls, method), ""});
        } else if (model_.classes.count(method)) {
          RecordCtorCall({method}, fn);  // direct constructor call
        }
        continue;
      }
      std::set<std::string> classes;
      if (pure) {
        std::string receiver;
        for (size_t k = 0; k + 1 < chain.size(); ++k) {
          if (!receiver.empty()) receiver += ".";
          receiver += chain[k];
        }
        classes = ResolveExprClasses(receiver);
      }
      if (classes.empty()) {
        // Unique-member fallback: the direct receiver (penultimate link)
        // may be a member name that exists in exactly the right classes.
        const std::string& direct = chain[chain.size() - 2];
        const auto owners = model_.member_owners.find(direct);
        if (owners != model_.member_owners.end()) {
          for (const std::string& owner : owners->second) {
            for (const std::string& c :
                 TypeClasses(model_.classes[owner].member_types[direct])) {
              classes.insert(c);
            }
          }
        }
      }
      // Of the candidates, keep those that define the method; a unique
      // survivor is a resolved call, anything else is skipped.
      std::vector<std::string> defining;
      for (const std::string& cls : classes) {
        if (model_.classes[cls].methods.count(method)) {
          defining.push_back(cls);
        }
      }
      if (defining.size() == 1) {
        fn.sites.push_back({file_, stmt_line_, HeldSnapshot(), "",
                            FunctionId(defining.front(), method), ""});
      }
    }
  }

  void RecordCtorCall(const std::vector<std::string>& ids, FunctionInfo& fn) {
    for (const std::string& id : ids) {
      if (model_.classes.count(id)) {
        fn.sites.push_back({file_, stmt_line_, HeldSnapshot(), "",
                            FunctionId(id, id), ""});
        return;
      }
    }
  }

  Model& model_;
  std::string file_;
  const FileView& view_;
  int line_no_ = 0;
  int stmt_line_ = 0;
  std::string stmt_;
  std::vector<Scope> scopes_;
  std::vector<HeldLock> held_;
};

// ---------------------------------------------------------------------------
// Graph construction and cycle detection
// ---------------------------------------------------------------------------

struct Edge {
  std::string file;
  int line = 0;
  std::string via;  ///< "" for a direct nested acquisition
};

using EdgeMap = std::map<std::pair<std::string, std::string>, Edge>;

/// may-acquire fixpoint: every capability a function may take, directly
/// or through any resolved callee.
std::map<std::string, std::set<std::string>> MayAcquire(const Model& model) {
  std::map<std::string, std::set<std::string>> ma;
  for (const auto& [id, fn] : model.functions) {
    std::set<std::string>& caps = ma[id];
    caps = fn.acquire_caps;
    for (const BodySite& site : fn.sites) {
      if (!site.acquires.empty()) caps.insert(site.acquires);
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [id, fn] : model.functions) {
      std::set<std::string>& caps = ma[id];
      for (const BodySite& site : fn.sites) {
        if (site.callee.empty()) continue;
        const auto it = ma.find(site.callee);
        if (it == ma.end()) continue;
        for (const std::string& cap : it->second) {
          if (caps.insert(cap).second) changed = true;
        }
      }
    }
  }
  return ma;
}

/// Tarjan strongly-connected components over the capability digraph.
class SccFinder {
 public:
  explicit SccFinder(const EdgeMap& edges) {
    for (const auto& [key, edge] : edges) {
      adjacency_[key.first].push_back(key.second);
      adjacency_[key.second];  // ensure the sink node exists
    }
  }

  std::vector<std::vector<std::string>> Run() {
    for (const auto& [node, next] : adjacency_) {
      if (!index_.count(node)) Strongconnect(node);
    }
    return components_;
  }

 private:
  void Strongconnect(const std::string& v) {
    index_[v] = lowlink_[v] = counter_++;
    stack_.push_back(v);
    on_stack_.insert(v);
    for (const std::string& w : adjacency_[v]) {
      if (!index_.count(w)) {
        Strongconnect(w);
        lowlink_[v] = std::min(lowlink_[v], lowlink_[w]);
      } else if (on_stack_.count(w)) {
        lowlink_[v] = std::min(lowlink_[v], index_[w]);
      }
    }
    if (lowlink_[v] == index_[v]) {
      std::vector<std::string> component;
      for (;;) {
        const std::string w = stack_.back();
        stack_.pop_back();
        on_stack_.erase(w);
        component.push_back(w);
        if (w == v) break;
      }
      components_.push_back(std::move(component));
    }
  }

  std::map<std::string, std::vector<std::string>> adjacency_;
  std::map<std::string, int> index_;
  std::map<std::string, int> lowlink_;
  std::vector<std::string> stack_;
  std::set<std::string> on_stack_;
  std::vector<std::vector<std::string>> components_;
  int counter_ = 0;
};

std::string JoinCaps(const std::vector<std::string>& caps) {
  std::string out;
  for (const std::string& cap : caps) {
    if (!out.empty()) out += ", ";
    out += cap;
  }
  return out;
}

}  // namespace

std::vector<Finding> AnalyzeLockGraph(const std::filesystem::path& root,
                                      Whitelist& wl) {
  Model model;
  const std::vector<std::string> files = ListSourceFiles(
      root, {"src"}, {"src/common/thread_annotations.hpp"});
  std::vector<std::pair<std::string, FileView>> views;
  views.reserve(files.size());
  for (const std::string& rel : files) {
    views.emplace_back(rel, BuildView(ReadFileOrEmpty(root / rel)));
  }
  // Headers first so class layouts are known when bodies are parsed,
  // then everything again so .cpp-declared types are also complete.
  for (int round = 0; round < 2; ++round) {
    for (const auto& [rel, view] : views) {
      FileParser(model, rel, view).Run();
      if (round == 0) {
        // First round only collects declarations; throw away bodies.
        for (auto& [id, fn] : model.functions) fn.sites.clear();
      }
    }
    if (round == 0) {
      for (auto& [id, fn] : model.functions) fn.sites.clear();
    }
  }

  const std::map<std::string, std::set<std::string>> ma = MayAcquire(model);
  if (const char* filt = std::getenv("KVSCALE_LOCK_DEBUG_FN")) {
    for (const auto& [id, fn] : model.functions) {
      if (id.find(filt) == std::string::npos) continue;
      std::string req;
      for (const auto& c : fn.requires_caps) req += c + " ";
      std::string may;
      if (const auto it = ma.find(id); it != ma.end()) {
        for (const auto& c : it->second) may += c + " ";
      }
      std::fprintf(stderr, "FN %s cls=%s requires=[%s] ma=[%s]\n", id.c_str(),
                   fn.cls.c_str(), req.c_str(), may.c_str());
      for (const BodySite& site : fn.sites) {
        std::string held;
        for (const auto& c : site.held) held += c + " ";
        std::fprintf(stderr,
                     "  SITE %s:%d held=[%s] acquires=%s callee=%s wait=%s\n",
                     site.file.c_str(), site.line, held.c_str(),
                     site.acquires.c_str(), site.callee.c_str(),
                     site.wait_cap.c_str());
      }
    }
  }
  std::vector<Finding> findings;
  EdgeMap edges;
  for (const auto& [id, fn] : model.functions) {
    for (const BodySite& site : fn.sites) {
      std::vector<std::string> held(fn.requires_caps.begin(),
                                    fn.requires_caps.end());
      for (const std::string& cap : site.held) {
        if (std::find(held.begin(), held.end(), cap) == held.end()) {
          held.push_back(cap);
        }
      }
      if (!site.acquires.empty()) {
        for (const std::string& h : held) {
          edges.emplace(std::make_pair(h, site.acquires),
                        Edge{site.file, site.line, ""});
        }
      } else if (!site.callee.empty()) {
        const auto it = ma.find(site.callee);
        if (it == ma.end()) continue;
        const auto callee = model.functions.find(site.callee);
        for (const std::string& h : held) {
          for (const std::string& cap : it->second) {
            // A capability the callee KV_REQUIRES is entry-held by
            // contract, not acquired by the callee; any genuine deeper
            // re-acquisition produces its own edge at the deeper site.
            if (callee != model.functions.end() &&
                callee->second.requires_caps.count(cap)) {
              continue;
            }
            edges.emplace(std::make_pair(h, cap),
                          Edge{site.file, site.line, site.callee});
          }
        }
      } else if (!site.wait_cap.empty()) {
        std::vector<std::string> extra;
        for (const std::string& h : held) {
          if (h != site.wait_cap) extra.push_back(h);
        }
        if (!extra.empty() && !wl.Allow("wait-holding", id)) {
          findings.push_back(
              {site.file, site.line, std::string(kWaitHolding),
               id + " waits on " + site.wait_cap + " while holding " +
                   JoinCaps(extra) +
                   ": the held lock blocks the thread that would signal"});
        }
      }
    }
  }

  if (std::getenv("KVSCALE_LOCK_DEBUG") != nullptr) {
    for (const auto& [key, edge] : edges) {
      std::fprintf(stderr, "EDGE %s -> %s at %s:%d via %s\n",
                   key.first.c_str(), key.second.c_str(), edge.file.c_str(),
                   edge.line, edge.via.c_str());
    }
  }
  EdgeMap live;
  for (const auto& [key, edge] : edges) {
    if (wl.Allow("lock-order", key.first + "->" + key.second)) continue;
    live.emplace(key, edge);
  }

  const std::vector<std::vector<std::string>> sccs = SccFinder(live).Run();
  for (const std::vector<std::string>& scc : sccs) {
    const std::set<std::string> members(scc.begin(), scc.end());
    const bool self_loop =
        scc.size() == 1 && live.count(std::make_pair(scc[0], scc[0])) > 0;
    if (scc.size() < 2 && !self_loop) continue;
    std::vector<std::string> sorted(members.begin(), members.end());
    const std::string cycle_text = JoinCaps(sorted);
    for (const auto& [key, edge] : live) {
      if (!members.count(key.first) || !members.count(key.second)) continue;
      std::string message = "lock-order cycle among {" + cycle_text +
                            "}: holding " + key.first + ", acquires " +
                            key.second;
      if (!edge.via.empty()) message += " via call to " + edge.via;
      findings.push_back(
          {edge.file, edge.line, std::string(kLockCycle), std::move(message)});
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return findings;
}

}  // namespace kvscale::lint
