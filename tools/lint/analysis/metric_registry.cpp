// Pass 3: metric-name registry extraction and consistency.
//
// Every literal name passed to MetricsRegistry::Get{Counter,Gauge,
// Histogram} is collected tree-wide (src/, bench/, tools/, examples/ —
// tests register throwaway names and are excluded). Three failure
// classes are gated:
//
//  * metric-collision     two names within edit distance 1 of each
//                         other, or equal once separators are stripped
//                         ("store.readcount" vs "store.read.count"):
//                         almost always a typo that splits one logical
//                         series into two dashboards
//  * metric-kind-overlap  the same name (or dynamic prefix) registered
//                         as two different instrument kinds: the
//                         exporter would emit conflicting series
//  * metric-undocumented  a name missing from docs/OBSERVABILITY.md —
//                         the doc is the operator-facing contract, and
//                         a wildcard entry ("cluster.query.*") covers a
//                         dotted prefix
//
// A literal immediately followed by '+' is a dynamic family
// ("sim.gauge." + name): the literal prefix is what gets checked and
// exported.
#include "analysis.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "source_view.hpp"

namespace kvscale::lint {

namespace {

constexpr std::string_view kCollision = "metric-collision";
constexpr std::string_view kKindOverlap = "metric-kind-overlap";
constexpr std::string_view kUndocumented = "metric-undocumented";

/// Levenshtein distance, early-exited at > 1 (only distance <= 1
/// matters here).
size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  if (b.size() - a.size() > 1) return 2;
  std::vector<size_t> prev(a.size() + 1), cur(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) prev[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    cur[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      const size_t subst = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, subst});
    }
    std::swap(prev, cur);
  }
  return prev[a.size()];
}

std::string StripSeparators(std::string_view name) {
  std::string out;
  for (const char c : name) {
    if (c != '.' && c != '_') out.push_back(c);
  }
  return out;
}

/// Extracts Get{Counter,Gauge,Histogram} literals from one file,
/// locating the call in the comment/string-blanked code view and
/// reading the literal from the raw view at the same columns.
void ExtractFromFile(const std::string& rel, const FileView& view,
                     std::vector<MetricInstrument>& out) {
  static const std::pair<std::string_view, std::string_view> kMethods[] = {
      {"GetCounter", "counter"},
      {"GetGauge", "gauge"},
      {"GetHistogram", "histogram"},
  };
  for (size_t i = 0; i < view.code.size(); ++i) {
    const std::string& code = view.code[i];
    const std::string& raw = view.raw[i];
    for (const auto& [method, kind] : kMethods) {
      size_t pos = 0;
      while ((pos = code.find(method, pos)) != std::string::npos) {
        const size_t end = pos + method.size();
        const bool left_ok = pos == 0 || !IsIdentChar(code[pos - 1]);
        pos = end;
        if (!left_ok || (end < code.size() && IsIdentChar(code[end]))) {
          continue;
        }
        size_t p = end;
        while (p < code.size() && (code[p] == ' ' || code[p] == '\t')) ++p;
        if (p >= code.size() || code[p] != '(') continue;
        ++p;
        while (p < raw.size() && (raw[p] == ' ' || raw[p] == '\t')) ++p;
        if (p >= raw.size() || raw[p] != '"') continue;  // non-literal name
        const size_t close = raw.find('"', p + 1);
        if (close == std::string::npos) continue;
        const std::string name = raw.substr(p + 1, close - p - 1);
        size_t after = close + 1;
        while (after < raw.size() &&
               (raw[after] == ' ' || raw[after] == '\t')) {
          ++after;
        }
        const bool dynamic = after < raw.size() && raw[after] == '+';
        out.push_back({name, std::string(kind), rel,
                       static_cast<int>(i) + 1, dynamic});
        pos = close;
      }
    }
  }
}

/// Names and wildcard prefixes the observability doc declares. A doc
/// token "cluster.query.*" or "sim.gauge.<name>" covers every metric
/// under that dotted prefix.
struct DocCoverage {
  std::set<std::string> names;
  std::vector<std::string> prefixes;

  bool Covers(const std::string& name, bool dynamic) const {
    if (names.count(name)) return true;
    for (const std::string& prefix : prefixes) {
      if (StartsWith(name, prefix)) return true;
      // A dynamic family "cluster.query." is also covered by the
      // wildcard "cluster.query.*".
      if (dynamic && StartsWith(prefix, name)) return true;
    }
    return false;
  }
};

DocCoverage ParseDoc(const std::string& text) {
  DocCoverage cov;
  size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (IsIdentChar(c) || c == '.') {
      size_t j = i;
      while (j < text.size() &&
             (IsIdentChar(text[j]) || text[j] == '.' || text[j] == '*' ||
              text[j] == '<' || text[j] == '>')) {
        ++j;
      }
      const std::string token = text.substr(i, j - i);
      const size_t wild = token.find_first_of("*<");
      if (wild == std::string::npos) {
        if (token.find('.') != std::string::npos) cov.names.insert(token);
      } else if (wild > 0) {
        cov.prefixes.push_back(token.substr(0, wild));
      }
      i = j;
    } else {
      ++i;
    }
  }
  return cov;
}

}  // namespace

std::vector<Finding> AnalyzeMetricRegistry(
    const std::filesystem::path& root, Whitelist& wl,
    std::vector<MetricInstrument>* registry_out) {
  std::vector<MetricInstrument> instruments;
  const std::vector<std::string> files = ListSourceFiles(
      root, {"src", "bench", "tools", "examples"}, {"tools/lint/"});
  for (const std::string& rel : files) {
    ExtractFromFile(rel, BuildView(ReadFileOrEmpty(root / rel)), instruments);
  }
  std::sort(instruments.begin(), instruments.end(),
            [](const MetricInstrument& a, const MetricInstrument& b) {
              return std::tie(a.name, a.kind, a.file, a.line) <
                     std::tie(b.name, b.kind, b.file, b.line);
            });

  std::vector<Finding> findings;

  // Distinct names with a representative site each.
  struct NameInfo {
    std::set<std::string> kinds;
    std::string file;
    int line = 0;
    bool dynamic = false;
  };
  std::map<std::string, NameInfo> by_name;
  for (const MetricInstrument& m : instruments) {
    NameInfo& info = by_name[m.name];
    if (info.kinds.empty()) {
      info.file = m.file;
      info.line = m.line;
    }
    info.kinds.insert(m.kind);
    info.dynamic = info.dynamic || m.dynamic;
  }

  // -- near-collision pairs -------------------------------------------------
  std::vector<std::string> names;
  for (const auto& [name, info] : by_name) names.push_back(name);
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = i + 1; j < names.size(); ++j) {
      const std::string& a = names[i];
      const std::string& b = names[j];
      const bool near = EditDistance(a, b) <= 1 ||
                        StripSeparators(a) == StripSeparators(b);
      if (!near) continue;
      if (wl.Allow("metric-pair", a + "~" + b) ||
          wl.Allow("metric-pair", b + "~" + a)) {
        continue;
      }
      const NameInfo& info = by_name[b];
      findings.push_back(
          {info.file, info.line, std::string(kCollision),
           "metric \"" + b + "\" nearly collides with \"" + a + "\" (" +
               by_name[a].file + ":" + std::to_string(by_name[a].line) +
               "): likely a typo splitting one series in two"});
    }
  }

  // -- kind overlap ---------------------------------------------------------
  for (const auto& [name, info] : by_name) {
    if (info.kinds.size() < 2) continue;
    if (wl.Allow("metric-kind", name)) continue;
    std::string kinds;
    for (const std::string& kind : info.kinds) {
      if (!kinds.empty()) kinds += " and ";
      kinds += kind;
    }
    findings.push_back({info.file, info.line, std::string(kKindOverlap),
                        "metric \"" + name + "\" is registered as both " +
                            kinds + ": the exporter emits two conflicting "
                            "series under one name"});
  }

  // -- documentation --------------------------------------------------------
  const std::string doc_text =
      ReadFileOrEmpty(root / "docs" / "OBSERVABILITY.md");
  if (!doc_text.empty()) {
    const DocCoverage cov = ParseDoc(doc_text);
    for (const auto& [name, info] : by_name) {
      if (cov.Covers(name, info.dynamic)) continue;
      findings.push_back(
          {info.file, info.line, std::string(kUndocumented),
           "metric \"" + name +
               "\" is not documented in docs/OBSERVABILITY.md (add the name "
               "or a covering wildcard like \"prefix.*\")"});
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  if (registry_out != nullptr) {
    registry_out->insert(registry_out->end(), instruments.begin(),
                         instruments.end());
  }
  return findings;
}

}  // namespace kvscale::lint
