// kvscale_lint — the project linter (see lint_rules.hpp for the rules).
//
// Usage:
//   kvscale_lint --check-tree [--root DIR]   lint src/ bench/ tests/
//                                            tools/ examples/ under DIR
//                                            (default: cwd)
//   kvscale_lint [--root DIR] FILE...        lint individual files
//   kvscale_lint --list-rules                print the rule catalogue
//
// Exits 0 when clean, 1 on any finding, 2 on usage errors. Registered as
// a ctest (KvscaleLint.CheckTree) so tier-1 fails on new violations;
// tools/static_check.sh runs it as part of the full check matrix.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint_rules.hpp"

namespace {

namespace fs = std::filesystem;
using kvscale::lint::Finding;

int PrintFindings(const std::vector<Finding>& findings) {
  for (const Finding& finding : findings) {
    std::fprintf(stderr, "%s\n",
                 kvscale::lint::FormatFinding(finding).c_str());
  }
  if (findings.empty()) {
    std::fprintf(stderr, "kvscale_lint: clean\n");
    return 0;
  }
  std::fprintf(stderr,
               "kvscale_lint: %zu finding(s); suppress a deliberate one "
               "with  // kvscale-lint: allow(<rule>) <reason>\n",
               findings.size());
  return 1;
}

std::string RelPath(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(file, root, ec);
  if (ec || rel.empty() || *rel.begin() == "..") {
    return file.generic_string();
  }
  return rel.generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  bool check_tree = false;
  std::vector<fs::path> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check-tree") {
      check_tree = true;
    } else if (arg == "--list-rules") {
      for (std::string_view rule : kvscale::lint::RuleIds()) {
        std::printf("%-18s %s\n", std::string(rule).c_str(),
                    std::string(kvscale::lint::RuleDescription(rule)).c_str());
      }
      return 0;
    } else if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "kvscale_lint: --root needs a directory\n");
        return 2;
      }
      root = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "kvscale_lint: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      files.emplace_back(arg);
    }
  }

  if (check_tree) {
    if (!fs::is_directory(root)) {
      std::fprintf(stderr, "kvscale_lint: root %s is not a directory\n",
                   root.generic_string().c_str());
      return 2;
    }
    return PrintFindings(kvscale::lint::LintTree(root));
  }

  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: kvscale_lint --check-tree [--root DIR] | "
                 "[--root DIR] FILE... | --list-rules\n");
    return 2;
  }

  std::vector<Finding> findings;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "kvscale_lint: cannot read %s\n",
                   file.generic_string().c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::vector<Finding> file_findings = kvscale::lint::LintFileContent(
        RelPath(fs::absolute(file), fs::absolute(root)), buffer.str());
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  return PrintFindings(findings);
}
