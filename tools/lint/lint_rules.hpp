// kvscale_lint: project-specific rules the compiler cannot enforce.
//
// Clang's -Wthread-safety (src/common/thread_annotations.hpp) proves lock
// discipline; this linter covers the invariants that live above the type
// system:
//
//   sim-wallclock     simulation code (src/sim, src/model, src/cluster)
//                     must not read wall clocks or OS randomness — results
//                     must be reproducible from the virtual clock and the
//                     seeded Rng
//   discarded-status  no `(void)` casts that silence a [[nodiscard]]
//                     Status / Result (or any other call's return value)
//   stdout-in-lib     library code under src/ must not print to stdout
//                     (CLI, bench, tests, examples are exempt)
//   raw-mutex         std::mutex & friends are forbidden outside
//                     src/common/thread_annotations.hpp — use the
//                     annotated wrappers so -Wthread-safety sees the locks
//   include-order     a .cpp under src/ that includes its own header must
//                     include it first (catches headers that only compile
//                     because of include-order luck)
//   metric-name       literal MetricsRegistry instrument names must be
//                     dot-namespaced lowercase ("cluster.read.errors");
//                     dashboards and the time-series exporter group by
//                     the dotted prefix, so flat names get lost
//
// Every rule is suppressible, with a mandatory justification:
//
//   code();  // kvscale-lint: allow(rule-id) reason why this is fine
//
// on the offending line, or on a comment-only line directly above it. A
// file-wide exemption is `// kvscale-lint: allow-file(rule-id) reason`.
// A suppression without a reason is itself reported (rule
// `lint-suppression`), as is one naming an unknown rule. A suppression
// whose rule no longer fires on its covered lines (or anywhere in the
// file, for allow-file) is reported as `stale-suppression` so dead
// markers cannot rot the audit trail.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace kvscale::lint {

/// One rule violation (or malformed suppression) at a source line.
struct Finding {
  std::string file;  ///< repo-relative path, forward slashes
  int line = 0;      ///< 1-based
  std::string rule;
  std::string message;
};

/// Stable list of enforced rule ids (excludes `lint-suppression`).
std::vector<std::string_view> RuleIds();

/// One-line description of `rule` (empty for unknown ids).
std::string_view RuleDescription(std::string_view rule);

/// Lints one file's text. `rel_path` must be the repo-relative path with
/// forward slashes — it determines which rules apply.
std::vector<Finding> LintFileContent(std::string_view rel_path,
                                     std::string_view content);

/// Walks src/, bench/, tests/, tools/, and examples/ under `root` and
/// lints every .hpp/.cpp (tests/lint_fixtures/ excluded: those files
/// violate on purpose). Findings are sorted by (file, line).
std::vector<Finding> LintTree(const std::filesystem::path& root);

/// `file:line: [rule] message` rendering shared by the CLI and tests.
std::string FormatFinding(const Finding& finding);

}  // namespace kvscale::lint
