#include "lint_rules.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <tuple>
#include <utility>

#include "source_view.hpp"

namespace kvscale::lint {

namespace {

constexpr std::string_view kSimWallclock = "sim-wallclock";
constexpr std::string_view kDiscardedStatus = "discarded-status";
constexpr std::string_view kStdoutInLib = "stdout-in-lib";
constexpr std::string_view kRawMutex = "raw-mutex";
constexpr std::string_view kIncludeOrder = "include-order";
constexpr std::string_view kMetricName = "metric-name";
constexpr std::string_view kSuppression = "lint-suppression";
constexpr std::string_view kStaleSuppression = "stale-suppression";

constexpr std::array<std::pair<std::string_view, std::string_view>, 6>
    kRuleCatalogue = {{
        {kSimWallclock,
         "simulation code must use the virtual clock / seeded Rng, not "
         "wall clocks or rand()"},
        {kDiscardedStatus,
         "no (void) casts discarding a call's Status/Result"},
        {kStdoutInLib,
         "no stdout printing from src/ library code (CLI/bench exempt)"},
        {kRawMutex,
         "std::mutex & friends only inside thread_annotations.hpp; use "
         "the annotated wrappers"},
        {kIncludeOrder,
         "a .cpp under src/ must include its own header first"},
        {kMetricName,
         "MetricsRegistry instrument names must be dot-namespaced "
         "lowercase (e.g. cluster.read.errors)"},
    }};

/// One parsed `allow(rule)` / `allow-file(rule)` marker. `used` flips
/// when the marker actually silences a finding; a marker that silences
/// nothing is reported as `stale-suppression` so the audit trail cannot
/// rot (see CheckStaleSuppressions).
struct Marker {
  int line_no = 0;
  std::string rule;
  bool file_wide = false;
  bool used = false;
};

/// Parsed suppression markers plus the findings malformed ones produce.
struct Suppressions {
  std::vector<Marker> markers;
  /// (line covered, rule) -> indices into `markers` (a trailing comment
  /// and a comment-above can cover the same line).
  std::multimap<std::pair<int, std::string>, size_t> lines;
  std::vector<Finding> problems;
};

bool KnownRule(std::string_view rule) {
  for (const auto& [id, description] : kRuleCatalogue) {
    if (id == rule) return true;
  }
  return false;
}

Suppressions CollectSuppressions(std::string_view rel_path,
                                 const FileView& view) {
  constexpr std::string_view kMarker = "kvscale-lint:";
  Suppressions out;
  // The linter's own sources document the marker syntax in comments;
  // parsing those examples as live suppressions would flag them.
  if (StartsWith(rel_path, "tools/lint/")) return out;
  for (size_t i = 0; i < view.comment.size(); ++i) {
    const std::string& line = view.comment[i];
    const int line_no = static_cast<int>(i) + 1;
    size_t pos = line.find(kMarker);
    if (pos == std::string::npos) continue;
    std::string_view rest = Trim(std::string_view(line).substr(
        pos + kMarker.size()));
    bool file_wide = false;
    if (StartsWith(rest, "allow-file(")) {
      file_wide = true;
      rest.remove_prefix(std::string_view("allow-file(").size());
    } else if (StartsWith(rest, "allow(")) {
      rest.remove_prefix(std::string_view("allow(").size());
    } else {
      out.problems.push_back({std::string(rel_path), line_no,
                              std::string(kSuppression),
                              "malformed marker: expected allow(rule) or "
                              "allow-file(rule)"});
      continue;
    }
    const size_t close = rest.find(')');
    if (close == std::string_view::npos) {
      out.problems.push_back({std::string(rel_path), line_no,
                              std::string(kSuppression),
                              "unterminated allow(...)"});
      continue;
    }
    const std::string rule(Trim(rest.substr(0, close)));
    std::string_view reason = Trim(rest.substr(close + 1));
    while (reason.size() >= 2 &&
           reason.substr(reason.size() - 2) == "*/") {
      // strip the closer of a block comment
      reason = Trim(reason.substr(0, reason.size() - 2));
    }
    if (!KnownRule(rule)) {
      out.problems.push_back({std::string(rel_path), line_no,
                              std::string(kSuppression),
                              "unknown rule '" + rule + "' in suppression"});
      continue;
    }
    if (reason.empty()) {
      out.problems.push_back(
          {std::string(rel_path), line_no, std::string(kSuppression),
           "suppression of '" + rule + "' needs a justification after the "
           "closing parenthesis"});
      continue;
    }
    const size_t index = out.markers.size();
    out.markers.push_back({line_no, rule, file_wide, false});
    if (!file_wide) {
      // Covers its own line (trailing comment) and the next (a
      // comment-only line directly above the offending code).
      out.lines.emplace(std::make_pair(line_no, rule), index);
      out.lines.emplace(std::make_pair(line_no + 1, rule), index);
    }
  }
  return out;
}

bool InSimulationCode(std::string_view rel_path) {
  return StartsWith(rel_path, "src/sim/") ||
         StartsWith(rel_path, "src/model/") ||
         StartsWith(rel_path, "src/cluster/");
}

bool InLibraryCode(std::string_view rel_path) {
  return StartsWith(rel_path, "src/");
}

/// Basename of this .cpp's own header ("src/store/table.cpp" -> "table.hpp").
std::string OwnHeaderName(std::string_view rel_path) {
  if (!StartsWith(rel_path, "src/")) return {};
  if (rel_path.size() < 4 || rel_path.substr(rel_path.size() - 4) != ".cpp") {
    return {};
  }
  const size_t slash = rel_path.rfind('/');
  std::string_view stem = rel_path.substr(slash + 1);
  stem.remove_suffix(4);
  return std::string(stem) + ".hpp";
}

struct IncludeDirective {
  int line_no = 0;
  std::string target;  ///< path inside the <> or "" delimiters
  bool quoted = false;
};

std::vector<IncludeDirective> ParseIncludes(const FileView& view) {
  std::vector<IncludeDirective> out;
  for (size_t i = 0; i < view.code.size(); ++i) {
    std::string_view line = Trim(view.code[i]);
    if (!StartsWith(line, "#")) continue;
    line = Trim(line.substr(1));
    if (!StartsWith(line, "include")) continue;
    // The code view blanks string literals, so read the target from the
    // raw line instead.
    const std::string& raw = view.raw[i];
    const size_t open = raw.find_first_of("<\"", raw.find("include"));
    if (open == std::string::npos) continue;
    const char closer = raw[open] == '<' ? '>' : '"';
    const size_t close = raw.find(closer, open + 1);
    if (close == std::string::npos) continue;
    out.push_back({static_cast<int>(i) + 1,
                   raw.substr(open + 1, close - open - 1),
                   raw[open] == '"'});
  }
  return out;
}

class FileLinter {
 public:
  FileLinter(std::string_view rel_path, const FileView& view)
      : rel_path_(rel_path),
        view_(view),
        suppressions_(CollectSuppressions(rel_path, view)) {}

  std::vector<Finding> Run() {
    findings_ = suppressions_.problems;
    for (size_t i = 0; i < view_.code.size(); ++i) {
      const std::string& code = view_.code[i];
      const int line_no = static_cast<int>(i) + 1;
      CheckSimWallclock(code, line_no);
      CheckDiscardedStatus(code, line_no);
      CheckStdoutInLib(code, line_no);
      CheckRawMutex(code, line_no);
      CheckMetricName(code, view_.raw[i], line_no);
    }
    CheckIncludeOrder();
    CheckStaleSuppressions();
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                return std::tie(a.file, a.line, a.rule) <
                       std::tie(b.file, b.line, b.rule);
              });
    return std::move(findings_);
  }

 private:
  void Report(std::string_view rule, int line_no, std::string message) {
    bool suppressed = false;
    for (Marker& marker : suppressions_.markers) {
      if (marker.file_wide && marker.rule == rule) {
        marker.used = true;
        suppressed = true;
      }
    }
    if (suppressed) return;
    const auto [begin, end] = suppressions_.lines.equal_range(
        std::make_pair(line_no, std::string(rule)));
    for (auto it = begin; it != end; ++it) {
      suppressions_.markers[it->second].used = true;
      suppressed = true;
    }
    if (suppressed) return;
    findings_.push_back(
        {std::string(rel_path_), line_no, std::string(rule),
         std::move(message)});
  }

  /// A suppression whose rule never fires on its covered lines (or, for
  /// allow-file, anywhere in the file) is dead weight: it documents a
  /// violation that no longer exists and would silently swallow a future
  /// unrelated one. Dead markers are findings so the audit trail stays
  /// honest.
  void CheckStaleSuppressions() {
    for (const Marker& marker : suppressions_.markers) {
      if (marker.used) continue;
      findings_.push_back(
          {std::string(rel_path_), marker.line_no,
           std::string(kStaleSuppression),
           "suppression of '" + marker.rule + "' no longer matches a " +
               (marker.file_wide ? "finding in this file"
                                 : "finding on this line") +
               "; remove the stale allow" +
               (marker.file_wide ? "-file" : "") + "() marker"});
    }
  }

  void CheckSimWallclock(const std::string& code, int line_no) {
    if (!InSimulationCode(rel_path_)) return;
    for (std::string_view clock :
         {"system_clock", "steady_clock", "high_resolution_clock"}) {
      if (MatchesWord(code, clock)) {
        Report(kSimWallclock, line_no,
               std::string(clock) +
                   " in simulation code; route timing through the virtual "
                   "clock");
        return;
      }
    }
    for (std::string_view fn : {"rand", "srand"}) {
      if (MatchesWord(code, fn, /*then_call=*/true)) {
        Report(kSimWallclock, line_no,
               std::string(fn) +
                   "() in simulation code; use the seeded kvscale::Rng");
        return;
      }
    }
  }

  void CheckDiscardedStatus(const std::string& code, int line_no) {
    constexpr std::string_view kCast = "(void)";
    size_t pos = 0;
    while ((pos = code.find(kCast, pos)) != std::string::npos) {
      // `foo(void)` is a parameter list, not a cast.
      const bool is_cast = pos == 0 || !IsIdentChar(code[pos - 1]);
      const std::string_view rest =
          std::string_view(code).substr(pos + kCast.size());
      if (is_cast) {
        // A discarded *call* has a '(' before the statement ends.
        const size_t semi = rest.find(';');
        const size_t paren = rest.find('(');
        if (paren != std::string_view::npos &&
            (semi == std::string_view::npos || paren < semi)) {
          Report(kDiscardedStatus, line_no,
                 "(void) discards a call result; handle the Status/Result "
                 "or justify the discard");
          return;
        }
      }
      pos += kCast.size();
    }
  }

  void CheckStdoutInLib(const std::string& code, int line_no) {
    if (!InLibraryCode(rel_path_)) return;
    if (MatchesWord(code, "std::cout")) {
      Report(kStdoutInLib, line_no,
             "std::cout in library code; return strings or take an ostream");
      return;
    }
    for (std::string_view fn : {"printf", "puts"}) {
      if (MatchesWord(code, fn, /*then_call=*/true)) {
        Report(kStdoutInLib, line_no,
               std::string(fn) +
                   "() writes to stdout from library code; return strings "
                   "or take an ostream");
        return;
      }
    }
  }

  void CheckRawMutex(const std::string& code, int line_no) {
    for (std::string_view primitive :
         {"std::mutex", "std::timed_mutex", "std::recursive_mutex",
          "std::shared_mutex", "std::shared_timed_mutex",
          "std::condition_variable", "std::condition_variable_any",
          "std::lock_guard", "std::unique_lock", "std::shared_lock",
          "std::scoped_lock"}) {
      if (MatchesWord(code, primitive)) {
        Report(kRawMutex, line_no,
               std::string(primitive) +
                   " outside thread_annotations.hpp; use the annotated "
                   "Mutex/MutexLock/CondVar wrappers");
        return;
      }
    }
    const std::string_view trimmed = Trim(code);
    if (StartsWith(trimmed, "#")) {
      for (std::string_view header :
           {"<mutex>", "<shared_mutex>", "<condition_variable>"}) {
        if (trimmed.find(header) != std::string_view::npos) {
          Report(kRawMutex, line_no,
                 "include of " + std::string(header) +
                     " outside thread_annotations.hpp");
          return;
        }
      }
    }
  }

  /// A name is well-formed when it is [a-z0-9_.], contains at least one
  /// dot (a namespace), starts no segment with a dot, and has no empty
  /// segments. A trailing dot is allowed only for `"prefix." + suffix`
  /// concatenations.
  static bool ValidMetricName(std::string_view name, bool concatenated) {
    if (name.empty() || name.front() == '.') return false;
    if (name.back() == '.' && !concatenated) return false;
    bool has_dot = false;
    char prev = '\0';
    for (const char c : name) {
      const bool allowed = (c >= 'a' && c <= 'z') ||
                           (c >= '0' && c <= '9') || c == '_' || c == '.';
      if (!allowed) return false;
      if (c == '.') {
        if (prev == '.') return false;
        has_dot = true;
      }
      prev = c;
    }
    return has_dot;
  }

  /// Dashboards and the time-series exporter group instruments by their
  /// dotted prefix, so every literal registry name must carry one. The
  /// code view locates the Get*( call (comments/strings blanked); the
  /// literal itself is read from the raw view at the same columns.
  void CheckMetricName(const std::string& code, const std::string& raw,
                       int line_no) {
    for (std::string_view method :
         {"GetCounter", "GetGauge", "GetHistogram"}) {
      size_t pos = 0;
      while ((pos = code.find(method, pos)) != std::string::npos) {
        const size_t end = pos + method.size();
        const bool left_ok = pos == 0 || !IsIdentChar(code[pos - 1]);
        pos = end;
        if (!left_ok || (end < code.size() && IsIdentChar(code[end]))) {
          continue;
        }
        size_t p = end;
        while (p < code.size() && (code[p] == ' ' || code[p] == '\t')) ++p;
        if (p >= code.size() || code[p] != '(') continue;
        ++p;
        // Skip whitespace in the *raw* view: the code view blanks the
        // literal to spaces, so skipping there would jump past it.
        while (p < raw.size() && (raw[p] == ' ' || raw[p] == '\t')) ++p;
        // Only literal names are lintable; a variable (or a literal
        // continuing on the next line) is skipped.
        if (p >= raw.size() || raw[p] != '"') continue;
        const size_t close = raw.find('"', p + 1);
        if (close == std::string::npos) continue;
        const std::string_view name =
            std::string_view(raw).substr(p + 1, close - p - 1);
        size_t after = close + 1;
        while (after < raw.size() &&
               (raw[after] == ' ' || raw[after] == '\t')) {
          ++after;
        }
        const bool concatenated = after < raw.size() && raw[after] == '+';
        if (!ValidMetricName(name, concatenated)) {
          Report(kMetricName, line_no,
                 "metric name \"" + std::string(name) +
                     "\" must be dot-namespaced lowercase "
                     "(e.g. cluster.read.errors)");
        }
        pos = close;
      }
    }
  }

  void CheckIncludeOrder() {
    const std::string own = OwnHeaderName(rel_path_);
    if (own.empty()) return;
    const std::vector<IncludeDirective> includes = ParseIncludes(view_);
    for (size_t i = 0; i < includes.size(); ++i) {
      const IncludeDirective& inc = includes[i];
      if (!inc.quoted) continue;
      const size_t slash = inc.target.rfind('/');
      const std::string base = slash == std::string::npos
                                   ? inc.target
                                   : inc.target.substr(slash + 1);
      if (base != own) continue;
      if (i != 0) {
        Report(kIncludeOrder, inc.line_no,
               "own header \"" + inc.target +
                   "\" must be the first include of this .cpp");
      }
      return;  // only the first own-header include matters
    }
  }

  std::string_view rel_path_;
  const FileView& view_;
  Suppressions suppressions_;
  std::vector<Finding> findings_;
};

}  // namespace

std::vector<std::string_view> RuleIds() {
  std::vector<std::string_view> ids;
  ids.reserve(kRuleCatalogue.size());
  for (const auto& [id, description] : kRuleCatalogue) ids.push_back(id);
  return ids;
}

std::string_view RuleDescription(std::string_view rule) {
  for (const auto& [id, description] : kRuleCatalogue) {
    if (id == rule) return description;
  }
  return {};
}

std::vector<Finding> LintFileContent(std::string_view rel_path,
                                     std::string_view content) {
  const FileView view = BuildView(content);
  return FileLinter(rel_path, view).Run();
}

std::vector<Finding> LintTree(const std::filesystem::path& root) {
  // Fixtures violate on purpose; the lint *tests* cover them.
  const std::vector<std::string> rel_paths = ListSourceFiles(
      root, {"src", "bench", "tests", "tools", "examples"},
      {"tests/lint_fixtures/", "tests/analysis_fixtures/"});
  std::vector<Finding> findings;
  for (const std::string& rel : rel_paths) {
    std::vector<Finding> file_findings =
        LintFileContent(rel, ReadFileOrEmpty(root / rel));
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

std::string FormatFinding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.rule + "] " + finding.message;
}

}  // namespace kvscale::lint
