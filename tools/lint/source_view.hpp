// Comment/string-aware C++ source scanning shared by the project linter
// (lint_rules.cpp) and the cross-file static analyzer (analysis/).
//
// BuildView splits a file into three parallel line sets so every
// text-level check can pick the view it needs: `raw` (verbatim), `code`
// (comments, string literals, and char literals blanked to spaces, so
// prose mentioning std::mutex never trips a rule), and `comment` (only
// comment text survives, so suppression markers inside string literals
// stay inert). Columns line up across the three views, which lets a
// check locate a token in the code view and read the literal at the
// same columns from the raw view.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace kvscale::lint {

/// Parallel per-line views of one file (see file comment).
struct FileView {
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<std::string> comment;
};

/// Builds the three views. Lines are split on '\n'; a file that does not
/// end in a newline still yields its final line.
FileView BuildView(std::string_view content);

/// True when `c` may appear in a C++ identifier.
bool IsIdentChar(char c);

/// Strips spaces/tabs (and trailing '\r') from both ends.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);

/// True when `pattern` occurs in `line` delimited by non-identifier
/// characters on both sides. When `then_call` is set, the match must be
/// followed (after optional spaces) by '('.
bool MatchesWord(std::string_view line, std::string_view pattern,
                 bool then_call = false);

/// Reads a file into a string ("" when unreadable).
std::string ReadFileOrEmpty(const std::filesystem::path& path);

/// Walks the named top-level directories under `root` and returns the
/// repo-relative (forward-slash) paths of every .hpp/.cpp/.h file,
/// sorted. Paths containing any of `skip_fragments` are excluded.
std::vector<std::string> ListSourceFiles(
    const std::filesystem::path& root, std::vector<std::string_view> dirs,
    std::vector<std::string_view> skip_fragments = {});

}  // namespace kvscale::lint
