file(REMOVE_RECURSE
  "CMakeFiles/fig11_master_limit.dir/fig11_master_limit.cpp.o"
  "CMakeFiles/fig11_master_limit.dir/fig11_master_limit.cpp.o.d"
  "fig11_master_limit"
  "fig11_master_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_master_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
