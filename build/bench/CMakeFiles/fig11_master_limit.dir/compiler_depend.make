# Empty compiler generated dependencies file for fig11_master_limit.
# This may be replaced when dependencies are built.
