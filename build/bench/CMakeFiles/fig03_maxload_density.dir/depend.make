# Empty dependencies file for fig03_maxload_density.
# This may be replaced when dependencies are built.
