file(REMOVE_RECURSE
  "CMakeFiles/fig03_maxload_density.dir/fig03_maxload_density.cpp.o"
  "CMakeFiles/fig03_maxload_density.dir/fig03_maxload_density.cpp.o.d"
  "fig03_maxload_density"
  "fig03_maxload_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_maxload_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
