file(REMOVE_RECURSE
  "CMakeFiles/fig05_optimized_master.dir/fig05_optimized_master.cpp.o"
  "CMakeFiles/fig05_optimized_master.dir/fig05_optimized_master.cpp.o.d"
  "fig05_optimized_master"
  "fig05_optimized_master.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_optimized_master.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
