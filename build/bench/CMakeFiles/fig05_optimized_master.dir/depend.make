# Empty dependencies file for fig05_optimized_master.
# This may be replaced when dependencies are built.
