file(REMOVE_RECURSE
  "CMakeFiles/micro_ring.dir/micro_ring.cpp.o"
  "CMakeFiles/micro_ring.dir/micro_ring.cpp.o.d"
  "micro_ring"
  "micro_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
