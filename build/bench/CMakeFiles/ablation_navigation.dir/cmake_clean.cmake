file(REMOVE_RECURSE
  "CMakeFiles/ablation_navigation.dir/ablation_navigation.cpp.o"
  "CMakeFiles/ablation_navigation.dir/ablation_navigation.cpp.o.d"
  "ablation_navigation"
  "ablation_navigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_navigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
