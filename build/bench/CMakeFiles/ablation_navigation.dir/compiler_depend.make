# Empty compiler generated dependencies file for ablation_navigation.
# This may be replaced when dependencies are built.
