file(REMOVE_RECURSE
  "CMakeFiles/ablation_master_arch.dir/ablation_master_arch.cpp.o"
  "CMakeFiles/ablation_master_arch.dir/ablation_master_arch.cpp.o.d"
  "ablation_master_arch"
  "ablation_master_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_master_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
