# Empty dependencies file for ablation_master_arch.
# This may be replaced when dependencies are built.
