# Empty compiler generated dependencies file for ablation_skewed_rows.
# This may be replaced when dependencies are built.
