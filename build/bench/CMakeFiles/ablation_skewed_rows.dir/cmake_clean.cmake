file(REMOVE_RECURSE
  "CMakeFiles/ablation_skewed_rows.dir/ablation_skewed_rows.cpp.o"
  "CMakeFiles/ablation_skewed_rows.dir/ablation_skewed_rows.cpp.o.d"
  "ablation_skewed_rows"
  "ablation_skewed_rows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_skewed_rows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
