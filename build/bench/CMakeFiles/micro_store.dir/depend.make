# Empty dependencies file for micro_store.
# This may be replaced when dependencies are built.
