file(REMOVE_RECURSE
  "CMakeFiles/table_intro_imbalance.dir/table_intro_imbalance.cpp.o"
  "CMakeFiles/table_intro_imbalance.dir/table_intro_imbalance.cpp.o.d"
  "table_intro_imbalance"
  "table_intro_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_intro_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
