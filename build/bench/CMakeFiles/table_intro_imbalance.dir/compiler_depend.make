# Empty compiler generated dependencies file for table_intro_imbalance.
# This may be replaced when dependencies are built.
