file(REMOVE_RECURSE
  "CMakeFiles/fig02_ops_vs_time.dir/fig02_ops_vs_time.cpp.o"
  "CMakeFiles/fig02_ops_vs_time.dir/fig02_ops_vs_time.cpp.o.d"
  "fig02_ops_vs_time"
  "fig02_ops_vs_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_ops_vs_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
