# Empty compiler generated dependencies file for fig02_ops_vs_time.
# This may be replaced when dependencies are built.
