
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig07_parallel_speedup.cpp" "bench/CMakeFiles/fig07_parallel_speedup.dir/fig07_parallel_speedup.cpp.o" "gcc" "bench/CMakeFiles/fig07_parallel_speedup.dir/fig07_parallel_speedup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/kvscale_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/kvscale_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/kvscale_net.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/kvscale_model.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/kvscale_store.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/kvscale_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/kvscale_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/kvscale_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/kvscale_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kvscale_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kvscale_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
