# Empty dependencies file for fig07_parallel_speedup.
# This may be replaced when dependencies are built.
