# Empty dependencies file for fig06_rowsize_response.
# This may be replaced when dependencies are built.
