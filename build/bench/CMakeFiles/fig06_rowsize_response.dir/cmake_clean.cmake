file(REMOVE_RECURSE
  "CMakeFiles/fig06_rowsize_response.dir/fig06_rowsize_response.cpp.o"
  "CMakeFiles/fig06_rowsize_response.dir/fig06_rowsize_response.cpp.o.d"
  "fig06_rowsize_response"
  "fig06_rowsize_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_rowsize_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
