file(REMOVE_RECURSE
  "CMakeFiles/ablation_devices.dir/ablation_devices.cpp.o"
  "CMakeFiles/ablation_devices.dir/ablation_devices.cpp.o.d"
  "ablation_devices"
  "ablation_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
