file(REMOVE_RECURSE
  "CMakeFiles/fig04_stage_profiles.dir/fig04_stage_profiles.cpp.o"
  "CMakeFiles/fig04_stage_profiles.dir/fig04_stage_profiles.cpp.o.d"
  "fig04_stage_profiles"
  "fig04_stage_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_stage_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
