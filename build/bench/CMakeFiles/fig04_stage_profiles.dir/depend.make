# Empty dependencies file for fig04_stage_profiles.
# This may be replaced when dependencies are built.
