file(REMOVE_RECURSE
  "CMakeFiles/fig08_model_validation.dir/fig08_model_validation.cpp.o"
  "CMakeFiles/fig08_model_validation.dir/fig08_model_validation.cpp.o.d"
  "fig08_model_validation"
  "fig08_model_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_model_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
