file(REMOVE_RECURSE
  "CMakeFiles/fig09_optimal_rows.dir/fig09_optimal_rows.cpp.o"
  "CMakeFiles/fig09_optimal_rows.dir/fig09_optimal_rows.cpp.o.d"
  "fig09_optimal_rows"
  "fig09_optimal_rows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_optimal_rows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
