# Empty compiler generated dependencies file for fig09_optimal_rows.
# This may be replaced when dependencies are built.
