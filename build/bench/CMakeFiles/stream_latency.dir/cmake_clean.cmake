file(REMOVE_RECURSE
  "CMakeFiles/stream_latency.dir/stream_latency.cpp.o"
  "CMakeFiles/stream_latency.dir/stream_latency.cpp.o.d"
  "stream_latency"
  "stream_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
