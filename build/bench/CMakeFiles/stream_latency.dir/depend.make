# Empty dependencies file for stream_latency.
# This may be replaced when dependencies are built.
