file(REMOVE_RECURSE
  "CMakeFiles/fig01_datamodel_scalability.dir/fig01_datamodel_scalability.cpp.o"
  "CMakeFiles/fig01_datamodel_scalability.dir/fig01_datamodel_scalability.cpp.o.d"
  "fig01_datamodel_scalability"
  "fig01_datamodel_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_datamodel_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
