# Empty dependencies file for fig01_datamodel_scalability.
# This may be replaced when dependencies are built.
