# Empty compiler generated dependencies file for fig10_optimal_vs_ideal.
# This may be replaced when dependencies are built.
