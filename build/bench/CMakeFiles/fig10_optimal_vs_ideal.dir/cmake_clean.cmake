file(REMOVE_RECURSE
  "CMakeFiles/fig10_optimal_vs_ideal.dir/fig10_optimal_vs_ideal.cpp.o"
  "CMakeFiles/fig10_optimal_vs_ideal.dir/fig10_optimal_vs_ideal.cpp.o.d"
  "fig10_optimal_vs_ideal"
  "fig10_optimal_vs_ideal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_optimal_vs_ideal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
