file(REMOVE_RECURSE
  "CMakeFiles/phonebook_design.dir/phonebook_design.cpp.o"
  "CMakeFiles/phonebook_design.dir/phonebook_design.cpp.o.d"
  "phonebook_design"
  "phonebook_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phonebook_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
