# Empty compiler generated dependencies file for phonebook_design.
# This may be replaced when dependencies are built.
