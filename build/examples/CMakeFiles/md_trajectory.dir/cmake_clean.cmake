file(REMOVE_RECURSE
  "CMakeFiles/md_trajectory.dir/md_trajectory.cpp.o"
  "CMakeFiles/md_trajectory.dir/md_trajectory.cpp.o.d"
  "md_trajectory"
  "md_trajectory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
