# Empty compiler generated dependencies file for md_trajectory.
# This may be replaced when dependencies are built.
