# Empty compiler generated dependencies file for alya_pipeline.
# This may be replaced when dependencies are built.
