file(REMOVE_RECURSE
  "CMakeFiles/alya_pipeline.dir/alya_pipeline.cpp.o"
  "CMakeFiles/alya_pipeline.dir/alya_pipeline.cpp.o.d"
  "alya_pipeline"
  "alya_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alya_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
