# Empty compiler generated dependencies file for kvscale_cli.
# This may be replaced when dependencies are built.
