file(REMOVE_RECURSE
  "CMakeFiles/kvscale_cli.dir/kvscale_cli.cpp.o"
  "CMakeFiles/kvscale_cli.dir/kvscale_cli.cpp.o.d"
  "kvscale"
  "kvscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvscale_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
