# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/hash_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/wire_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/store_concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/store_model_test[1]_include.cmake")
include("/root/repo/build/tests/commit_log_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/in_process_cluster_test[1]_include.cmake")
include("/root/repo/build/tests/replicated_sim_test[1]_include.cmake")
include("/root/repo/build/tests/navigational_sim_test[1]_include.cmake")
include("/root/repo/build/tests/stream_sim_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
