file(REMOVE_RECURSE
  "CMakeFiles/replicated_sim_test.dir/replicated_sim_test.cpp.o"
  "CMakeFiles/replicated_sim_test.dir/replicated_sim_test.cpp.o.d"
  "replicated_sim_test"
  "replicated_sim_test.pdb"
  "replicated_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicated_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
