# Empty dependencies file for replicated_sim_test.
# This may be replaced when dependencies are built.
