# Empty dependencies file for stream_sim_test.
# This may be replaced when dependencies are built.
