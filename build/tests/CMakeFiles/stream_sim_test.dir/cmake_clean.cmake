file(REMOVE_RECURSE
  "CMakeFiles/stream_sim_test.dir/stream_sim_test.cpp.o"
  "CMakeFiles/stream_sim_test.dir/stream_sim_test.cpp.o.d"
  "stream_sim_test"
  "stream_sim_test.pdb"
  "stream_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
