# Empty dependencies file for in_process_cluster_test.
# This may be replaced when dependencies are built.
