file(REMOVE_RECURSE
  "CMakeFiles/in_process_cluster_test.dir/in_process_cluster_test.cpp.o"
  "CMakeFiles/in_process_cluster_test.dir/in_process_cluster_test.cpp.o.d"
  "in_process_cluster_test"
  "in_process_cluster_test.pdb"
  "in_process_cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/in_process_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
