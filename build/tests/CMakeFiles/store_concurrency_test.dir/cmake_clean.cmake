file(REMOVE_RECURSE
  "CMakeFiles/store_concurrency_test.dir/store_concurrency_test.cpp.o"
  "CMakeFiles/store_concurrency_test.dir/store_concurrency_test.cpp.o.d"
  "store_concurrency_test"
  "store_concurrency_test.pdb"
  "store_concurrency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
