# Empty compiler generated dependencies file for store_concurrency_test.
# This may be replaced when dependencies are built.
