file(REMOVE_RECURSE
  "CMakeFiles/commit_log_test.dir/commit_log_test.cpp.o"
  "CMakeFiles/commit_log_test.dir/commit_log_test.cpp.o.d"
  "commit_log_test"
  "commit_log_test.pdb"
  "commit_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commit_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
