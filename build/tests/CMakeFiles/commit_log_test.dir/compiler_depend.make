# Empty compiler generated dependencies file for commit_log_test.
# This may be replaced when dependencies are built.
