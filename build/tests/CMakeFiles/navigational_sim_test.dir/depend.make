# Empty dependencies file for navigational_sim_test.
# This may be replaced when dependencies are built.
