file(REMOVE_RECURSE
  "CMakeFiles/navigational_sim_test.dir/navigational_sim_test.cpp.o"
  "CMakeFiles/navigational_sim_test.dir/navigational_sim_test.cpp.o.d"
  "navigational_sim_test"
  "navigational_sim_test.pdb"
  "navigational_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/navigational_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
