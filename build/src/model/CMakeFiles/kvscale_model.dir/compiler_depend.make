# Empty compiler generated dependencies file for kvscale_model.
# This may be replaced when dependencies are built.
