file(REMOVE_RECURSE
  "libkvscale_model.a"
)
