
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/architecture.cpp" "src/model/CMakeFiles/kvscale_model.dir/architecture.cpp.o" "gcc" "src/model/CMakeFiles/kvscale_model.dir/architecture.cpp.o.d"
  "/root/repo/src/model/balls_into_bins.cpp" "src/model/CMakeFiles/kvscale_model.dir/balls_into_bins.cpp.o" "gcc" "src/model/CMakeFiles/kvscale_model.dir/balls_into_bins.cpp.o.d"
  "/root/repo/src/model/calibrator.cpp" "src/model/CMakeFiles/kvscale_model.dir/calibrator.cpp.o" "gcc" "src/model/CMakeFiles/kvscale_model.dir/calibrator.cpp.o.d"
  "/root/repo/src/model/db_model.cpp" "src/model/CMakeFiles/kvscale_model.dir/db_model.cpp.o" "gcc" "src/model/CMakeFiles/kvscale_model.dir/db_model.cpp.o.d"
  "/root/repo/src/model/device_model.cpp" "src/model/CMakeFiles/kvscale_model.dir/device_model.cpp.o" "gcc" "src/model/CMakeFiles/kvscale_model.dir/device_model.cpp.o.d"
  "/root/repo/src/model/master_model.cpp" "src/model/CMakeFiles/kvscale_model.dir/master_model.cpp.o" "gcc" "src/model/CMakeFiles/kvscale_model.dir/master_model.cpp.o.d"
  "/root/repo/src/model/monte_carlo.cpp" "src/model/CMakeFiles/kvscale_model.dir/monte_carlo.cpp.o" "gcc" "src/model/CMakeFiles/kvscale_model.dir/monte_carlo.cpp.o.d"
  "/root/repo/src/model/optimizer.cpp" "src/model/CMakeFiles/kvscale_model.dir/optimizer.cpp.o" "gcc" "src/model/CMakeFiles/kvscale_model.dir/optimizer.cpp.o.d"
  "/root/repo/src/model/parallelism_model.cpp" "src/model/CMakeFiles/kvscale_model.dir/parallelism_model.cpp.o" "gcc" "src/model/CMakeFiles/kvscale_model.dir/parallelism_model.cpp.o.d"
  "/root/repo/src/model/query_model.cpp" "src/model/CMakeFiles/kvscale_model.dir/query_model.cpp.o" "gcc" "src/model/CMakeFiles/kvscale_model.dir/query_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kvscale_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/kvscale_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/kvscale_store.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/kvscale_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/kvscale_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
