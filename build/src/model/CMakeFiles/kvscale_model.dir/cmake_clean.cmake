file(REMOVE_RECURSE
  "CMakeFiles/kvscale_model.dir/architecture.cpp.o"
  "CMakeFiles/kvscale_model.dir/architecture.cpp.o.d"
  "CMakeFiles/kvscale_model.dir/balls_into_bins.cpp.o"
  "CMakeFiles/kvscale_model.dir/balls_into_bins.cpp.o.d"
  "CMakeFiles/kvscale_model.dir/calibrator.cpp.o"
  "CMakeFiles/kvscale_model.dir/calibrator.cpp.o.d"
  "CMakeFiles/kvscale_model.dir/db_model.cpp.o"
  "CMakeFiles/kvscale_model.dir/db_model.cpp.o.d"
  "CMakeFiles/kvscale_model.dir/device_model.cpp.o"
  "CMakeFiles/kvscale_model.dir/device_model.cpp.o.d"
  "CMakeFiles/kvscale_model.dir/master_model.cpp.o"
  "CMakeFiles/kvscale_model.dir/master_model.cpp.o.d"
  "CMakeFiles/kvscale_model.dir/monte_carlo.cpp.o"
  "CMakeFiles/kvscale_model.dir/monte_carlo.cpp.o.d"
  "CMakeFiles/kvscale_model.dir/optimizer.cpp.o"
  "CMakeFiles/kvscale_model.dir/optimizer.cpp.o.d"
  "CMakeFiles/kvscale_model.dir/parallelism_model.cpp.o"
  "CMakeFiles/kvscale_model.dir/parallelism_model.cpp.o.d"
  "CMakeFiles/kvscale_model.dir/query_model.cpp.o"
  "CMakeFiles/kvscale_model.dir/query_model.cpp.o.d"
  "libkvscale_model.a"
  "libkvscale_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvscale_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
