file(REMOVE_RECURSE
  "libkvscale_wire.a"
)
