file(REMOVE_RECURSE
  "CMakeFiles/kvscale_wire.dir/buffer.cpp.o"
  "CMakeFiles/kvscale_wire.dir/buffer.cpp.o.d"
  "CMakeFiles/kvscale_wire.dir/messages.cpp.o"
  "CMakeFiles/kvscale_wire.dir/messages.cpp.o.d"
  "CMakeFiles/kvscale_wire.dir/serializer_model.cpp.o"
  "CMakeFiles/kvscale_wire.dir/serializer_model.cpp.o.d"
  "libkvscale_wire.a"
  "libkvscale_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvscale_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
