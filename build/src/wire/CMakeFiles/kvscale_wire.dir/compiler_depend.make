# Empty compiler generated dependencies file for kvscale_wire.
# This may be replaced when dependencies are built.
