file(REMOVE_RECURSE
  "libkvscale_net.a"
)
