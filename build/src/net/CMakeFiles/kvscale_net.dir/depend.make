# Empty dependencies file for kvscale_net.
# This may be replaced when dependencies are built.
