# Empty compiler generated dependencies file for kvscale_net.
# This may be replaced when dependencies are built.
