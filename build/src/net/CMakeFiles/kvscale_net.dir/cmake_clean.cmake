file(REMOVE_RECURSE
  "CMakeFiles/kvscale_net.dir/network.cpp.o"
  "CMakeFiles/kvscale_net.dir/network.cpp.o.d"
  "libkvscale_net.a"
  "libkvscale_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvscale_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
