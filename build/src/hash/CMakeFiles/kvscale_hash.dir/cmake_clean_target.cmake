file(REMOVE_RECURSE
  "libkvscale_hash.a"
)
