
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hash/hash.cpp" "src/hash/CMakeFiles/kvscale_hash.dir/hash.cpp.o" "gcc" "src/hash/CMakeFiles/kvscale_hash.dir/hash.cpp.o.d"
  "/root/repo/src/hash/token_ring.cpp" "src/hash/CMakeFiles/kvscale_hash.dir/token_ring.cpp.o" "gcc" "src/hash/CMakeFiles/kvscale_hash.dir/token_ring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kvscale_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
