file(REMOVE_RECURSE
  "CMakeFiles/kvscale_hash.dir/hash.cpp.o"
  "CMakeFiles/kvscale_hash.dir/hash.cpp.o.d"
  "CMakeFiles/kvscale_hash.dir/token_ring.cpp.o"
  "CMakeFiles/kvscale_hash.dir/token_ring.cpp.o.d"
  "libkvscale_hash.a"
  "libkvscale_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvscale_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
