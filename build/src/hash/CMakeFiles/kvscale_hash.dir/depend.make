# Empty dependencies file for kvscale_hash.
# This may be replaced when dependencies are built.
