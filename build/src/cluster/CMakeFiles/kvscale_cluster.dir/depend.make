# Empty dependencies file for kvscale_cluster.
# This may be replaced when dependencies are built.
