file(REMOVE_RECURSE
  "libkvscale_cluster.a"
)
