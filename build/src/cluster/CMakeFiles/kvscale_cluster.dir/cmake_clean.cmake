file(REMOVE_RECURSE
  "CMakeFiles/kvscale_cluster.dir/cluster_sim.cpp.o"
  "CMakeFiles/kvscale_cluster.dir/cluster_sim.cpp.o.d"
  "CMakeFiles/kvscale_cluster.dir/in_process_cluster.cpp.o"
  "CMakeFiles/kvscale_cluster.dir/in_process_cluster.cpp.o.d"
  "CMakeFiles/kvscale_cluster.dir/navigational_sim.cpp.o"
  "CMakeFiles/kvscale_cluster.dir/navigational_sim.cpp.o.d"
  "CMakeFiles/kvscale_cluster.dir/placement.cpp.o"
  "CMakeFiles/kvscale_cluster.dir/placement.cpp.o.d"
  "CMakeFiles/kvscale_cluster.dir/replicated_sim.cpp.o"
  "CMakeFiles/kvscale_cluster.dir/replicated_sim.cpp.o.d"
  "CMakeFiles/kvscale_cluster.dir/stream_sim.cpp.o"
  "CMakeFiles/kvscale_cluster.dir/stream_sim.cpp.o.d"
  "libkvscale_cluster.a"
  "libkvscale_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvscale_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
