
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/csv_writer.cpp" "src/trace/CMakeFiles/kvscale_trace.dir/csv_writer.cpp.o" "gcc" "src/trace/CMakeFiles/kvscale_trace.dir/csv_writer.cpp.o.d"
  "/root/repo/src/trace/gantt.cpp" "src/trace/CMakeFiles/kvscale_trace.dir/gantt.cpp.o" "gcc" "src/trace/CMakeFiles/kvscale_trace.dir/gantt.cpp.o.d"
  "/root/repo/src/trace/metrics.cpp" "src/trace/CMakeFiles/kvscale_trace.dir/metrics.cpp.o" "gcc" "src/trace/CMakeFiles/kvscale_trace.dir/metrics.cpp.o.d"
  "/root/repo/src/trace/stage_trace.cpp" "src/trace/CMakeFiles/kvscale_trace.dir/stage_trace.cpp.o" "gcc" "src/trace/CMakeFiles/kvscale_trace.dir/stage_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kvscale_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/kvscale_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kvscale_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
