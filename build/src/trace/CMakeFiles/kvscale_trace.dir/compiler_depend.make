# Empty compiler generated dependencies file for kvscale_trace.
# This may be replaced when dependencies are built.
