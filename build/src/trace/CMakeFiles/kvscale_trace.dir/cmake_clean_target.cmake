file(REMOVE_RECURSE
  "libkvscale_trace.a"
)
