file(REMOVE_RECURSE
  "CMakeFiles/kvscale_trace.dir/csv_writer.cpp.o"
  "CMakeFiles/kvscale_trace.dir/csv_writer.cpp.o.d"
  "CMakeFiles/kvscale_trace.dir/gantt.cpp.o"
  "CMakeFiles/kvscale_trace.dir/gantt.cpp.o.d"
  "CMakeFiles/kvscale_trace.dir/metrics.cpp.o"
  "CMakeFiles/kvscale_trace.dir/metrics.cpp.o.d"
  "CMakeFiles/kvscale_trace.dir/stage_trace.cpp.o"
  "CMakeFiles/kvscale_trace.dir/stage_trace.cpp.o.d"
  "libkvscale_trace.a"
  "libkvscale_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvscale_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
