
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/alya.cpp" "src/workload/CMakeFiles/kvscale_workload.dir/alya.cpp.o" "gcc" "src/workload/CMakeFiles/kvscale_workload.dir/alya.cpp.o.d"
  "/root/repo/src/workload/d8tree.cpp" "src/workload/CMakeFiles/kvscale_workload.dir/d8tree.cpp.o" "gcc" "src/workload/CMakeFiles/kvscale_workload.dir/d8tree.cpp.o.d"
  "/root/repo/src/workload/granularity.cpp" "src/workload/CMakeFiles/kvscale_workload.dir/granularity.cpp.o" "gcc" "src/workload/CMakeFiles/kvscale_workload.dir/granularity.cpp.o.d"
  "/root/repo/src/workload/phonebook.cpp" "src/workload/CMakeFiles/kvscale_workload.dir/phonebook.cpp.o" "gcc" "src/workload/CMakeFiles/kvscale_workload.dir/phonebook.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kvscale_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/kvscale_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/kvscale_store.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/kvscale_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/kvscale_model.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/kvscale_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/kvscale_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/kvscale_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/kvscale_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kvscale_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
