file(REMOVE_RECURSE
  "libkvscale_workload.a"
)
