file(REMOVE_RECURSE
  "CMakeFiles/kvscale_workload.dir/alya.cpp.o"
  "CMakeFiles/kvscale_workload.dir/alya.cpp.o.d"
  "CMakeFiles/kvscale_workload.dir/d8tree.cpp.o"
  "CMakeFiles/kvscale_workload.dir/d8tree.cpp.o.d"
  "CMakeFiles/kvscale_workload.dir/granularity.cpp.o"
  "CMakeFiles/kvscale_workload.dir/granularity.cpp.o.d"
  "CMakeFiles/kvscale_workload.dir/phonebook.cpp.o"
  "CMakeFiles/kvscale_workload.dir/phonebook.cpp.o.d"
  "libkvscale_workload.a"
  "libkvscale_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvscale_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
