# Empty compiler generated dependencies file for kvscale_workload.
# This may be replaced when dependencies are built.
