
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/block_cache.cpp" "src/store/CMakeFiles/kvscale_store.dir/block_cache.cpp.o" "gcc" "src/store/CMakeFiles/kvscale_store.dir/block_cache.cpp.o.d"
  "/root/repo/src/store/bloom.cpp" "src/store/CMakeFiles/kvscale_store.dir/bloom.cpp.o" "gcc" "src/store/CMakeFiles/kvscale_store.dir/bloom.cpp.o.d"
  "/root/repo/src/store/commit_log.cpp" "src/store/CMakeFiles/kvscale_store.dir/commit_log.cpp.o" "gcc" "src/store/CMakeFiles/kvscale_store.dir/commit_log.cpp.o.d"
  "/root/repo/src/store/local_store.cpp" "src/store/CMakeFiles/kvscale_store.dir/local_store.cpp.o" "gcc" "src/store/CMakeFiles/kvscale_store.dir/local_store.cpp.o.d"
  "/root/repo/src/store/memtable.cpp" "src/store/CMakeFiles/kvscale_store.dir/memtable.cpp.o" "gcc" "src/store/CMakeFiles/kvscale_store.dir/memtable.cpp.o.d"
  "/root/repo/src/store/row.cpp" "src/store/CMakeFiles/kvscale_store.dir/row.cpp.o" "gcc" "src/store/CMakeFiles/kvscale_store.dir/row.cpp.o.d"
  "/root/repo/src/store/segment.cpp" "src/store/CMakeFiles/kvscale_store.dir/segment.cpp.o" "gcc" "src/store/CMakeFiles/kvscale_store.dir/segment.cpp.o.d"
  "/root/repo/src/store/table.cpp" "src/store/CMakeFiles/kvscale_store.dir/table.cpp.o" "gcc" "src/store/CMakeFiles/kvscale_store.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kvscale_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/kvscale_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/kvscale_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
