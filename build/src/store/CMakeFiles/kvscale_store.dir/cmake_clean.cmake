file(REMOVE_RECURSE
  "CMakeFiles/kvscale_store.dir/block_cache.cpp.o"
  "CMakeFiles/kvscale_store.dir/block_cache.cpp.o.d"
  "CMakeFiles/kvscale_store.dir/bloom.cpp.o"
  "CMakeFiles/kvscale_store.dir/bloom.cpp.o.d"
  "CMakeFiles/kvscale_store.dir/commit_log.cpp.o"
  "CMakeFiles/kvscale_store.dir/commit_log.cpp.o.d"
  "CMakeFiles/kvscale_store.dir/local_store.cpp.o"
  "CMakeFiles/kvscale_store.dir/local_store.cpp.o.d"
  "CMakeFiles/kvscale_store.dir/memtable.cpp.o"
  "CMakeFiles/kvscale_store.dir/memtable.cpp.o.d"
  "CMakeFiles/kvscale_store.dir/row.cpp.o"
  "CMakeFiles/kvscale_store.dir/row.cpp.o.d"
  "CMakeFiles/kvscale_store.dir/segment.cpp.o"
  "CMakeFiles/kvscale_store.dir/segment.cpp.o.d"
  "CMakeFiles/kvscale_store.dir/table.cpp.o"
  "CMakeFiles/kvscale_store.dir/table.cpp.o.d"
  "libkvscale_store.a"
  "libkvscale_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvscale_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
