file(REMOVE_RECURSE
  "libkvscale_store.a"
)
