# Empty compiler generated dependencies file for kvscale_store.
# This may be replaced when dependencies are built.
