file(REMOVE_RECURSE
  "libkvscale_stats.a"
)
