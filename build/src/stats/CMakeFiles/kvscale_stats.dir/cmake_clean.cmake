file(REMOVE_RECURSE
  "CMakeFiles/kvscale_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/kvscale_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/kvscale_stats.dir/histogram.cpp.o"
  "CMakeFiles/kvscale_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/kvscale_stats.dir/regression.cpp.o"
  "CMakeFiles/kvscale_stats.dir/regression.cpp.o.d"
  "CMakeFiles/kvscale_stats.dir/sampling.cpp.o"
  "CMakeFiles/kvscale_stats.dir/sampling.cpp.o.d"
  "CMakeFiles/kvscale_stats.dir/summary.cpp.o"
  "CMakeFiles/kvscale_stats.dir/summary.cpp.o.d"
  "CMakeFiles/kvscale_stats.dir/zipf.cpp.o"
  "CMakeFiles/kvscale_stats.dir/zipf.cpp.o.d"
  "libkvscale_stats.a"
  "libkvscale_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvscale_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
