# Empty compiler generated dependencies file for kvscale_stats.
# This may be replaced when dependencies are built.
