file(REMOVE_RECURSE
  "CMakeFiles/kvscale_sim.dir/resource.cpp.o"
  "CMakeFiles/kvscale_sim.dir/resource.cpp.o.d"
  "CMakeFiles/kvscale_sim.dir/simulator.cpp.o"
  "CMakeFiles/kvscale_sim.dir/simulator.cpp.o.d"
  "libkvscale_sim.a"
  "libkvscale_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvscale_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
