file(REMOVE_RECURSE
  "libkvscale_sim.a"
)
