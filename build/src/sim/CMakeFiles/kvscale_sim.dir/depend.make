# Empty dependencies file for kvscale_sim.
# This may be replaced when dependencies are built.
