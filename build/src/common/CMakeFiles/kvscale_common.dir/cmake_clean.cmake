file(REMOVE_RECURSE
  "CMakeFiles/kvscale_common.dir/cli.cpp.o"
  "CMakeFiles/kvscale_common.dir/cli.cpp.o.d"
  "CMakeFiles/kvscale_common.dir/rng.cpp.o"
  "CMakeFiles/kvscale_common.dir/rng.cpp.o.d"
  "CMakeFiles/kvscale_common.dir/status.cpp.o"
  "CMakeFiles/kvscale_common.dir/status.cpp.o.d"
  "CMakeFiles/kvscale_common.dir/table_printer.cpp.o"
  "CMakeFiles/kvscale_common.dir/table_printer.cpp.o.d"
  "CMakeFiles/kvscale_common.dir/units.cpp.o"
  "CMakeFiles/kvscale_common.dir/units.cpp.o.d"
  "libkvscale_common.a"
  "libkvscale_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvscale_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
