# Empty compiler generated dependencies file for kvscale_common.
# This may be replaced when dependencies are built.
