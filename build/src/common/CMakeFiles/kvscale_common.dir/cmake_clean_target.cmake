file(REMOVE_RECURSE
  "libkvscale_common.a"
)
